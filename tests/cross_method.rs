//! Cross-method agreement on realistic generated data, both datasets.
//!
//! These are the end-to-end guarantees the paper's evaluation relies on:
//! integer-domain exact methods agree with each other; with a
//! maximum-matching matcher they agree with brute-force ground truth;
//! approximate methods never exceed exact ones; SuperEGO never exceeds
//! the integer ground truth (its float conversion can only lose pairs).

use csj::prelude::*;
use csj_core::verify::ground_truth;

fn generated_pairs() -> Vec<(CouplePair, &'static str)> {
    let opts = BuildOptions {
        scale: 512,
        seed: 99,
    };
    let mut out = Vec::new();
    for (i, dataset) in [Dataset::VkLike, Dataset::Uniform].into_iter().enumerate() {
        for cid in [1u8, 10, 13] {
            let spec = csj_data::spec::couple(cid);
            let mut o = opts;
            o.seed ^= i as u64;
            out.push((
                build_couple(spec, dataset, o),
                if dataset == Dataset::VkLike {
                    "vk"
                } else {
                    "synthetic"
                },
            ));
        }
    }
    out
}

fn options_for(pair: &CouplePair) -> CsjOptions {
    let mut opts = CsjOptions::new(pair.eps);
    opts.superego.max_value = Some(pair.superego_max_value);
    opts
}

#[test]
fn integer_exact_methods_agree_everywhere() {
    // Guaranteed equality needs a true maximum matcher; under CSF the
    // methods may differ by a whisker because CSF is a heuristic run on
    // different decompositions (the paper's own Table 4, couple 10,
    // shows 21.57% vs 21.56%).
    for (pair, tag) in generated_pairs() {
        let opts = options_for(&pair).with_matcher(MatcherKind::HopcroftKarp);
        let baseline = run(CsjMethod::ExBaseline, &pair.b, &pair.a, &opts).unwrap();
        for m in [CsjMethod::ExMinMax, CsjMethod::ExHybrid] {
            let out = run(m, &pair.b, &pair.a, &opts).unwrap();
            assert_eq!(
                out.similarity.matched, baseline.similarity.matched,
                "{m} disagrees with ex-baseline on {tag} cid {}",
                pair.spec.cid
            );
        }
        // Under CSF the disagreement must stay within a fraction of a
        // percent of |B| (the paper-observed magnitude).
        let csf = options_for(&pair);
        let bl = run(CsjMethod::ExBaseline, &pair.b, &pair.a, &csf).unwrap();
        let mm = run(CsjMethod::ExMinMax, &pair.b, &pair.a, &csf).unwrap();
        let diff = bl.similarity.matched.abs_diff(mm.similarity.matched);
        assert!(
            diff as f64 <= 0.005 * pair.b.len() as f64 + 2.0,
            "CSF-flavoured exact methods diverged by {diff} pairs on {tag} cid {}",
            pair.spec.cid
        );
    }
}

#[test]
fn exact_with_maximum_matcher_hits_ground_truth() {
    for (pair, tag) in generated_pairs() {
        let gt = ground_truth(&pair.b, &pair.a, pair.eps);
        let opts = options_for(&pair).with_matcher(MatcherKind::HopcroftKarp);
        for m in [
            CsjMethod::ExBaseline,
            CsjMethod::ExMinMax,
            CsjMethod::ExHybrid,
        ] {
            let out = run(m, &pair.b, &pair.a, &opts).unwrap();
            assert_eq!(
                out.similarity.matched, gt.similarity.matched,
                "{m} with Hopcroft-Karp must reach the maximum on {tag} cid {}",
                pair.spec.cid
            );
        }
    }
}

#[test]
fn csf_is_near_optimal_on_csj_graphs() {
    // The paper treats CSF as exact; audit how close it gets on realistic
    // candidate graphs (it should be optimal or within 1%).
    for (pair, tag) in generated_pairs() {
        let gt = ground_truth(&pair.b, &pair.a, pair.eps);
        let opts = options_for(&pair); // CSF matcher (default)
        let out = run(CsjMethod::ExMinMax, &pair.b, &pair.a, &opts).unwrap();
        assert!(out.similarity.matched <= gt.similarity.matched);
        let deficit = gt.similarity.matched - out.similarity.matched;
        assert!(
            deficit * 100 <= gt.similarity.matched,
            "CSF lost {deficit} of {} pairs on {tag} cid {}",
            gt.similarity.matched,
            pair.spec.cid
        );
    }
}

#[test]
fn approximate_methods_never_exceed_exact() {
    for (pair, tag) in generated_pairs() {
        let opts = options_for(&pair);
        let exact = run(
            CsjMethod::ExBaseline,
            &pair.b,
            &pair.a,
            &opts.clone().with_matcher(MatcherKind::HopcroftKarp),
        )
        .unwrap();
        for (ap, ex_bound) in [
            (CsjMethod::ApBaseline, exact.similarity.matched),
            (CsjMethod::ApMinMax, exact.similarity.matched),
            (CsjMethod::ApHybrid, exact.similarity.matched),
        ] {
            let out = run(ap, &pair.b, &pair.a, &opts).unwrap();
            assert!(
                out.similarity.matched <= ex_bound,
                "{ap} exceeded exact on {tag} cid {}",
                pair.spec.cid
            );
        }
    }
}

#[test]
fn superego_never_exceeds_integer_ground_truth() {
    for (pair, tag) in generated_pairs() {
        let gt = ground_truth(&pair.b, &pair.a, pair.eps);
        let opts = options_for(&pair).with_matcher(MatcherKind::HopcroftKarp);
        let out = run(CsjMethod::ExSuperEgo, &pair.b, &pair.a, &opts).unwrap();
        assert!(
            out.similarity.matched <= gt.similarity.matched,
            "ex-superego over-counted on {tag} cid {}",
            pair.spec.cid
        );
    }
}

#[test]
fn synthetic_exact_normalisation_gives_full_agreement() {
    // Tables 8/10: on the Synthetic dataset all exact methods report the
    // same similarity (the power-of-two divisor makes floats exact).
    let spec = csj_data::spec::couple(15);
    let pair = build_couple(
        spec,
        Dataset::Uniform,
        BuildOptions {
            scale: 256,
            seed: 5,
        },
    );
    let opts = options_for(&pair);
    let minmax = run(CsjMethod::ExMinMax, &pair.b, &pair.a, &opts).unwrap();
    let superego = run(CsjMethod::ExSuperEgo, &pair.b, &pair.a, &opts).unwrap();
    assert_eq!(minmax.similarity.matched, superego.similarity.matched);
}

#[test]
fn all_reported_pairs_are_true_matches() {
    for (pair, tag) in generated_pairs() {
        let opts = options_for(&pair);
        for m in CsjMethod::ALL {
            let out = run(m, &pair.b, &pair.a, &opts).unwrap();
            // One-to-one.
            let mut bs: Vec<u32> = out.pairs.iter().map(|&(x, _)| x).collect();
            let mut as_: Vec<u32> = out.pairs.iter().map(|&(_, y)| y).collect();
            let (nb, na) = (bs.len(), as_.len());
            bs.sort_unstable();
            bs.dedup();
            as_.sort_unstable();
            as_.dedup();
            assert_eq!(bs.len(), nb, "{m} reused a B user on {tag}");
            assert_eq!(as_.len(), na, "{m} reused an A user on {tag}");
            // Every integer-domain pair satisfies the strict condition.
            if !matches!(m, CsjMethod::ApSuperEgo | CsjMethod::ExSuperEgo) {
                for &(x, y) in &out.pairs {
                    assert!(
                        csj_core::vectors_match(
                            pair.b.vector(x as usize),
                            pair.a.vector(y as usize),
                            pair.eps
                        ),
                        "{m} reported a non-matching pair on {tag}"
                    );
                }
            }
        }
    }
}
