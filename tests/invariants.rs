//! Property-based end-to-end invariants over random communities.

use csj::prelude::*;
use csj_core::verify::ground_truth;
use proptest::prelude::*;

/// Strategy: a pair of random communities sharing dimensionality, with
/// sizes that satisfy the CSJ constraint, plus an epsilon.
fn csj_instance() -> impl Strategy<Value = (Community, Community, u32)> {
    (1usize..=6, 1usize..=30, 0u32..=3, 1u32..=25).prop_flat_map(|(d, nb_extra, eps, range)| {
        let nb = 1 + nb_extra;
        // |A| in [|B|, 2|B|] keeps ceil(|A|/2) <= |B|.
        (Just(d), Just(nb), nb..=(2 * nb), Just(eps), Just(range)).prop_flat_map(
            |(d, nb, na, eps, range)| {
                let vec_b = proptest::collection::vec(proptest::collection::vec(0..range, d), nb);
                let vec_a = proptest::collection::vec(proptest::collection::vec(0..range, d), na);
                (vec_b, vec_a).prop_map(move |(rb, ra)| {
                    let b = Community::from_rows(
                        "B",
                        d,
                        rb.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
                    )
                    .expect("well-formed");
                    let a = Community::from_rows(
                        "A",
                        d,
                        ra.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
                    )
                    .expect("well-formed");
                    (b, a, eps)
                })
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ex-MinMax's segment flushing is lossless: with a maximum matcher
    /// it equals whole-graph maximum matching (the segment-isolation
    /// safety argument of Section 4.2, tested end-to-end).
    #[test]
    fn segment_flushing_is_lossless((b, a, eps) in csj_instance()) {
        let gt = ground_truth(&b, &a, eps);
        let opts = CsjOptions::new(eps).with_matcher(MatcherKind::HopcroftKarp);
        let out = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid instance");
        prop_assert_eq!(out.similarity.matched, gt.similarity.matched);
    }

    /// The encoding never causes false misses end-to-end: under a true
    /// maximum matcher Ex-MinMax and Ex-Baseline agree exactly. (Under
    /// the CSF heuristic they may differ by a whisker — the paper's own
    /// Table 4 shows 21.57 vs 21.56 on couple 10 — so equality is only
    /// guaranteed here with Hopcroft-Karp.)
    #[test]
    fn minmax_equals_baseline((b, a, eps) in csj_instance()) {
        let opts = CsjOptions::new(eps).with_matcher(MatcherKind::HopcroftKarp);
        let m = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid");
        let bl = run(CsjMethod::ExBaseline, &b, &a, &opts).expect("valid");
        prop_assert_eq!(m.similarity.matched, bl.similarity.matched);
    }

    /// Approximate results are valid one-to-one matchings of true pairs,
    /// bounded by the true maximum matching.
    #[test]
    fn approximate_is_sound((b, a, eps) in csj_instance()) {
        let opts = CsjOptions::new(eps);
        let maximum = ground_truth(&b, &a, eps).similarity.matched;
        for m in [CsjMethod::ApBaseline, CsjMethod::ApMinMax, CsjMethod::ApHybrid] {
            let out = run(m, &b, &a, &opts).expect("valid");
            prop_assert!(out.similarity.matched <= maximum);
            // Maximal matchings reach at least half the maximum.
            prop_assert!(2 * out.similarity.matched >= maximum);
            let mut seen_b = vec![false; b.len()];
            let mut seen_a = vec![false; a.len()];
            for &(x, y) in &out.pairs {
                prop_assert!(csj_core::vectors_match(
                    b.vector(x as usize), a.vector(y as usize), eps));
                prop_assert!(!std::mem::replace(&mut seen_b[x as usize], true));
                prop_assert!(!std::mem::replace(&mut seen_a[y as usize], true));
            }
            // Approximate matchings are maximal: a b with a free true
            // partner would have taken it, so every unmatched b has no
            // free partner left.
            for (x, &bx_used) in seen_b.iter().enumerate() {
                if bx_used { continue; }
                for (y, &ay_used) in seen_a.iter().enumerate() {
                    if !ay_used {
                        prop_assert!(
                            !csj_core::vectors_match(b.vector(x), a.vector(y), eps),
                            "{m} left matchable pair ({x}, {y}) unmatched"
                        );
                    }
                }
            }
        }
    }

    /// The hybrid integer-domain methods agree with the integer baseline
    /// (maximum matcher: edge order must not matter).
    #[test]
    fn hybrid_is_lossless((b, a, eps) in csj_instance()) {
        let opts = CsjOptions::new(eps).with_matcher(MatcherKind::HopcroftKarp);
        let hybrid = run(CsjMethod::ExHybrid, &b, &a, &opts).expect("valid");
        let baseline = run(CsjMethod::ExBaseline, &b, &a, &opts).expect("valid");
        prop_assert_eq!(hybrid.similarity.matched, baseline.similarity.matched);
    }

    /// Similarity is always within [0, 100] and matched <= |B|.
    #[test]
    fn similarity_is_well_formed((b, a, eps) in csj_instance()) {
        let opts = CsjOptions::new(eps);
        for m in CsjMethod::ALL {
            let out = run(m, &b, &a, &opts).expect("valid");
            prop_assert!(out.similarity.matched <= b.len());
            prop_assert!(out.similarity.percent() >= 0.0);
            prop_assert!(out.similarity.percent() <= 100.0);
        }
    }

    /// SuperEGO with an exact power-of-two divisor equals the integer
    /// answer (the Synthetic-regime agreement), for any data.
    #[test]
    fn superego_exact_under_power_of_two((b, a, eps) in csj_instance()) {
        let mut opts = CsjOptions::new(eps).with_matcher(MatcherKind::HopcroftKarp);
        opts.superego.max_value = Some(32); // counters < 32, power of two
        let ego = run(CsjMethod::ExSuperEgo, &b, &a, &opts).expect("valid");
        let gt = ground_truth(&b, &a, eps);
        prop_assert_eq!(ego.similarity.matched, gt.similarity.matched);
    }
}
