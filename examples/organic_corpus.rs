//! Organic community similarity from a single corpus (no planting).
//!
//! The paper's communities are subscriber sets of real pages inside one
//! social network, so two pages naturally share subscribers — and CSJ
//! "interprets the matched users as being the same person belonging to a
//! different kind of audience". This example generates one population
//! with popularity-ranked pages ([`csj_data::corpus`]), then measures CSJ
//! between sibling pages (same category) and across categories, showing
//! that the paper's similarity bands (same-category > different-category)
//! emerge organically.
//!
//! ```text
//! cargo run --release --example organic_corpus
//! ```

use csj::prelude::*;
use csj_data::corpus::{Corpus, CorpusConfig};

fn main() {
    let corpus = Corpus::generate(CorpusConfig {
        users: 30_000,
        pages_per_category: 8,
        ..CorpusConfig::default()
    });
    println!(
        "corpus: {} users, {} pages across 27 categories\n",
        corpus.population().len(),
        corpus.pages().len()
    );

    let top2 = |cat: Category| {
        let ranked = corpus.pages_of(cat);
        (ranked[0].0, ranked[1].0)
    };
    let (ent1, ent2) = top2(Category::Entertainment);
    let (sport1, _) = top2(Category::Sport);
    let (food1, _) = top2(Category::FoodRecipes);

    let opts = CsjOptions::new(1);
    let join = |x: usize, y: usize| -> (f64, usize, usize) {
        let cx = corpus.community(x);
        let cy = corpus.community(y);
        let (b, a) = if cx.len() <= cy.len() {
            (&cx, &cy)
        } else {
            (&cy, &cx)
        };
        let mut o = opts.clone();
        o.enforce_sizes = false; // organic page sizes vary freely
        let out = run(CsjMethod::ExMinMax, b, a, &o).expect("valid instance");
        (
            out.similarity.percent(),
            out.similarity.matched,
            corpus.shared_subscribers(x, y),
        )
    };

    println!(
        "{:<46} {:>9} {:>9} {:>8}",
        "pair", "similarity", "matched", "shared"
    );
    for (label, x, y) in [
        ("Entertainment #1 ~ Entertainment #2 (same)", ent1, ent2),
        ("Entertainment #1 ~ Sport #1 (different)", ent1, sport1),
        (
            "Entertainment #1 ~ Food_recipes #1 (different)",
            ent1,
            food1,
        ),
        ("Sport #1 ~ Food_recipes #1 (different)", sport1, food1),
    ] {
        let (pct, matched, shared) = join(x, y);
        println!("{label:<46} {pct:>8.2}% {matched:>9} {shared:>8}");
    }

    println!(
        "\nShared subscribers anchor every pair (each matches itself exactly), and \
         same-category siblings add similar-taste users on top — the organic version \
         of the paper's >=30% (same) vs >=15% (different) case-study bands."
    );
}
