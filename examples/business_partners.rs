//! Business-partner recommendation (paper scenario ii.a).
//!
//! A brand looking for promising partners compares its subscriber
//! community against candidate brands with CSJ and ranks the candidates
//! by similarity: "Dior has a contract with Charlize Theron ... [brands]
//! could search for similar celebrities to them respectively to form new
//! lucrative collaborations."
//!
//! This example builds one "anchor" brand community and a portfolio of
//! candidate partner brands with varying audience overlap, then runs the
//! recommended two-phase pipeline from Section 3: a fast approximate pass
//! over every candidate to shortlist, then the exact method on the
//! shortlist only.
//!
//! ```text
//! cargo run --release --example business_partners
//! ```

use csj::prelude::*;
use std::time::Instant;

fn main() {
    let d_anchor_sim = [0.32, 0.27, 0.22, 0.18, 0.12, 0.08];
    let categories = [
        Category::BeautyHealth,
        Category::Celebrity,
        Category::FoodRecipes,
        Category::Sport,
        Category::AutoMotor,
        Category::FinanceInsurance,
    ];

    // The anchor brand (B side of every comparison).
    println!("Anchor brand: 'Maison Lumière' (Beauty_health, 3000 subscribers)\n");

    // Candidate partner brands, each sharing a different fraction of
    // audience taste with the anchor.
    let candidates: Vec<(String, Community, Community)> = d_anchor_sim
        .iter()
        .zip(categories.iter())
        .enumerate()
        .map(|(i, (&sim, &cat))| {
            let generator = VkLikeGenerator::new(VkLikeConfig {
                target_similarity: sim,
                ..VkLikeConfig::default()
            });
            let name = format!("Candidate-{} ({})", i + 1, cat);
            let (b, a) = generator.generate_pair(
                "Maison Lumière",
                &name,
                Category::BeautyHealth,
                cat,
                3_000,
                3_600,
                900 + i as u64,
            );
            (name, b, a)
        })
        .collect();

    // Phase 1: fast approximate screening of every candidate.
    let opts = CsjOptions::new(1);
    println!("Phase 1 — approximate screening (Ap-MinMax):");
    let started = Instant::now();
    let mut screened: Vec<(usize, f64)> = Vec::new();
    for (i, (name, b, a)) in candidates.iter().enumerate() {
        let out = run(CsjMethod::ApMinMax, b, a, &opts).expect("valid instance");
        println!("  {:<34} ~{}", name, out.similarity);
        screened.push((i, out.similarity.ratio()));
    }
    println!(
        "  (screened {} candidates in {:.0} ms)\n",
        candidates.len(),
        started.elapsed().as_secs_f64() * 1e3
    );

    // Shortlist: candidates whose approximate similarity clears 15%
    // (the paper's "different categories" threshold).
    screened.retain(|&(_, s)| s >= 0.15);
    screened.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));

    // Phase 2: exact similarity on the shortlist only.
    println!("Phase 2 — exact ranking of the shortlist (Ex-MinMax):");
    let mut ranked: Vec<(String, f64)> = Vec::new();
    for &(i, _) in &screened {
        let (name, b, a) = &candidates[i];
        let out = run(CsjMethod::ExMinMax, b, a, &opts).expect("valid instance");
        ranked.push((name.clone(), out.similarity.percent()));
    }
    ranked.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
    for (rank, (name, pct)) in ranked.iter().enumerate() {
        println!("  #{} {:<34} {:.2}%", rank + 1, name, pct);
    }
    match ranked.first() {
        Some((name, pct)) => println!(
            "\nRecommended partner: {name} — {pct:.2}% of the anchor's audience has a matching profile there."
        ),
        None => println!("\nNo candidate cleared the 15% similarity bar."),
    }
}
