//! A live brand catalog on top of [`CsjEngine`].
//!
//! Registers a catalog of brand communities, sweeps all pairs for the
//! broadcast planner (scenario ii.b), answers a top-k query (scenario
//! ii.a) — and then simulates the *online* part of an online system:
//! subscribers keep liking things, counters grow, and cached
//! similarities refresh only for the communities that changed.
//!
//! ```text
//! cargo run --release --example live_catalog
//! ```

use csj::prelude::*;

fn main() {
    let mut engine = CsjEngine::new(27, EngineConfig::new(1));

    // A catalog of six brand pages. Pairs of the same vertical share a
    // chunk of audience (copied profiles), like real sibling brands.
    let verticals: [(&str, &str, f64, Category); 3] = [
        ("Nike", "Adidas", 0.30, Category::Sport),
        ("Sephora", "Lush", 0.24, Category::BeautyHealth),
        ("HelloFresh", "Mealkit&Co", 0.19, Category::FoodRecipes),
    ];

    let mut handles = Vec::new();
    for (i, (left, right, sim, cat)) in verticals.iter().enumerate() {
        let generator = VkLikeGenerator::new(VkLikeConfig {
            target_similarity: *sim,
            ..VkLikeConfig::default()
        });
        let (b, a) = generator.generate_pair(left, right, *cat, *cat, 1_200, 1_400, 60 + i as u64);
        handles.push(engine.register(b).expect("fresh name"));
        handles.push(engine.register(a).expect("fresh name"));
    }

    // A deadline-conscious planner asks for whatever fits in a budget
    // first: the sweep degrades gracefully and hands back a resume
    // cursor instead of erroring.
    let budget = Budget::unlimited().with_max_joins(4);
    let partial = engine
        .pairs_above_with_budget(0.10, &budget, None)
        .expect("budgeted sweeps degrade, they do not error");
    println!("== Budgeted sweep (at most 4 joins) ==");
    match partial.exhausted {
        Some(marker) => println!(
            "  scored {} pairs, stopped by {} with {} pairs left (resumable)",
            partial.value.pairs.len(),
            marker.reason,
            marker.pairs_skipped
        ),
        None => println!(
            "  scored {} pairs, budget never exhausted",
            partial.value.pairs.len()
        ),
    }

    // Broadcast planner: every admissible pair above 10%.
    println!("\n== All community pairs above 10% similarity ==");
    let pairs = engine.pairs_above(0.10).expect("valid sweep");
    for p in &pairs {
        println!(
            "  {:<12} ~ {:<12} {}",
            engine.community(p.x).expect("registered").name(),
            engine.community(p.y).expect("registered").name(),
            p.similarity
        );
    }

    // Partner search for Nike.
    let nike = engine.find("Nike").expect("registered");
    println!("\n== Top-3 partners for Nike (screen with Ap-MinMax, refine with Ex-MinMax) ==");
    for p in engine.top_k_similar(nike, 3).expect("valid query") {
        println!(
            "  {:<12} {}",
            engine.community(p.y).expect("registered").name(),
            p.similarity
        );
    }

    // The live part: an Adidas subscriber goes on a liking spree and an
    // account migrates over from Nike.
    let adidas = engine.find("Adidas").expect("registered");
    let before = engine.similarity(nike, adidas).expect("valid pair");
    let migrated_profile: Vec<u32> = engine
        .community(nike)
        .expect("registered")
        .vector(0)
        .to_vec();
    engine
        .upsert_user(adidas, 555_000_001, &migrated_profile)
        .expect("valid update");
    let after = engine.similarity(nike, adidas).expect("valid pair");
    println!("\n== Live update ==");
    println!("  Nike~Adidas before migration: {before}");
    println!("  Nike~Adidas after  migration: {after} (one more matchable subscriber)");

    let stats = engine.stats();
    println!(
        "\nengine: {} communities, {} cached pairs, {} joins executed, {} cache hits",
        stats.communities, stats.cached_pairs, stats.joins_executed, stats.cache_hits
    );
}
