//! Friend recommendation from matched profiles (paper scenario i).
//!
//! "LinkedIn notifies a user x to follow another user y by directly
//! sending to x the message 'people with similar interests follow user
//! y'" — CSJ finds those similar-interest people *without* structural
//! links: the matched one-to-one pairs between two communities are
//! exactly the users with near-identical taste profiles, so each matched
//! pair is a mutual recommendation candidate.
//!
//! This example joins two communities, extracts the matched pairs, and
//! prints "you have p% similar taste" messages (the VK wording the paper
//! quotes), with p derived from the actual per-dimension distances.
//!
//! ```text
//! cargo run --release --example friend_recommendation
//! ```

use csj::prelude::*;

fn main() {
    let generator = VkLikeGenerator::new(VkLikeConfig {
        target_similarity: 0.25,
        ..VkLikeConfig::default()
    });
    let (b, a) = generator.generate_pair(
        "Indie Cinema Club",
        "Arthouse Screenings",
        Category::CultureArt,
        Category::Entertainment,
        1_500,
        1_800,
        31,
    );

    let opts = CsjOptions::new(1);
    let out = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid instance");
    println!(
        "Joined '{}' ({} users) with '{}' ({} users): {} matched profile pairs ({}).\n",
        b.name(),
        b.len(),
        a.name(),
        a.len(),
        out.similarity.matched,
        out.similarity
    );

    // Rank matched pairs by taste closeness (smaller L1 gap = closer) and
    // show the top recommendations.
    let mut pairs: Vec<(u64, u64, u64, f64)> = out
        .pairs
        .iter()
        .map(|&(bi, ai)| {
            let bv = b.vector(bi as usize);
            let av = a.vector(ai as usize);
            let gap: u64 = bv.iter().zip(av).map(|(&x, &y)| x.abs_diff(y) as u64).sum();
            let mass: u64 = bv.iter().zip(av).map(|(&x, &y)| (x + y) as u64).sum();
            let taste = if mass == 0 {
                100.0
            } else {
                100.0 * (1.0 - gap as f64 / mass as f64)
            };
            (b.user_id(bi as usize), a.user_id(ai as usize), gap, taste)
        })
        .collect();
    pairs.sort_by(|x, y| x.2.cmp(&y.2).then(x.0.cmp(&y.0)));

    println!("Top 10 mutual recommendations (closest taste first):");
    for &(bu, au, gap, taste) in pairs.iter().take(10) {
        println!(
            "  notify user {bu}: \"you have {taste:.0}% similar taste with user {au}\" (L1 gap {gap})"
        );
    }

    let exact_dupes = pairs.iter().filter(|p| p.2 == 0).count();
    println!(
        "\n{} of {} matched pairs have *identical* profiles; every matched pair \
         is within eps = 1 per category — the strict condition that makes these \
         recommendations trustworthy (paper, Section 1.1).",
        exact_dupes,
        pairs.len()
    );
}
