//! Quickstart: the paper's Section 3 worked example, then a generated
//! community pair joined with every method.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use csj::prelude::*;

fn main() {
    section3_example();
    generated_pair();
}

/// The exact example from Section 3 of the paper: two communities over
/// the categories {Music, Sport, Education}, eps = 1.
fn section3_example() {
    println!("== Section 3 worked example ==");
    let b = Community::from_rows(
        "B",
        3,
        vec![
            (1u64, vec![3u32, 4, 2]), // b1 = {Music: 3, Sport: 4, Education: 2}
            (2, vec![2, 2, 3]),       // b2 = {Music: 2, Sport: 2, Education: 3}
        ],
    )
    .expect("well-formed rows");
    let a = Community::from_rows(
        "A",
        3,
        vec![
            (10u64, vec![2u32, 3, 5]), // a1
            (11, vec![2, 3, 1]),       // a2
            (12, vec![3, 3, 3]),       // a3
        ],
    )
    .expect("well-formed rows");

    let opts = CsjOptions::new(1);
    let exact = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid instance");
    println!(
        "exact   similarity = {}  (pairs: {:?})",
        exact.similarity,
        exact.pairs_as_user_ids(&b, &a)
    );
    let approx = run(CsjMethod::ApMinMax, &b, &a, &opts).expect("valid instance");
    println!(
        "approx  similarity = {}  (pairs: {:?})",
        approx.similarity,
        approx.pairs_as_user_ids(&b, &a)
    );
    println!();
}

/// A VK-shaped community pair generated at laptop scale, joined with all
/// eight methods.
fn generated_pair() {
    println!("== Generated VK-shaped pair: every method ==");
    let generator = VkLikeGenerator::new(VkLikeConfig {
        target_similarity: 0.22,
        ..VkLikeConfig::default()
    });
    let (b, a) = generator.generate_pair(
        "Quick Recipes",
        "Salads | Best Recipes",
        Category::Restaurants,
        Category::FoodRecipes,
        4_000,
        4_400,
        2024,
    );
    println!(
        "|B| = {}, |A| = {}, d = {}, eps = 1",
        b.len(),
        a.len(),
        b.d()
    );

    let opts = CsjOptions::new(1);
    println!(
        "{:<14} {:>10} {:>12} {:>14}",
        "method", "similarity", "time", "comparisons"
    );
    for method in CsjMethod::ALL {
        let out = run(method, &b, &a, &opts).expect("valid instance");
        println!(
            "{:<14} {:>10} {:>9.1} ms {:>14}",
            method.name(),
            out.similarity.to_string(),
            out.elapsed.as_secs_f64() * 1e3,
            out.events.full_comparisons(),
        );
    }
    println!("\n(exact methods agree; approximate ones may trail slightly — Eq. 1 of the paper)");
}
