//! Broadcast recommendation (paper scenario ii.b).
//!
//! "In case CSJ finds that Nike and Adidas pages are more similar than
//! Nike and Puma pages, then the online system recommends to all platform
//! users that follow Nike but not Adidas and Puma, the latter two pages
//! but in different hours; e.g., at the highest peak hour of user
//! engagement, Adidas is recommended, at the second highest hour Puma."
//!
//! This example applies CSJ to a variety of community pairs and derives
//! the prioritized broadcast schedule.
//!
//! ```text
//! cargo run --release --example broadcast_ranking
//! ```

use csj::prelude::*;

/// Peak engagement hours, best first.
const PEAK_HOURS: [&str; 4] = ["20:00", "21:00", "13:00", "09:00"];

fn main() {
    // The page whose followers we want to broadcast to.
    let anchor_name = "Nike";
    // Sibling pages the platform could recommend, with their (hidden)
    // audience-taste overlap with the anchor.
    let siblings = [
        ("Adidas", 0.34),
        ("Puma", 0.26),
        ("Reebok", 0.19),
        ("Decathlon", 0.11),
    ];

    println!("Computing CSJ similarity of {anchor_name} against each sibling page...\n");
    let opts = CsjOptions::new(1);
    let mut ranked: Vec<(&str, f64, usize)> = Vec::new();
    for (i, (name, overlap)) in siblings.iter().enumerate() {
        let generator = VkLikeGenerator::new(VkLikeConfig {
            target_similarity: *overlap,
            ..VkLikeConfig::default()
        });
        let (b, a) = generator.generate_pair(
            anchor_name,
            name,
            Category::Sport,
            Category::Sport,
            2_500,
            3_000,
            7_000 + i as u64,
        );
        let out = run(CsjMethod::ExMinMax, &b, &a, &opts).expect("valid instance");
        println!(
            "  {anchor_name} vs {:<10} similarity {:>7}  ({} matched profile pairs)",
            name,
            out.similarity.to_string(),
            out.similarity.matched
        );
        ranked.push((name, out.similarity.percent(), out.similarity.matched));
    }

    ranked.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));

    println!("\nPrioritized broadcast schedule for followers of {anchor_name}:");
    for ((name, pct, _), hour) in ranked.iter().zip(PEAK_HOURS.iter()) {
        println!("  at {hour} recommend {name:<10} (CSJ similarity {pct:.2}%)");
    }
    println!(
        "\nThe most similar page gets the highest-engagement hour; community \
         detection/search cannot produce this ranking because these brand \
         pages already exist and their audiences need no structural links \
         (paper, Section 1.2)."
    );
}
