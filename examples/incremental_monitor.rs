//! Incremental similarity monitoring with [`TrackedPair`].
//!
//! An online system watches `similarity(Nike, Adidas)` while likes keep
//! arriving. Instead of re-joining after every event, the tracked pair
//! repairs its candidate graph and maximum matching incrementally — and
//! this example measures how much cheaper that is than re-running the
//! exact join each time.
//!
//! ```text
//! cargo run --release --example incremental_monitor
//! ```

use csj::prelude::*;
use csj_engine::{Side, TrackedPair};
use std::time::Instant;

fn main() {
    let generator = VkLikeGenerator::new(VkLikeConfig {
        target_similarity: 0.25,
        ..VkLikeConfig::default()
    });
    let (b, a) = generator.generate_pair(
        "Nike",
        "Adidas",
        Category::Sport,
        Category::Sport,
        3_000,
        3_400,
        99,
    );

    let setup = Instant::now();
    let mut pair = TrackedPair::new(b.clone(), a.clone(), 1).expect("same dimensionality");
    println!(
        "initial exact join: {} in {:.0} ms\n",
        pair.similarity(),
        setup.elapsed().as_secs_f64() * 1e3
    );

    // A stream of like events: existing subscribers' counters grow, a few
    // new accounts subscribe, a few leave.
    let events = 500usize;
    let stream = Instant::now();
    for k in 0..events {
        let side = if k % 3 == 0 { Side::B } else { Side::A };
        match k % 10 {
            9 => {
                // A new subscriber arrives with a copy of an existing
                // profile (a "lookalike" account).
                let donor = pair.b().vector(k % pair.b().len()).to_vec();
                pair.upsert_user(side, 900_000 + k as u64, &donor)
                    .expect("valid update");
            }
            8 => {
                // Someone unsubscribes.
                let community = if side == Side::B { pair.b() } else { pair.a() };
                let victim = community.user_id(k % community.len());
                pair.remove_user(side, victim).expect("user exists");
            }
            _ => {
                // A like: one category counter grows by one.
                let community = if side == Side::B { pair.b() } else { pair.a() };
                let idx = (k * 7) % community.len();
                let id = community.user_id(idx);
                let mut v = community.vector(idx).to_vec();
                let dim = (k * 13) % v.len();
                v[dim] = v[dim].saturating_add(1);
                pair.upsert_user(side, id, &v).expect("valid update");
            }
        }
    }
    let incremental = stream.elapsed();
    println!(
        "{} events applied incrementally in {:.0} ms ({:.2} ms/event): {}",
        events,
        incremental.as_secs_f64() * 1e3,
        incremental.as_secs_f64() * 1e3 / events as f64,
        pair.similarity()
    );

    // What a re-join-per-event policy would cost (sampled).
    let opts = CsjOptions::new(1);
    let sample = Instant::now();
    let rejoin = run(CsjMethod::ExMinMax, pair.b(), pair.a(), &opts).expect("valid instance");
    let per_rejoin = sample.elapsed();
    println!(
        "one full exact re-join costs {:.0} ms -> {} events would cost ~{:.1} s ({}x the incremental stream)",
        per_rejoin.as_secs_f64() * 1e3,
        events,
        per_rejoin.as_secs_f64() * events as f64,
        ((per_rejoin.as_secs_f64() * events as f64) / incremental.as_secs_f64()) as u64
    );
    println!(
        "(and the tracked similarity {} agrees with the fresh join {})",
        pair.similarity(),
        rejoin.similarity
    );
}
