//! Property-based tests for the matching substrate.

use csj_matching::{
    brute_force_maximum, csf, greedy, hopcroft_karp, kuhn, run_matcher, MatchGraph, MatcherKind,
};
use proptest::prelude::*;

/// Strategy: a small random bipartite graph.
fn small_graph() -> impl Strategy<Value = MatchGraph> {
    (1u32..=10, 1u32..=10).prop_flat_map(|(nb, na)| {
        proptest::collection::vec((0..nb, 0..na), 0..40)
            .prop_map(move |edges| MatchGraph::from_edges(nb, na, edges))
    })
}

/// Strategy: a medium random bipartite graph (too big for the brute oracle,
/// used for exact-vs-exact agreement).
fn medium_graph() -> impl Strategy<Value = MatchGraph> {
    (1u32..=60, 1u32..=60).prop_flat_map(|(nb, na)| {
        proptest::collection::vec((0..nb, 0..na), 0..400)
            .prop_map(move |edges| MatchGraph::from_edges(nb, na, edges))
    })
}

proptest! {
    /// Every matcher must return a valid one-to-one matching over real edges.
    #[test]
    fn all_matchers_return_valid_matchings(g in small_graph()) {
        for kind in MatcherKind::ALL {
            let m = run_matcher(&g, kind);
            prop_assert!(m.validate(&g).is_ok(), "{kind} produced an invalid matching");
        }
    }

    /// The exact matchers agree with the brute-force oracle.
    #[test]
    fn exact_matchers_hit_the_true_maximum(g in small_graph()) {
        let best = brute_force_maximum(&g).len();
        prop_assert_eq!(hopcroft_karp(&g).len(), best);
        prop_assert_eq!(kuhn(&g).len(), best);
    }

    /// Heuristics never exceed the maximum and CSF dominates plain greedy's
    /// worst-case guarantee (both are maximal, so >= max/2).
    #[test]
    fn heuristic_bounds(g in small_graph()) {
        let best = brute_force_maximum(&g).len();
        let csf_len = csf(&g).len();
        let greedy_len = greedy(&g).len();
        prop_assert!(csf_len <= best);
        prop_assert!(greedy_len <= best);
        // Maximal matchings are at least half of maximum.
        prop_assert!(2 * csf_len >= best, "csf={csf_len} best={best}");
        prop_assert!(2 * greedy_len >= best, "greedy={greedy_len} best={best}");
    }

    /// Kuhn and Hopcroft–Karp agree on graphs beyond the oracle's reach.
    #[test]
    fn exact_matchers_agree_on_medium_graphs(g in medium_graph()) {
        prop_assert_eq!(hopcroft_karp(&g).len(), kuhn(&g).len());
    }

    /// CSF is maximal: after it finishes no edge has two free endpoints.
    #[test]
    fn csf_is_maximal(g in medium_graph()) {
        let m = csf(&g);
        let mut lu = vec![false; g.num_left() as usize];
        let mut ru = vec![false; g.num_right() as usize];
        for &(b, a) in m.pairs() {
            lu[b as usize] = true;
            ru[a as usize] = true;
        }
        for &(b, a) in g.edges() {
            prop_assert!(lu[b as usize] || ru[a as usize],
                "edge ({}, {}) could extend CSF's matching", b, a);
        }
    }
}

/// One edge-replacement step: (left side?, vertex, new neighbours).
type UpdateStep = (bool, u32, Vec<u32>);

/// Strategy: a sequence of per-vertex edge replacements.
fn update_sequence() -> impl Strategy<Value = (u32, u32, Vec<UpdateStep>)> {
    (2u32..=12, 2u32..=12).prop_flat_map(|(nb, na)| {
        let updates = proptest::collection::vec(
            (
                proptest::bool::ANY,
                0u32..nb.max(na),
                proptest::collection::vec(0u32..na.max(nb), 0..6),
            ),
            1..25,
        );
        (Just(nb), Just(na), updates)
    })
}

proptest! {
    /// DynamicMatching stays maximum under arbitrary update sequences.
    #[test]
    fn dynamic_matching_stays_maximum((nb, na, updates) in update_sequence()) {
        let mut dm = csj_matching::DynamicMatching::new(nb as usize, na as usize);
        for (left, vertex, neighbors) in updates {
            if left {
                let b = vertex % nb;
                let n: Vec<u32> = neighbors.iter().map(|&x| x % na).collect();
                dm.set_left_edges(b, n);
            } else {
                let a = vertex % na;
                let n: Vec<u32> = neighbors.iter().map(|&x| x % nb).collect();
                dm.set_right_edges(a, n);
            }
            dm.assert_maximum();
        }
    }
}
