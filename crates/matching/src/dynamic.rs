//! Dynamic maximum bipartite matching under single-vertex edge updates.
//!
//! CSJ's motivating systems are *online*: counters grow with every like,
//! users subscribe and unsubscribe. Re-running a full join after each
//! update is wasteful when only one user's candidate set changed. This
//! module maintains a **maximum** matching across such updates:
//!
//! * replacing the edge set of one vertex changes the maximum matching
//!   size by at most one in either direction;
//! * after the structural update, maximality is restored with a bounded
//!   number of augmenting-path searches rooted at the (at most two)
//!   vertices freed by the update, plus one *swap-and-augment* probe per
//!   newly added edge whose far endpoint is free (a new edge `(b, x)`
//!   with `b` matched to `a0` can only enlarge the matching via the
//!   alternating segment `... a0 — b — x`, which the probe explores by
//!   tentatively re-matching `b` to `x` and augmenting from `a0`).
//!
//! The repair argument: an augmenting path in the updated graph either
//! avoids all changed edges (impossible — the matching was maximum and
//! unchanged elsewhere) or passes through the updated vertex, and every
//! such path is found by the searches above. `assert_maximum` (test
//! builds) cross-checks against Hopcroft–Karp after every operation in
//! the test suite.

use crate::hopcroft_karp;
use crate::{MatchGraph, Matching};

const UNMATCHED: u32 = u32::MAX;

/// A bipartite graph + maximum matching that stays maximum under
/// per-vertex edge replacement and vertex insertion.
///
/// ```
/// use csj_matching::DynamicMatching;
///
/// let mut dm = DynamicMatching::new(2, 2);
/// dm.set_left_edges(0, vec![0]);
/// dm.set_left_edges(1, vec![0]); // both want a0: maximum is 1
/// assert_eq!(dm.matching_size(), 1);
/// dm.set_left_edges(0, vec![0, 1]); // b0 can move to a1
/// assert_eq!(dm.matching_size(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicMatching {
    adj_b: Vec<Vec<u32>>,
    adj_a: Vec<Vec<u32>>,
    match_b: Vec<u32>,
    match_a: Vec<u32>,
    size: usize,
    /// DFS visit stamps (right side), bumped per search.
    stamp: u64,
    visited_a: Vec<u64>,
}

impl DynamicMatching {
    /// Empty graph with `nb` left and `na` right vertices.
    pub fn new(nb: usize, na: usize) -> Self {
        Self {
            adj_b: vec![Vec::new(); nb],
            adj_a: vec![Vec::new(); na],
            match_b: vec![UNMATCHED; nb],
            match_a: vec![UNMATCHED; na],
            size: 0,
            stamp: 0,
            visited_a: vec![0; na],
        }
    }

    /// Build from a static graph and compute the initial maximum matching
    /// (via Hopcroft–Karp).
    pub fn from_graph(graph: &MatchGraph) -> Self {
        let mut dm = Self::new(graph.num_left() as usize, graph.num_right() as usize);
        for b in 0..graph.num_left() {
            dm.adj_b[b as usize] = graph.neighbors_of_left(b).to_vec();
        }
        for a in 0..graph.num_right() {
            dm.adj_a[a as usize] = graph.neighbors_of_right(a).to_vec();
        }
        for &(b, a) in hopcroft_karp(graph).pairs() {
            dm.match_b[b as usize] = a;
            dm.match_a[a as usize] = b;
            dm.size += 1;
        }
        dm
    }

    /// Left-side vertex count.
    pub fn num_left(&self) -> usize {
        self.adj_b.len()
    }

    /// Right-side vertex count.
    pub fn num_right(&self) -> usize {
        self.adj_a.len()
    }

    /// Current (maximum) matching size.
    pub fn matching_size(&self) -> usize {
        self.size
    }

    /// The matched partner of left vertex `b`, if any.
    pub fn partner_of_left(&self, b: u32) -> Option<u32> {
        match self.match_b[b as usize] {
            UNMATCHED => None,
            a => Some(a),
        }
    }

    /// Snapshot the current matching.
    pub fn matching(&self) -> Matching {
        let mut m = Matching::new();
        for (b, &a) in self.match_b.iter().enumerate() {
            if a != UNMATCHED {
                m.push(b as u32, a);
            }
        }
        m
    }

    /// Append a new isolated left vertex; returns its index.
    pub fn add_left_vertex(&mut self) -> u32 {
        self.adj_b.push(Vec::new());
        self.match_b.push(UNMATCHED);
        (self.adj_b.len() - 1) as u32
    }

    /// Append a new isolated right vertex; returns its index.
    pub fn add_right_vertex(&mut self) -> u32 {
        self.adj_a.push(Vec::new());
        self.match_a.push(UNMATCHED);
        self.visited_a.push(0);
        (self.adj_a.len() - 1) as u32
    }

    /// Replace the full edge set of left vertex `b` and restore
    /// maximality. Returns the signed change in matching size (-1, 0, +1).
    ///
    /// # Panics
    /// Panics if `b` or any neighbour index is out of bounds.
    pub fn set_left_edges(&mut self, b: u32, mut neighbors: Vec<u32>) -> i64 {
        let bi = b as usize;
        assert!(bi < self.adj_b.len(), "left vertex {b} out of bounds");
        neighbors.sort_unstable();
        neighbors.dedup();
        for &a in &neighbors {
            assert!(
                (a as usize) < self.adj_a.len(),
                "right vertex {a} out of bounds"
            );
        }
        let before = self.size as i64;

        // Detach old edges.
        let old = std::mem::take(&mut self.adj_b[bi]);
        for &a in &old {
            self.adj_a[a as usize].retain(|&x| x != b);
        }
        // Identify genuinely new edges before attaching.
        let added: Vec<u32> = neighbors
            .iter()
            .copied()
            .filter(|a| !old.contains(a))
            .collect();
        // Attach new edges.
        for &a in &neighbors {
            self.adj_a[a as usize].push(b);
        }
        self.adj_b[bi] = neighbors;

        // If b's current partner is no longer admissible, free the pair.
        let mut freed_right = None;
        let a0 = self.match_b[bi];
        if a0 != UNMATCHED && !self.adj_b[bi].contains(&a0) {
            self.match_b[bi] = UNMATCHED;
            self.match_a[a0 as usize] = UNMATCHED;
            self.size -= 1;
            freed_right = Some(a0);
        }

        self.repair(b, freed_right, &added);
        self.size as i64 - before
    }

    /// Remove all edges of left vertex `b` (e.g. the user unsubscribed).
    /// Returns the signed size change.
    pub fn clear_left(&mut self, b: u32) -> i64 {
        self.set_left_edges(b, Vec::new())
    }

    /// Replace the full edge set of right vertex `a` and restore
    /// maximality. Returns the signed size change.
    pub fn set_right_edges(&mut self, a: u32, mut neighbors: Vec<u32>) -> i64 {
        let ai = a as usize;
        assert!(ai < self.adj_a.len(), "right vertex {a} out of bounds");
        neighbors.sort_unstable();
        neighbors.dedup();
        for &b in &neighbors {
            assert!(
                (b as usize) < self.adj_b.len(),
                "left vertex {b} out of bounds"
            );
        }
        let before = self.size as i64;

        let old = std::mem::take(&mut self.adj_a[ai]);
        for &b in &old {
            self.adj_b[b as usize].retain(|&x| x != a);
        }
        let added: Vec<u32> = neighbors
            .iter()
            .copied()
            .filter(|b| !old.contains(b))
            .collect();
        for &b in &neighbors {
            self.adj_b[b as usize].push(a);
        }
        self.adj_a[ai] = neighbors;

        let mut freed_left = None;
        let b0 = self.match_a[ai];
        if b0 != UNMATCHED && !self.adj_a[ai].contains(&b0) {
            self.match_a[ai] = UNMATCHED;
            self.match_b[b0 as usize] = UNMATCHED;
            self.size -= 1;
            freed_left = Some(b0);
        }

        // Mirror of the left-side repair: targeted probes for the freed
        // pair cover pure removals; any *added* edges may enable an
        // augmenting path between two untouched free vertices, which the
        // free-left sweep finds (Berge: no augmenting path from any free
        // left vertex => maximum).
        if let Some(b0) = freed_left {
            if self.augment_from_left(b0) {
                self.size += 1;
            }
        }
        if self.match_a[ai] == UNMATCHED && self.augment_from_right(a) {
            self.size += 1;
        }
        if !added.is_empty() {
            self.sweep_augment();
        }
        self.size as i64 - before
    }

    /// Remove all edges of right vertex `a`. Returns the signed change.
    pub fn clear_right(&mut self, a: u32) -> i64 {
        self.set_right_edges(a, Vec::new())
    }

    /// Restore maximality after `b`'s edges changed.
    fn repair(&mut self, b: u32, freed_right: Option<u32>, added: &[u32]) {
        // 1. b may be free now (or have gained its first edges).
        if self.match_b[b as usize] == UNMATCHED && self.augment_from_left(b) {
            self.size += 1;
        }
        // 2. The right vertex freed by the update may be re-coverable
        //    (covers augmenting paths ending at it, e.g. from a left
        //    vertex that was already free before the update).
        if let Some(a0) = freed_right {
            if self.match_a[a0 as usize] == UNMATCHED && self.augment_from_right(a0) {
                self.size += 1;
            }
        }
        // 3. Added edges can enable an augmenting path whose endpoints
        //    are *neither* b nor a freed vertex (e.g. free_b ... a0 =M= b
        //    -new- x =M= b1 ... free_a). The free-left sweep catches every
        //    such path; it runs only when edges were added, and the
        //    single-vertex update bounds it to at most one augmentation
        //    per pass.
        if !added.is_empty() {
            self.sweep_augment();
        }
    }

    /// Augment from every free left vertex until none succeeds. By
    /// Berge's lemma the matching is maximum afterwards.
    fn sweep_augment(&mut self) {
        loop {
            let mut improved = false;
            for b in 0..self.adj_b.len() as u32 {
                if self.match_b[b as usize] == UNMATCHED
                    && !self.adj_b[b as usize].is_empty()
                    && self.augment_from_left(b)
                {
                    self.size += 1;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }

    /// DFS augmenting search from a free left vertex.
    fn augment_from_left(&mut self, start: u32) -> bool {
        debug_assert_eq!(self.match_b[start as usize], UNMATCHED);
        self.stamp += 1;
        self.dfs_left(start)
    }

    fn dfs_left(&mut self, b: u32) -> bool {
        // Recursive Kuhn step; candidate sets in CSJ graphs are shallow
        // (augmenting paths rarely exceed a handful of hops).
        let neighbors = self.adj_b[b as usize].clone();
        for a in neighbors {
            if self.visited_a[a as usize] == self.stamp {
                continue;
            }
            self.visited_a[a as usize] = self.stamp;
            let owner = self.match_a[a as usize];
            if owner == UNMATCHED || self.dfs_left(owner) {
                self.match_b[b as usize] = a;
                self.match_a[a as usize] = b;
                return true;
            }
        }
        false
    }

    /// Augmenting search from a free right vertex: find a neighbour `b`
    /// whose current partner can be re-routed.
    fn augment_from_right(&mut self, a: u32) -> bool {
        debug_assert_eq!(self.match_a[a as usize], UNMATCHED);
        self.stamp += 1;
        self.visited_a[a as usize] = self.stamp;
        let neighbors = self.adj_a[a as usize].clone();
        for b in neighbors {
            let prev = self.match_b[b as usize];
            if prev == UNMATCHED {
                self.match_b[b as usize] = a;
                self.match_a[a as usize] = b;
                return true;
            }
        }
        // All neighbours matched: try to re-route one of them.
        let neighbors = self.adj_a[a as usize].clone();
        for b in neighbors {
            let prev = self.match_b[b as usize];
            debug_assert_ne!(prev, UNMATCHED);
            // Tentatively give b to a; then prev needs re-covering from
            // the right side, which is exactly a left-rooted search from
            // prev's perspective... handled by freeing prev and running
            // the same procedure one level deeper via dfs on owners.
            self.match_b[b as usize] = a;
            self.match_a[a as usize] = b;
            self.match_a[prev as usize] = UNMATCHED;
            if self.augment_from_right_inner(prev) {
                return true;
            }
            // Revert.
            self.match_b[b as usize] = prev;
            self.match_a[prev as usize] = b;
            self.match_a[a as usize] = UNMATCHED;
        }
        false
    }

    fn augment_from_right_inner(&mut self, a: u32) -> bool {
        if self.visited_a[a as usize] == self.stamp {
            return false;
        }
        self.visited_a[a as usize] = self.stamp;
        let neighbors = self.adj_a[a as usize].clone();
        for b in &neighbors {
            if self.match_b[*b as usize] == UNMATCHED {
                self.match_b[*b as usize] = a;
                self.match_a[a as usize] = *b;
                return true;
            }
        }
        for b in neighbors {
            let prev = self.match_b[b as usize];
            debug_assert_ne!(prev, UNMATCHED);
            if prev == a {
                continue;
            }
            self.match_b[b as usize] = a;
            self.match_a[a as usize] = b;
            self.match_a[prev as usize] = UNMATCHED;
            if self.augment_from_right_inner(prev) {
                return true;
            }
            self.match_b[b as usize] = prev;
            self.match_a[prev as usize] = b;
            self.match_a[a as usize] = UNMATCHED;
        }
        false
    }

    /// Test helper: verify the maintained matching is valid and maximum
    /// (compares against a fresh Hopcroft–Karp run).
    pub fn assert_maximum(&self) {
        let mut edges = Vec::new();
        for (b, adj) in self.adj_b.iter().enumerate() {
            for &a in adj {
                edges.push((b as u32, a));
            }
        }
        let graph = MatchGraph::from_edges(self.adj_b.len() as u32, self.adj_a.len() as u32, edges);
        self.matching()
            .validate(&graph)
            .expect("maintained matching must be valid");
        let best = hopcroft_karp(&graph).len();
        assert_eq!(
            self.size, best,
            "dynamic matching has size {} but the maximum is {best}",
            self.size
        );
        let counted = self.matching().len();
        assert_eq!(counted, self.size, "size counter out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG for reproducible pseudo-random updates.
    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    #[test]
    fn starts_maximum_from_graph() {
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let dm = DynamicMatching::from_graph(&g);
        assert_eq!(dm.matching_size(), 2);
        dm.assert_maximum();
    }

    #[test]
    fn removing_matched_edge_repairs() {
        // b0-a0, b1-{a0,a1}. Max = 2. Remove b0's edges: max = 1.
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (1, 0), (1, 1)]);
        let mut dm = DynamicMatching::from_graph(&g);
        assert_eq!(dm.matching_size(), 2);
        let delta = dm.clear_left(0);
        assert_eq!(delta, -1);
        dm.assert_maximum();
        assert_eq!(dm.matching_size(), 1);
    }

    #[test]
    fn adding_edge_through_matched_vertex_augments() {
        // b0-{a0}, b1-{a0}: max 1 (b1 free, say). Now give b0 edge to a1:
        // path b1 - a0 - b0 - a1 must be found regardless of who holds a0.
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (1, 0)]);
        let mut dm = DynamicMatching::from_graph(&g);
        assert_eq!(dm.matching_size(), 1);
        let delta = dm.set_left_edges(0, vec![0, 1]);
        assert_eq!(delta, 1);
        dm.assert_maximum();
        assert_eq!(dm.matching_size(), 2);
    }

    #[test]
    fn right_side_updates_work() {
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (1, 0)]);
        let mut dm = DynamicMatching::from_graph(&g);
        // Give a1 edges to both b's: the free b picks it up.
        let delta = dm.set_right_edges(1, vec![0, 1]);
        assert_eq!(delta, 1);
        dm.assert_maximum();
        // Now cut a0 entirely.
        let delta = dm.clear_right(0);
        assert_eq!(delta, -1);
        dm.assert_maximum();
    }

    #[test]
    fn vertex_insertion() {
        let mut dm = DynamicMatching::new(1, 1);
        assert_eq!(dm.set_left_edges(0, vec![0]), 1);
        let b1 = dm.add_left_vertex();
        let a1 = dm.add_right_vertex();
        assert_eq!(dm.set_left_edges(b1, vec![0, a1]), 1);
        dm.assert_maximum();
        assert_eq!(dm.matching_size(), 2);
    }

    #[test]
    fn random_update_storm_stays_maximum() {
        let mut rng = lcg(0xD1CE);
        let nb = 14;
        let na = 16;
        let mut dm = DynamicMatching::new(nb, na);
        for step in 0u32..400 {
            let left = rng().is_multiple_of(2);
            if left {
                let b = rng() % nb as u32;
                let degree = (rng() % 5) as usize;
                let neighbors: Vec<u32> = (0..degree).map(|_| rng() % na as u32).collect();
                dm.set_left_edges(b, neighbors);
            } else {
                let a = rng() % na as u32;
                let degree = (rng() % 5) as usize;
                let neighbors: Vec<u32> = (0..degree).map(|_| rng() % nb as u32).collect();
                dm.set_right_edges(a, neighbors);
            }
            if step.is_multiple_of(7) {
                dm.assert_maximum();
            }
        }
        dm.assert_maximum();
    }

    #[test]
    fn partner_lookup_and_snapshot() {
        let g = MatchGraph::from_edges(1, 1, vec![(0, 0)]);
        let dm = DynamicMatching::from_graph(&g);
        assert_eq!(dm.partner_of_left(0), Some(0));
        assert_eq!(dm.matching().pairs(), &[(0, 0)]);
        assert_eq!(dm.num_left(), 1);
        assert_eq!(dm.num_right(), 1);
    }
}
