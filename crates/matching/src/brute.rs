//! Exponential-time exact maximum matching for tiny graphs.
//!
//! This is the testing oracle: property tests compare CSF, Kuhn and
//! Hopcroft–Karp against it on small random instances. It recurses over
//! left nodes, trying "skip" and every available partner, with a simple
//! remaining-nodes upper-bound prune.

use crate::{MatchGraph, Matching};

/// Practical size guard: beyond this many left nodes the search space is
/// too large for a test oracle.
const MAX_LEFT: u32 = 20;

/// Compute a true maximum matching by exhaustive search.
///
/// # Panics
/// Panics if the graph has more than 20 left nodes — this function is a
/// test oracle, not a production matcher.
pub fn brute_force_maximum(graph: &MatchGraph) -> Matching {
    assert!(
        graph.num_left() <= MAX_LEFT,
        "brute_force_maximum is a test oracle; {} left nodes is too many",
        graph.num_left()
    );
    let mut right_used = vec![false; graph.num_right() as usize];
    let mut current: Vec<(u32, u32)> = Vec::new();
    let mut best: Vec<(u32, u32)> = Vec::new();
    recurse(graph, 0, &mut right_used, &mut current, &mut best);
    Matching::from_pairs(best)
}

fn recurse(
    graph: &MatchGraph,
    b: u32,
    right_used: &mut [bool],
    current: &mut Vec<(u32, u32)>,
    best: &mut Vec<(u32, u32)>,
) {
    let nb = graph.num_left();
    if b == nb {
        if current.len() > best.len() {
            best.clear();
            best.extend_from_slice(current);
        }
        return;
    }
    // Upper bound: even matching every remaining left node cannot beat best.
    if current.len() + (nb - b) as usize <= best.len() {
        return;
    }
    // Try matching b to each free neighbour.
    for &a in graph.neighbors_of_left(b) {
        if !right_used[a as usize] {
            right_used[a as usize] = true;
            current.push((b, a));
            recurse(graph, b + 1, right_used, current, best);
            current.pop();
            right_used[a as usize] = false;
        }
    }
    // Or leave b unmatched.
    recurse(graph, b + 1, right_used, current, best);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_maximum_not_just_maximal() {
        // Greedy-in-order gets 1 pair here; the maximum is 2.
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = brute_force_maximum(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty() {
        let g = MatchGraph::from_edges(0, 5, vec![]);
        assert!(brute_force_maximum(&g).is_empty());
    }

    #[test]
    fn star_graph_yields_one_pair() {
        let g = MatchGraph::from_edges(4, 1, vec![(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert_eq!(brute_force_maximum(&g).len(), 1);
    }

    #[test]
    #[should_panic(expected = "test oracle")]
    fn rejects_oversized_input() {
        let g = MatchGraph::from_edges(21, 1, vec![]);
        brute_force_maximum(&g);
    }
}
