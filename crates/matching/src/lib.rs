//! # csj-matching — one-to-one matching substrate for CSJ
//!
//! The CSJ problem ("Community Similarity based on User Profile Joins",
//! EDBT 2024) reduces, once all joinable user pairs are known, to finding a
//! **maximum one-to-one matching** in the bipartite graph whose left nodes
//! are users of community `B`, right nodes are users of community `A`, and
//! whose edges are the pairs satisfying the per-dimension epsilon condition.
//!
//! This crate implements that substrate:
//!
//! * [`MatchGraph`] — a compact CSR bipartite graph.
//! * [`csf`] — the paper's **CSF (Cover Smallest First)** heuristic, which
//!   repeatedly covers the currently smallest-degree user (Function CSF in
//!   the paper).
//! * [`greedy`] — first-fit greedy matching (what the *approximate* CSJ
//!   methods effectively compute, made reusable for audits).
//! * [`kuhn`] — Kuhn's augmenting-path algorithm (simple exact maximum).
//! * [`hopcroft_karp`] — Hopcroft–Karp (fast exact maximum), used to audit
//!   how far CSF is from the true optimum.
//! * [`brute_force_maximum`] — exponential oracle for tiny instances, used
//!   by the test suites of this crate and of `csj-core`.
//! * [`DynamicMatching`] — a maximum matching maintained under
//!   per-vertex edge updates (the substrate of incremental CSJ).
//!
//! All algorithms return a [`Matching`]; [`Matching::validate`] checks the
//! one-to-one invariants against the originating graph.

mod brute;
mod csf;
mod dynamic;
mod graph;
mod greedy;
mod hopcroft_karp;
mod kuhn;
mod matching;

pub use brute::brute_force_maximum;
pub use csf::csf;
pub use dynamic::DynamicMatching;
pub use graph::{GraphBuilder, MatchGraph};
pub use greedy::greedy;
pub use hopcroft_karp::hopcroft_karp;
pub use kuhn::kuhn;
pub use matching::{Matching, MatchingError};

/// Which one-to-one matcher an exact CSJ method should use.
///
/// The paper's exact methods use [`MatcherKind::Csf`]. The other variants
/// exist for ablation: `HopcroftKarp`/`Kuhn` compute the true maximum
/// matching, `Greedy` reproduces the approximate method's assignment on an
/// already-materialised candidate graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MatcherKind {
    /// Cover Smallest First — the paper's matcher (degree-ascending greedy).
    #[default]
    Csf,
    /// Hopcroft–Karp maximum bipartite matching, `O(E sqrt(V))`.
    HopcroftKarp,
    /// Kuhn's augmenting paths, `O(V * E)`.
    Kuhn,
    /// First-fit greedy in edge insertion order.
    Greedy,
}

impl MatcherKind {
    /// All matcher kinds, for sweeps and ablations.
    pub const ALL: [MatcherKind; 4] = [
        MatcherKind::Csf,
        MatcherKind::HopcroftKarp,
        MatcherKind::Kuhn,
        MatcherKind::Greedy,
    ];

    /// Stable lowercase name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Csf => "csf",
            MatcherKind::HopcroftKarp => "hopcroft-karp",
            MatcherKind::Kuhn => "kuhn",
            MatcherKind::Greedy => "greedy",
        }
    }

    /// Whether this matcher is guaranteed to return a *maximum* matching.
    pub fn is_guaranteed_maximum(self) -> bool {
        matches!(self, MatcherKind::HopcroftKarp | MatcherKind::Kuhn)
    }
}

impl std::str::FromStr for MatcherKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "csf" => Ok(MatcherKind::Csf),
            "hopcroft-karp" | "hk" => Ok(MatcherKind::HopcroftKarp),
            "kuhn" => Ok(MatcherKind::Kuhn),
            "greedy" => Ok(MatcherKind::Greedy),
            other => Err(format!("unknown matcher kind: {other:?}")),
        }
    }
}

impl std::fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Run the matcher selected by `kind` on `graph`.
pub fn run_matcher(graph: &MatchGraph, kind: MatcherKind) -> Matching {
    match kind {
        MatcherKind::Csf => csf(graph),
        MatcherKind::HopcroftKarp => hopcroft_karp(graph),
        MatcherKind::Kuhn => kuhn(graph),
        MatcherKind::Greedy => greedy(graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_kind_roundtrip() {
        for kind in MatcherKind::ALL {
            let parsed: MatcherKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn matcher_kind_rejects_unknown() {
        assert!("nope".parse::<MatcherKind>().is_err());
    }

    #[test]
    fn guaranteed_maximum_flags() {
        assert!(!MatcherKind::Csf.is_guaranteed_maximum());
        assert!(MatcherKind::HopcroftKarp.is_guaranteed_maximum());
        assert!(MatcherKind::Kuhn.is_guaranteed_maximum());
        assert!(!MatcherKind::Greedy.is_guaranteed_maximum());
    }
}
