//! First-fit greedy matching in edge insertion order.
//!
//! This mirrors what the *approximate* CSJ methods compute implicitly: the
//! first time an unmatched `b` meets an unmatched `a`, the pair is taken and
//! both users are consumed. Having it as a standalone matcher lets the test
//! suite and the `ablation_matcher` bench compare the approximate
//! assignment policy against CSF and the true maximum on identical
//! candidate graphs.

use crate::{MatchGraph, Matching};

/// Greedily match edges in their first-occurrence order.
pub fn greedy(graph: &MatchGraph) -> Matching {
    let mut left_used = vec![false; graph.num_left() as usize];
    let mut right_used = vec![false; graph.num_right() as usize];
    let mut out = Matching::new();
    for &(b, a) in graph.edges() {
        if !left_used[b as usize] && !right_used[a as usize] {
            left_used[b as usize] = true;
            right_used[a as usize] = true;
            out.push(b, a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_first_available() {
        // Edge order (0,0) first: greedy pairs b0-a0 and strands b1 (which
        // only connects to a0) — a maximal but not maximum matching.
        let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = greedy(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.pairs(), &[(0, 0)]);
    }

    #[test]
    fn insertion_order_matters() {
        // Same graph, better order: b1's only edge first.
        let g = MatchGraph::from_edges(2, 2, vec![(1, 0), (0, 0), (0, 1)]);
        let m = greedy(&g);
        assert_eq!(m.pairs(), &[(1, 0), (0, 1)]);
    }

    #[test]
    fn empty() {
        let g = MatchGraph::from_edges(0, 0, vec![]);
        assert!(greedy(&g).is_empty());
    }

    #[test]
    fn maximal_property() {
        // Greedy output is always maximal: no remaining edge has both
        // endpoints free.
        let g = MatchGraph::from_edges(
            4,
            4,
            vec![(0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 2), (3, 3)],
        );
        let m = greedy(&g);
        m.validate(&g).unwrap();
        let mut lu = [false; 4];
        let mut ru = [false; 4];
        for &(b, a) in m.pairs() {
            lu[b as usize] = true;
            ru[a as usize] = true;
        }
        for &(b, a) in g.edges() {
            assert!(
                lu[b as usize] || ru[a as usize],
                "edge ({b},{a}) extends the matching"
            );
        }
    }
}
