//! Kuhn's algorithm: maximum bipartite matching via DFS augmenting paths.
//!
//! `O(V * E)` worst case. Used as a second, independently implemented exact
//! matcher so Hopcroft–Karp has a cross-check in the test suite, and as a
//! reasonable default when candidate graphs are tiny. The DFS is iterative,
//! so deep augmenting chains cannot overflow the call stack.

use crate::{MatchGraph, Matching};

const UNMATCHED: u32 = u32::MAX;

/// Compute a maximum matching with Kuhn's augmenting-path algorithm.
pub fn kuhn(graph: &MatchGraph) -> Matching {
    let nb = graph.num_left() as usize;
    let na = graph.num_right() as usize;
    let mut match_a: Vec<u32> = vec![UNMATCHED; na]; // a -> b
    let mut visited: Vec<u32> = vec![UNMATCHED; na]; // phase stamp per a
                                                     // Iterative DFS: frames of (b, next neighbour cursor); `path[i]` is the
                                                     // a-node through which frame `i+1` was entered (path.len() == depth).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    let mut path: Vec<u32> = Vec::new();

    for start in 0..nb as u32 {
        if graph.left_degree(start) == 0 {
            continue;
        }
        stack.clear();
        path.clear();
        stack.push((start, 0));
        let stamp = start;
        let mut augmented = false;

        while let Some(top) = stack.len().checked_sub(1) {
            let (b, cursor) = stack[top];
            let neighbors = graph.neighbors_of_left(b);
            if cursor >= neighbors.len() {
                // Exhausted this b: backtrack (pop the a that led here too).
                stack.pop();
                path.pop();
                continue;
            }
            stack[top].1 += 1;
            let a = neighbors[cursor];
            if visited[a as usize] == stamp {
                continue;
            }
            visited[a as usize] = stamp;
            if match_a[a as usize] == UNMATCHED {
                // Augmenting path found; record its final a and flip below.
                path.push(a);
                augmented = true;
                break;
            }
            // Descend into the b currently holding `a`.
            path.push(a);
            stack.push((match_a[a as usize], 0));
        }

        if augmented {
            debug_assert_eq!(stack.len(), path.len());
            for (&(b, _), &a) in stack.iter().zip(path.iter()) {
                match_a[a as usize] = b;
            }
        }
    }

    let mut out = Matching::new();
    for (a, &b) in match_a.iter().enumerate() {
        if b != UNMATCHED {
            out.push(b, a as u32);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_maximum;

    fn graph(nb: u32, na: u32, edges: &[(u32, u32)]) -> MatchGraph {
        MatchGraph::from_edges(nb, na, edges.to_vec())
    }

    #[test]
    fn finds_augmenting_path() {
        let g = graph(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = kuhn(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty() {
        let g = graph(0, 0, &[]);
        assert!(kuhn(&g).is_empty());
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        type Case = (u32, u32, Vec<(u32, u32)>);
        let cases: Vec<Case> = vec![
            (3, 3, vec![(0, 0), (1, 0), (2, 0)]),
            (3, 3, vec![(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]),
            (4, 2, vec![(0, 0), (1, 0), (2, 1), (3, 1)]),
            (
                5,
                5,
                vec![
                    (0, 1),
                    (0, 2),
                    (1, 0),
                    (1, 3),
                    (2, 1),
                    (3, 4),
                    (3, 0),
                    (4, 2),
                    (4, 4),
                ],
            ),
        ];
        for (nb, na, edges) in cases {
            let g = graph(nb, na, &edges);
            let m = kuhn(&g);
            m.validate(&g).unwrap();
            assert_eq!(m.len(), brute_force_maximum(&g).len(), "edges={edges:?}");
        }
    }

    #[test]
    fn long_augmenting_chain() {
        // Chain graph forcing repeated re-matching: b_i -> {a_i, a_{i+1}}.
        let n = 50u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            edges.push((i, i + 1));
        }
        let g = graph(n, n + 1, &edges);
        let m = kuhn(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), n as usize);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A pathological instance that forces one very long augmenting path:
        // all b_i prefer a_0 first, then their own a_i.
        let n = 5_000u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, 0));
            edges.push((i, i));
        }
        let g = graph(n, n, &edges);
        let m = kuhn(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), n as usize);
    }
}
