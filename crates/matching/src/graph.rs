//! Compact bipartite candidate graph.
//!
//! Left nodes index users of community `B`, right nodes users of community
//! `A`. Edges are the joinable pairs discovered by a CSJ method. The graph
//! is stored in CSR form (offsets + flat adjacency) for cache-friendly
//! traversal; a [`GraphBuilder`] accumulates edges in discovery order.

/// Incrementally accumulates `(b, a)` candidate edges.
///
/// Edge order is preserved: [`greedy`](crate::greedy) is defined in terms of
/// insertion order, which for CSJ mirrors the order in which the join
/// discovered the pairs.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_left: u32,
    num_right: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// New builder for `num_left` `B`-users and `num_right` `A`-users.
    pub fn new(num_left: u32, num_right: u32) -> Self {
        Self {
            num_left,
            num_right,
            edges: Vec::new(),
        }
    }

    /// New builder with a capacity hint for the expected edge count.
    pub fn with_capacity(num_left: u32, num_right: u32, edges: usize) -> Self {
        Self {
            num_left,
            num_right,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Record edge `(b, a)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of bounds — edges always come from
    /// in-bounds join loops, so an out-of-range endpoint is an internal bug.
    #[inline]
    pub fn add_edge(&mut self, b: u32, a: u32) {
        assert!(b < self.num_left, "left endpoint {b} out of bounds");
        assert!(a < self.num_right, "right endpoint {a} out of bounds");
        self.edges.push((b, a));
    }

    /// Number of edges recorded so far (duplicates included).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finish building. Duplicate edges are dropped (keeping the first
    /// occurrence) so that node degrees are meaningful.
    pub fn build(self) -> MatchGraph {
        MatchGraph::from_edges(self.num_left, self.num_right, self.edges)
    }
}

/// A bipartite candidate graph in CSR form, plus the reverse adjacency.
///
/// Construction cost is `O(V + E)`; adjacency lists preserve the insertion
/// order of the first occurrence of each edge.
#[derive(Debug, Clone)]
pub struct MatchGraph {
    num_left: u32,
    num_right: u32,
    /// CSR offsets for the left side, length `num_left + 1`.
    left_offsets: Vec<u32>,
    /// Flat neighbour array for the left side, length = edge count.
    left_adj: Vec<u32>,
    /// CSR offsets for the right side, length `num_right + 1`.
    right_offsets: Vec<u32>,
    /// Flat neighbour array for the right side.
    right_adj: Vec<u32>,
    /// Deduplicated edges in first-occurrence order.
    edges: Vec<(u32, u32)>,
}

impl MatchGraph {
    /// Build a graph from raw edges. Duplicates are removed, keeping first
    /// occurrences, so degrees reflect distinct candidate partners.
    pub fn from_edges(num_left: u32, num_right: u32, mut edges: Vec<(u32, u32)>) -> Self {
        for &(b, a) in &edges {
            assert!(b < num_left, "left endpoint {b} out of bounds");
            assert!(a < num_right, "right endpoint {a} out of bounds");
        }
        dedup_preserving_order(&mut edges);

        let mut left_offsets = vec![0u32; num_left as usize + 1];
        let mut right_offsets = vec![0u32; num_right as usize + 1];
        for &(b, a) in &edges {
            left_offsets[b as usize + 1] += 1;
            right_offsets[a as usize + 1] += 1;
        }
        for i in 1..left_offsets.len() {
            left_offsets[i] += left_offsets[i - 1];
        }
        for i in 1..right_offsets.len() {
            right_offsets[i] += right_offsets[i - 1];
        }

        let mut left_adj = vec![0u32; edges.len()];
        let mut right_adj = vec![0u32; edges.len()];
        let mut lcur = left_offsets.clone();
        let mut rcur = right_offsets.clone();
        for &(b, a) in &edges {
            left_adj[lcur[b as usize] as usize] = a;
            lcur[b as usize] += 1;
            right_adj[rcur[a as usize] as usize] = b;
            rcur[a as usize] += 1;
        }

        Self {
            num_left,
            num_right,
            left_offsets,
            left_adj,
            right_offsets,
            right_adj,
            edges,
        }
    }

    /// Number of left (`B`) nodes.
    pub fn num_left(&self) -> u32 {
        self.num_left
    }

    /// Number of right (`A`) nodes.
    pub fn num_right(&self) -> u32 {
        self.num_right
    }

    /// Number of distinct edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Distinct edges in first-occurrence order.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Neighbours (right nodes) of left node `b`.
    #[inline]
    pub fn neighbors_of_left(&self, b: u32) -> &[u32] {
        let lo = self.left_offsets[b as usize] as usize;
        let hi = self.left_offsets[b as usize + 1] as usize;
        &self.left_adj[lo..hi]
    }

    /// Neighbours (left nodes) of right node `a`.
    #[inline]
    pub fn neighbors_of_right(&self, a: u32) -> &[u32] {
        let lo = self.right_offsets[a as usize] as usize;
        let hi = self.right_offsets[a as usize + 1] as usize;
        &self.right_adj[lo..hi]
    }

    /// Degree of left node `b`.
    #[inline]
    pub fn left_degree(&self, b: u32) -> u32 {
        self.left_offsets[b as usize + 1] - self.left_offsets[b as usize]
    }

    /// Degree of right node `a`.
    #[inline]
    pub fn right_degree(&self, a: u32) -> u32 {
        self.right_offsets[a as usize + 1] - self.right_offsets[a as usize]
    }

    /// Whether edge `(b, a)` is present. `O(deg(b))`.
    pub fn has_edge(&self, b: u32, a: u32) -> bool {
        self.neighbors_of_left(b).contains(&a)
    }
}

/// Remove duplicate pairs while keeping the first occurrence of each.
fn dedup_preserving_order(edges: &mut Vec<(u32, u32)>) {
    if edges.len() < 2 {
        return;
    }
    // Sort a copy of (edge, original_index), detect duplicates, and rebuild.
    // This avoids a hash set (no hashing dependency, deterministic order).
    let mut tagged: Vec<(u32, u32, u32)> = edges
        .iter()
        .enumerate()
        .map(|(i, &(b, a))| (b, a, i as u32))
        .collect();
    tagged.sort_unstable();
    let mut keep = vec![true; edges.len()];
    let mut any_dup = false;
    for w in tagged.windows(2) {
        if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
            // Same edge: drop the later occurrence.
            let later = w[0].2.max(w[1].2);
            keep[later as usize] = false;
            any_dup = true;
        }
    }
    if any_dup {
        let mut i = 0;
        edges.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_csr_both_sides() {
        let mut b = GraphBuilder::new(3, 4);
        b.add_edge(0, 1);
        b.add_edge(0, 3);
        b.add_edge(2, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors_of_left(0), &[1, 3]);
        assert_eq!(g.neighbors_of_left(1), &[] as &[u32]);
        assert_eq!(g.neighbors_of_left(2), &[1]);
        assert_eq!(g.neighbors_of_right(1), &[0, 2]);
        assert_eq!(g.neighbors_of_right(0), &[] as &[u32]);
        assert_eq!(g.left_degree(0), 2);
        assert_eq!(g.right_degree(1), 2);
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let g = MatchGraph::from_edges(2, 2, vec![(1, 0), (0, 1), (1, 0), (0, 1), (0, 0)]);
        assert_eq!(g.edges(), &[(1, 0), (0, 1), (0, 0)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0, 0).build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_left(), 0);
    }

    #[test]
    fn has_edge_lookup() {
        let g = MatchGraph::from_edges(2, 2, vec![(0, 1)]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_edge() {
        let mut b = GraphBuilder::new(1, 1);
        b.add_edge(1, 0);
    }

    #[test]
    fn isolated_nodes_have_empty_neighbourhoods() {
        let g = MatchGraph::from_edges(5, 5, vec![(2, 2)]);
        for i in [0u32, 1, 3, 4] {
            assert!(g.neighbors_of_left(i).is_empty());
            assert!(g.neighbors_of_right(i).is_empty());
        }
    }
}
