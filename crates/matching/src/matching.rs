//! The [`Matching`] result type and its validation.

use crate::MatchGraph;

/// A one-to-one assignment between left (`B`) and right (`A`) nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    pairs: Vec<(u32, u32)>,
}

/// Violations detected by [`Matching::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchingError {
    /// A pair references an edge that does not exist in the graph.
    PhantomEdge { b: u32, a: u32 },
    /// A left node appears in more than one pair.
    LeftReused(u32),
    /// A right node appears in more than one pair.
    RightReused(u32),
}

impl std::fmt::Display for MatchingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchingError::PhantomEdge { b, a } => {
                write!(f, "matched pair ({b}, {a}) is not an edge of the graph")
            }
            MatchingError::LeftReused(b) => write!(f, "left node {b} matched more than once"),
            MatchingError::RightReused(a) => write!(f, "right node {a} matched more than once"),
        }
    }
}

impl std::error::Error for MatchingError {}

impl Matching {
    /// Empty matching.
    pub fn new() -> Self {
        Self::default()
    }

    /// Matching from raw pairs. Invariants are *not* checked here; call
    /// [`Matching::validate`] when the pairs come from untrusted code.
    pub fn from_pairs(pairs: Vec<(u32, u32)>) -> Self {
        Self { pairs }
    }

    /// Add pair `(b, a)`.
    #[inline]
    pub fn push(&mut self, b: u32, a: u32) {
        self.pairs.push((b, a));
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the matching is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The matched `(b, a)` pairs.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Consume into the raw pair vector.
    pub fn into_pairs(self) -> Vec<(u32, u32)> {
        self.pairs
    }

    /// Merge another matching into this one (used when a join flushes
    /// per-segment matchings, as Ex-MinMax does).
    pub fn extend_from(&mut self, other: Matching) {
        self.pairs.extend(other.pairs);
    }

    /// Check the one-to-one invariants against `graph`:
    /// every pair is a real edge, and no node is used twice.
    pub fn validate(&self, graph: &MatchGraph) -> Result<(), MatchingError> {
        let mut left_used = vec![false; graph.num_left() as usize];
        let mut right_used = vec![false; graph.num_right() as usize];
        for &(b, a) in &self.pairs {
            if !graph.has_edge(b, a) {
                return Err(MatchingError::PhantomEdge { b, a });
            }
            if std::mem::replace(&mut left_used[b as usize], true) {
                return Err(MatchingError::LeftReused(b));
            }
            if std::mem::replace(&mut right_used[a as usize], true) {
                return Err(MatchingError::RightReused(a));
            }
        }
        Ok(())
    }
}

impl FromIterator<(u32, u32)> for Matching {
    fn from_iter<T: IntoIterator<Item = (u32, u32)>>(iter: T) -> Self {
        Self {
            pairs: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> MatchGraph {
        MatchGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)])
    }

    #[test]
    fn validate_accepts_proper_matching() {
        let m = Matching::from_pairs(vec![(0, 1), (1, 0)]);
        assert!(m.validate(&diamond()).is_ok());
    }

    #[test]
    fn validate_rejects_phantom_edge() {
        let m = Matching::from_pairs(vec![(1, 1)]);
        assert_eq!(
            m.validate(&diamond()),
            Err(MatchingError::PhantomEdge { b: 1, a: 1 })
        );
    }

    #[test]
    fn validate_rejects_reuse() {
        let m = Matching::from_pairs(vec![(0, 0), (0, 1)]);
        assert_eq!(m.validate(&diamond()), Err(MatchingError::LeftReused(0)));
        let m = Matching::from_pairs(vec![(0, 0), (1, 0)]);
        assert_eq!(m.validate(&diamond()), Err(MatchingError::RightReused(0)));
    }

    #[test]
    fn extend_from_merges() {
        let mut m = Matching::from_pairs(vec![(0, 0)]);
        m.extend_from(Matching::from_pairs(vec![(1, 1)]));
        assert_eq!(m.pairs(), &[(0, 0), (1, 1)]);
    }

    #[test]
    fn error_display_messages() {
        let e = MatchingError::PhantomEdge { b: 3, a: 4 };
        assert!(e.to_string().contains("(3, 4)"));
        assert!(MatchingError::LeftReused(7).to_string().contains('7'));
        assert!(MatchingError::RightReused(9).to_string().contains('9'));
    }
}
