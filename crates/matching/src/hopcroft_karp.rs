//! Hopcroft–Karp maximum bipartite matching, `O(E * sqrt(V))`.
//!
//! This is the fast exact matcher used to *audit* the paper's CSF
//! heuristic: running both on the same candidate graph measures exactly how
//! many pairs (if any) CSF leaves on the table. It is also the matcher an
//! exactness-critical deployment of CSJ should use (`MatcherKind::HopcroftKarp`).

use std::collections::VecDeque;

use crate::{MatchGraph, Matching};

const UNMATCHED: u32 = u32::MAX;
const INF: u32 = u32::MAX;

struct Hk<'g> {
    graph: &'g MatchGraph,
    match_b: Vec<u32>, // b -> a
    match_a: Vec<u32>, // a -> b
    dist: Vec<u32>,    // BFS layer per b
    queue: VecDeque<u32>,
}

impl<'g> Hk<'g> {
    fn new(graph: &'g MatchGraph) -> Self {
        Self {
            graph,
            match_b: vec![UNMATCHED; graph.num_left() as usize],
            match_a: vec![UNMATCHED; graph.num_right() as usize],
            dist: vec![INF; graph.num_left() as usize],
            queue: VecDeque::new(),
        }
    }

    /// BFS phase: layer free `B` nodes at distance 0, alternate
    /// unmatched/matched edges, return whether a free `A` node is reachable.
    fn bfs(&mut self) -> bool {
        self.queue.clear();
        for b in 0..self.graph.num_left() {
            if self.match_b[b as usize] == UNMATCHED && self.graph.left_degree(b) > 0 {
                self.dist[b as usize] = 0;
                self.queue.push_back(b);
            } else {
                self.dist[b as usize] = INF;
            }
        }
        let mut found = false;
        while let Some(b) = self.queue.pop_front() {
            let d = self.dist[b as usize];
            for &a in self.graph.neighbors_of_left(b) {
                let owner = self.match_a[a as usize];
                if owner == UNMATCHED {
                    found = true;
                } else if self.dist[owner as usize] == INF {
                    self.dist[owner as usize] = d + 1;
                    self.queue.push_back(owner);
                }
            }
        }
        found
    }

    /// Iterative layered DFS from `start`, flipping an augmenting path if
    /// one is found within the BFS layering.
    fn dfs(&mut self, start: u32, cursors: &mut [usize]) -> bool {
        let mut stack: Vec<u32> = vec![start];
        let mut path_a: Vec<u32> = Vec::new();
        while let Some(&b) = stack.last() {
            let neighbors = self.graph.neighbors_of_left(b);
            let cur = &mut cursors[b as usize];
            let mut advanced = false;
            while *cur < neighbors.len() {
                let a = neighbors[*cur];
                *cur += 1;
                let owner = self.match_a[a as usize];
                if owner == UNMATCHED {
                    // Augment along stack/path_a.
                    path_a.push(a);
                    debug_assert_eq!(stack.len(), path_a.len());
                    for (&pb, &pa) in stack.iter().zip(path_a.iter()) {
                        self.match_b[pb as usize] = pa;
                        self.match_a[pa as usize] = pb;
                    }
                    return true;
                }
                if self.dist[owner as usize] == self.dist[b as usize] + 1 {
                    path_a.push(a);
                    stack.push(owner);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Dead end: remove from the layering so other DFS trees
                // do not retry it this phase.
                self.dist[b as usize] = INF;
                stack.pop();
                path_a.pop();
            }
        }
        false
    }
}

/// Compute a maximum matching with Hopcroft–Karp.
///
/// ```
/// use csj_matching::{hopcroft_karp, MatchGraph};
///
/// let g = MatchGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
/// assert_eq!(hopcroft_karp(&g).len(), 2); // greedy could stop at 1
/// ```
pub fn hopcroft_karp(graph: &MatchGraph) -> Matching {
    let mut hk = Hk::new(graph);
    let nb = graph.num_left() as usize;
    let mut cursors = vec![0usize; nb];
    while hk.bfs() {
        cursors.iter_mut().for_each(|c| *c = 0);
        for b in 0..nb as u32 {
            if hk.match_b[b as usize] == UNMATCHED
                && hk.dist[b as usize] == 0
                && graph.left_degree(b) > 0
            {
                hk.dfs(b, &mut cursors);
            }
        }
    }
    let mut out = Matching::new();
    for (b, &a) in hk.match_b.iter().enumerate() {
        if a != UNMATCHED {
            out.push(b as u32, a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute_force_maximum, kuhn};

    fn graph(nb: u32, na: u32, edges: &[(u32, u32)]) -> MatchGraph {
        MatchGraph::from_edges(nb, na, edges.to_vec())
    }

    #[test]
    fn empty() {
        assert!(hopcroft_karp(&graph(2, 2, &[])).is_empty());
    }

    #[test]
    fn perfect_matching_on_cycle() {
        let g = graph(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (2, 0)]);
        let m = hopcroft_karp(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn agrees_with_kuhn_and_brute_force() {
        type Case = (u32, u32, Vec<(u32, u32)>);
        let cases: Vec<Case> = vec![
            (3, 3, vec![(0, 0), (1, 0), (2, 0)]),
            (4, 2, vec![(0, 0), (1, 0), (2, 1), (3, 1)]),
            (2, 2, vec![(0, 0), (0, 1), (1, 0)]),
            (
                6,
                6,
                vec![
                    (0, 0),
                    (0, 1),
                    (1, 0),
                    (1, 2),
                    (2, 1),
                    (2, 3),
                    (3, 2),
                    (3, 4),
                    (4, 3),
                    (4, 5),
                    (5, 4),
                ],
            ),
        ];
        for (nb, na, edges) in cases {
            let g = graph(nb, na, &edges);
            let hk = hopcroft_karp(&g);
            hk.validate(&g).unwrap();
            assert_eq!(hk.len(), kuhn(&g).len(), "edges={edges:?}");
            assert_eq!(hk.len(), brute_force_maximum(&g).len(), "edges={edges:?}");
        }
    }

    #[test]
    fn large_random_agrees_with_kuhn() {
        // Deterministic pseudo-random graph via an LCG (no rand dependency
        // needed in non-dev builds; this is a dev test but the LCG keeps it
        // reproducible across rand versions).
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let nb = 300u32;
        let na = 350u32;
        let mut edges = Vec::new();
        for _ in 0..2000 {
            edges.push((next() % nb, next() % na));
        }
        let g = graph(nb, na, &edges);
        let hk = hopcroft_karp(&g);
        hk.validate(&g).unwrap();
        assert_eq!(hk.len(), kuhn(&g).len());
    }
}
