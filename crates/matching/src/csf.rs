//! **CSF — Cover Smallest First**, the paper's one-to-one matcher
//! (Function CSF in Section 4.2).
//!
//! CSF repeatedly *covers* the user with the fewest remaining candidate
//! partners: assigning a match to the smallest users first and excluding
//! them from the pairing process "leaves a bigger portion of available
//! pairs in order more matches overall to be found". It is a
//! lowest-degree-first heuristic; it is not guaranteed to reach the true
//! maximum matching (see `hopcroft_karp` and the `ablation_matcher` bench
//! for the audit), but in the paper — and empirically on CSJ candidate
//! graphs, which are unions of near-cliques — it is optimal or within a
//! fraction of a percent of optimal.
//!
//! Faithfulness notes (mapping to the paper's pseudocode):
//!
//! * `matched_B` / `matched_A` are the adjacency lists of the candidate
//!   graph (neighbours still alive).
//! * `sortedM_B` / `sortedM_A` are degree-ascending bucket maps
//!   (`BTreeMap<degree, BTreeSet<node>>`), i.e. maps from
//!   "|matches in A|" (resp. "|matches in B|") to the users having that
//!   cardinality, exactly as Lines 3–4 of Ex-MinMax describe.
//! * One loop iteration compares the two smallest cardinalities (Line 3 /
//!   Line 6), walks the smaller bucket looking for a user whose best
//!   partner has a single match ("break if single match"), and on a tie
//!   (Lines 9–10) tries the `B` side first and falls back to the `A` side,
//!   finally inserting "the found pair `<b, a>` having minimum connections
//!   in `B` and `A`" (Line 11).
//! * Matched pairs are removed and all affected cardinalities updated
//!   (Line 12); the loop exits when either sorted map drains (Line 13).

use std::collections::{BTreeMap, BTreeSet};

use crate::{MatchGraph, Matching};

/// Degree-ascending bucket structure over one side of the graph.
struct Buckets {
    by_degree: BTreeMap<u32, BTreeSet<u32>>,
}

impl Buckets {
    fn new() -> Self {
        Self {
            by_degree: BTreeMap::new(),
        }
    }

    fn insert(&mut self, node: u32, degree: u32) {
        debug_assert!(degree >= 1);
        self.by_degree.entry(degree).or_default().insert(node);
    }

    fn remove(&mut self, node: u32, degree: u32) {
        if let Some(set) = self.by_degree.get_mut(&degree) {
            set.remove(&node);
            if set.is_empty() {
                self.by_degree.remove(&degree);
            }
        }
    }

    fn min_degree(&self) -> Option<u32> {
        self.by_degree.keys().next().copied()
    }

    fn smallest_bucket(&self) -> Option<&BTreeSet<u32>> {
        self.by_degree.values().next()
    }

    fn is_empty(&self) -> bool {
        self.by_degree.is_empty()
    }
}

struct CsfState<'g> {
    graph: &'g MatchGraph,
    alive_b: Vec<bool>,
    alive_a: Vec<bool>,
    deg_b: Vec<u32>,
    deg_a: Vec<u32>,
    buckets_b: Buckets,
    buckets_a: Buckets,
}

/// A candidate pair selected by one CSF scan, with the partner's degree so
/// the tie rule can compare "minimum connections".
#[derive(Clone, Copy)]
struct Candidate {
    b: u32,
    a: u32,
    own_degree: u32,
    partner_degree: u32,
}

impl<'g> CsfState<'g> {
    fn new(graph: &'g MatchGraph) -> Self {
        let nb = graph.num_left() as usize;
        let na = graph.num_right() as usize;
        let mut deg_b = vec![0u32; nb];
        let mut deg_a = vec![0u32; na];
        for b in 0..nb as u32 {
            deg_b[b as usize] = graph.left_degree(b);
        }
        for a in 0..na as u32 {
            deg_a[a as usize] = graph.right_degree(a);
        }
        let mut buckets_b = Buckets::new();
        let mut buckets_a = Buckets::new();
        let mut alive_b = vec![false; nb];
        let mut alive_a = vec![false; na];
        for (b, &d) in deg_b.iter().enumerate() {
            if d > 0 {
                buckets_b.insert(b as u32, d);
                alive_b[b] = true;
            }
        }
        for (a, &d) in deg_a.iter().enumerate() {
            if d > 0 {
                buckets_a.insert(a as u32, d);
                alive_a[a] = true;
            }
        }
        Self {
            graph,
            alive_b,
            alive_a,
            deg_b,
            deg_a,
            buckets_b,
            buckets_a,
        }
    }

    /// Walk the smallest `B` bucket: for each `b`, find its alive partner
    /// `a` with the fewest matches; stop early once a single-match partner
    /// is found (paper: "break if single match").
    fn scan_b_side(&self) -> Option<Candidate> {
        let bucket = self.buckets_b.smallest_bucket()?;
        let mut best: Option<Candidate> = None;
        for &b in bucket {
            let mut partner: Option<(u32, u32)> = None; // (a, deg_a)
            for &a in self.graph.neighbors_of_left(b) {
                if !self.alive_a[a as usize] {
                    continue;
                }
                let d = self.deg_a[a as usize];
                if partner.is_none_or(|(_, pd)| d < pd) {
                    partner = Some((a, d));
                    if d == 1 {
                        break;
                    }
                }
            }
            let (a, pd) = partner.expect("alive b must have an alive neighbour");
            let cand = Candidate {
                b,
                a,
                own_degree: self.deg_b[b as usize],
                partner_degree: pd,
            };
            if best.is_none_or(|bc| cand.partner_degree < bc.partner_degree) {
                best = Some(cand);
            }
            if pd == 1 {
                break;
            }
        }
        best
    }

    /// Mirror of [`scan_b_side`] for the `A` side.
    fn scan_a_side(&self) -> Option<Candidate> {
        let bucket = self.buckets_a.smallest_bucket()?;
        let mut best: Option<Candidate> = None;
        for &a in bucket {
            let mut partner: Option<(u32, u32)> = None; // (b, deg_b)
            for &b in self.graph.neighbors_of_right(a) {
                if !self.alive_b[b as usize] {
                    continue;
                }
                let d = self.deg_b[b as usize];
                if partner.is_none_or(|(_, pd)| d < pd) {
                    partner = Some((b, d));
                    if d == 1 {
                        break;
                    }
                }
            }
            let (b, pd) = partner.expect("alive a must have an alive neighbour");
            let cand = Candidate {
                b,
                a,
                own_degree: self.deg_a[a as usize],
                partner_degree: pd,
            };
            if best.is_none_or(|bc| cand.partner_degree < bc.partner_degree) {
                best = Some(cand);
            }
            if pd == 1 {
                break;
            }
        }
        best
    }

    /// Remove `b` from the alive structures.
    fn kill_b(&mut self, b: u32) {
        debug_assert!(self.alive_b[b as usize]);
        self.alive_b[b as usize] = false;
        self.buckets_b.remove(b, self.deg_b[b as usize]);
    }

    /// Remove `a` from the alive structures.
    fn kill_a(&mut self, a: u32) {
        debug_assert!(self.alive_a[a as usize]);
        self.alive_a[a as usize] = false;
        self.buckets_a.remove(a, self.deg_a[a as usize]);
    }

    /// Commit pair `(b, a)`: remove both nodes and decrement the remaining
    /// cardinality of every alive neighbour, dropping neighbours that reach
    /// zero (they can no longer be covered).
    fn commit(&mut self, b: u32, a: u32) {
        self.kill_b(b);
        self.kill_a(a);
        for &a2 in self.graph.neighbors_of_left(b) {
            if a2 != a && self.alive_a[a2 as usize] {
                let d = self.deg_a[a2 as usize];
                self.buckets_a.remove(a2, d);
                self.deg_a[a2 as usize] = d - 1;
                if d - 1 == 0 {
                    self.alive_a[a2 as usize] = false;
                } else {
                    self.buckets_a.insert(a2, d - 1);
                }
            }
        }
        for &b2 in self.graph.neighbors_of_right(a) {
            if b2 != b && self.alive_b[b2 as usize] {
                let d = self.deg_b[b2 as usize];
                self.buckets_b.remove(b2, d);
                self.deg_b[b2 as usize] = d - 1;
                if d - 1 == 0 {
                    self.alive_b[b2 as usize] = false;
                } else {
                    self.buckets_b.insert(b2, d - 1);
                }
            }
        }
    }
}

/// Run CSF on `graph` and return the one-to-one matching it covers.
///
/// ```
/// use csj_matching::{csf, MatchGraph};
///
/// // b1 matches {a2, a3}, b2 matches only {a3} (the paper's Section 3
/// // example, 0-indexed): CSF covers the single-option user first.
/// let g = MatchGraph::from_edges(2, 3, vec![(0, 1), (0, 2), (1, 2)]);
/// let m = csf(&g);
/// assert_eq!(m.len(), 2);
/// ```
pub fn csf(graph: &MatchGraph) -> Matching {
    let mut state = CsfState::new(graph);
    let mut out = Matching::new();

    loop {
        // Line 13: exit when either sorted map drains.
        if state.buckets_b.is_empty() || state.buckets_a.is_empty() {
            break;
        }
        let min_b = state.buckets_b.min_degree().expect("checked non-empty");
        let min_a = state.buckets_a.min_degree().expect("checked non-empty");

        let chosen = if min_b < min_a {
            // Lines 3–5: cover a smallest B user.
            state.scan_b_side()
        } else if min_b > min_a {
            // Lines 6–8: cover a smallest A user.
            state.scan_a_side()
        } else {
            // Lines 9–10: tie — try the B side first; if its best pair does
            // not end on a single-match partner, also try the A side and
            // keep the pair with minimum connections in B and A.
            let from_b = state.scan_b_side();
            match from_b {
                Some(c) if c.partner_degree == 1 => Some(c),
                _ => {
                    let from_a = state.scan_a_side();
                    match (from_b, from_a) {
                        (Some(cb), Some(ca)) => {
                            let key = |c: &Candidate| (c.partner_degree, c.own_degree, c.b, c.a);
                            Some(if key(&ca) < key(&cb) { ca } else { cb })
                        }
                        (c, None) | (None, c) => c,
                    }
                }
            }
        };

        let cand = chosen.expect("non-empty buckets always yield a candidate");
        out.push(cand.b, cand.a);
        state.commit(cand.b, cand.a);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force_maximum;

    fn graph(nb: u32, na: u32, edges: &[(u32, u32)]) -> MatchGraph {
        MatchGraph::from_edges(nb, na, edges.to_vec())
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = graph(3, 3, &[]);
        assert!(csf(&g).is_empty());
    }

    #[test]
    fn single_edge() {
        let g = graph(1, 1, &[(0, 0)]);
        let m = csf(&g);
        assert_eq!(m.pairs(), &[(0, 0)]);
    }

    #[test]
    fn paper_example_section3() {
        // Section 3 example: b1 matches {a2, a3}, b2 matches only {a3}.
        // An exact method must pair <b1, a2> and <b2, a3> (similarity 100%).
        let g = graph(2, 3, &[(0, 1), (0, 2), (1, 2)]);
        let m = csf(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 2, "CSF must cover both B users");
        let mut pairs = m.pairs().to_vec();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn covers_smallest_first() {
        // b0 connects to everything; b1 only to a0. Covering b1 first keeps
        // both pairs; greedy-in-order would also work here, but CSF must.
        let g = graph(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = csf(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn perfect_on_crown_graph() {
        // Crown-like structure where naive greedy can lose a pair.
        let g = graph(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 1)]);
        let m = csf(&g);
        m.validate(&g).unwrap();
        let best = brute_force_maximum(&g);
        assert_eq!(m.len(), best.len());
    }

    #[test]
    fn respects_one_to_one_on_dense_block() {
        let mut edges = Vec::new();
        for b in 0..4u32 {
            for a in 0..4u32 {
                edges.push((b, a));
            }
        }
        let g = graph(4, 4, &edges);
        let m = csf(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn unbalanced_sides() {
        // 1 B user, many A candidates.
        let g = graph(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]);
        let m = csf(&g);
        m.validate(&g).unwrap();
        assert_eq!(m.len(), 1);
    }

    /// CSF is a heuristic: on this 9x11 graph (found by randomized
    /// search against the brute-force oracle) it covers 8 pairs while the
    /// maximum matching has 9. This is why `MatcherKind::HopcroftKarp`
    /// exists and why the paper's "exact" methods are exact only up to
    /// CSF's covering heuristic (its own Tables 4 vs the text's claim).
    #[test]
    fn csf_is_not_always_maximum() {
        let edges = vec![
            (6, 3),
            (6, 0),
            (3, 6),
            (0, 6),
            (1, 5),
            (3, 9),
            (7, 0),
            (6, 9),
            (7, 5),
            (5, 8),
            (6, 10),
            (2, 1),
            (3, 7),
            (3, 8),
            (2, 3),
            (4, 8),
            (0, 8),
            (2, 0),
            (7, 9),
            (6, 1),
            (8, 5),
            (1, 9),
            (7, 7),
            (1, 7),
            (5, 9),
            (3, 0),
            (2, 10),
            (4, 3),
        ];
        let g = graph(9, 11, &edges);
        let heuristic = csf(&g);
        heuristic.validate(&g).unwrap();
        let maximum = brute_force_maximum(&g).len();
        assert_eq!(maximum, 9);
        assert_eq!(
            heuristic.len(),
            8,
            "CSF's covering order loses one pair here"
        );
    }

    #[test]
    fn deterministic() {
        let edges = vec![(0, 1), (1, 1), (1, 2), (2, 0), (2, 2), (3, 2)];
        let g = graph(4, 3, &edges);
        let m1 = csf(&g);
        let m2 = csf(&g);
        assert_eq!(m1, m2);
    }
}
