//! The MinMax **encoding scheme** (Section 4, Figure 1).
//!
//! A user vector of `d` counters is segmented into `P` contiguous parts
//! (the paper uses `P = 4`: fewer parts prune less, more parts cost more
//! memory). For a `B`-user, each part contributes its counter sum and the
//! sums add up to the user's `encoded_ID`. For an `A`-user, every counter
//! `v` is first widened to the range `[max(0, v - eps), v + eps]` of
//! values a matching counter may take; summing range endpoints per part
//! gives the part *ranges*, and summing those gives `encoded_Min` /
//! `encoded_Max`.
//!
//! **No-false-miss invariant** (property-tested): if `|b_i - a_i| <= eps`
//! for every dimension, then for every part `p` the part sum of `b` lies
//! inside the part range of `a`, and consequently
//! `a.encoded_Min <= b.encoded_ID <= a.encoded_Max`. The filters can
//! therefore never discard a true match — they only admit false
//! candidates, which the final d-dimensional comparison rejects.
//!
//! Both buffers are stored as sorted structure-of-arrays, matching the
//! paper's `Encd_B` (ascending `encoded_ID`) and `Encd_A` (ascending
//! `encoded_Min`).

use std::ops::Range;

use crate::community::Community;
use crate::error::CsjError;

/// Tuning of the encoding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodingParams {
    /// Number of contiguous parts the dimension axis is segmented into.
    /// The paper selects 4 as the best time/space trade-off.
    pub parts: usize,
}

impl Default for EncodingParams {
    fn default() -> Self {
        Self { parts: 4 }
    }
}

impl EncodingParams {
    /// Validate: `parts` must be positive. (A part count larger than the
    /// dimensionality is clamped to `d` by [`EncodingParams::effective_parts`],
    /// so the paper's default of 4 works for any `d >= 1`.)
    pub fn validate(&self, _d: usize) -> Result<(), CsjError> {
        if self.parts == 0 {
            return Err(CsjError::InvalidOptions(
                "encoding parts must be >= 1".into(),
            ));
        }
        Ok(())
    }

    /// The part count actually used for dimensionality `d`.
    pub fn effective_parts(&self, d: usize) -> usize {
        self.parts.min(d).max(1)
    }
}

/// Split `d` dimensions into `parts` contiguous chunks.
///
/// The remainder goes to the *later* parts, matching Figure 1 where
/// `d = 27, P = 4` yields part sizes `6, 7, 7, 7`.
pub fn part_bounds(d: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1 && parts <= d, "need 1 <= parts <= d");
    let base = d / parts;
    let rem = d % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        // The first (parts - rem) parts take `base`, the rest `base + 1`.
        let len = if p < parts - rem { base } else { base + 1 };
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, d);
    out
}

/// The encoded buffer for community `B`: per user, the `encoded_ID`, its
/// `P` part sums and the user's index, sorted ascending by `encoded_ID`.
#[derive(Debug, Clone)]
pub struct EncodedB {
    parts: usize,
    /// Sorted encoded IDs.
    pub encd_ids: Vec<u64>,
    /// Part sums, stride `parts`, parallel to `encd_ids`.
    pub part_sums: Vec<u64>,
    /// Original user index within the community ("real ID" access path).
    pub user_idx: Vec<u32>,
}

impl EncodedB {
    /// Number of encoded users.
    pub fn len(&self) -> usize {
        self.encd_ids.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.encd_ids.is_empty()
    }

    /// Number of parts per entry.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Part sums of entry `i`.
    #[inline]
    pub fn parts_of(&self, i: usize) -> &[u64] {
        &self.part_sums[i * self.parts..(i + 1) * self.parts]
    }

    /// Heap bytes held by this buffer — the "more parts is more
    /// space-consuming" half of the paper's Section 4 trade-off.
    pub fn memory_bytes(&self) -> usize {
        self.encd_ids.capacity() * 8 + self.part_sums.capacity() * 8 + self.user_idx.capacity() * 4
    }

    /// Reassemble a buffer from raw arrays (the persistence path of
    /// `csj_data::io`). Validates the structural invariants the join
    /// loops rely on: parallel lengths, stride, ascending sort order.
    pub fn from_raw(
        parts: usize,
        encd_ids: Vec<u64>,
        part_sums: Vec<u64>,
        user_idx: Vec<u32>,
    ) -> Result<Self, CsjError> {
        if parts == 0 {
            return Err(CsjError::InvalidOptions("parts must be >= 1".into()));
        }
        let n = encd_ids.len();
        if user_idx.len() != n || part_sums.len() != n * parts {
            return Err(CsjError::InvalidOptions(
                "encoded buffer arrays have inconsistent lengths".into(),
            ));
        }
        if encd_ids.windows(2).any(|w| w[0] > w[1]) {
            return Err(CsjError::InvalidOptions(
                "encoded IDs must be ascending".into(),
            ));
        }
        Ok(Self {
            parts,
            encd_ids,
            part_sums,
            user_idx,
        })
    }
}

/// The encoded buffer for community `A`: per user, `encoded_Min`,
/// `encoded_Max`, the `P` part ranges and the user's index, sorted
/// ascending by `encoded_Min`.
#[derive(Debug, Clone)]
pub struct EncodedA {
    parts: usize,
    /// Sorted encoded minima.
    pub encd_mins: Vec<u64>,
    /// Encoded maxima, parallel to `encd_mins`.
    pub encd_maxs: Vec<u64>,
    /// Range lower endpoints, stride `parts`.
    pub range_lo: Vec<u64>,
    /// Range upper endpoints, stride `parts`.
    pub range_hi: Vec<u64>,
    /// Original user index within the community.
    pub user_idx: Vec<u32>,
}

impl EncodedA {
    /// Number of encoded users.
    pub fn len(&self) -> usize {
        self.encd_mins.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.encd_mins.is_empty()
    }

    /// Number of parts per entry.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Range lower endpoints of entry `j`.
    #[inline]
    pub fn range_lo_of(&self, j: usize) -> &[u64] {
        &self.range_lo[j * self.parts..(j + 1) * self.parts]
    }

    /// Range upper endpoints of entry `j`.
    #[inline]
    pub fn range_hi_of(&self, j: usize) -> &[u64] {
        &self.range_hi[j * self.parts..(j + 1) * self.parts]
    }

    /// Heap bytes held by this buffer (two range arrays of stride
    /// `parts`, so the cost grows twice as fast in `P` as `Encd_B`'s).
    pub fn memory_bytes(&self) -> usize {
        self.encd_mins.capacity() * 8
            + self.encd_maxs.capacity() * 8
            + self.range_lo.capacity() * 8
            + self.range_hi.capacity() * 8
            + self.user_idx.capacity() * 4
    }

    /// Reassemble a buffer from raw arrays (the persistence path of
    /// `csj_data::io`), validating structural invariants.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw(
        parts: usize,
        encd_mins: Vec<u64>,
        encd_maxs: Vec<u64>,
        range_lo: Vec<u64>,
        range_hi: Vec<u64>,
        user_idx: Vec<u32>,
    ) -> Result<Self, CsjError> {
        if parts == 0 {
            return Err(CsjError::InvalidOptions("parts must be >= 1".into()));
        }
        let n = encd_mins.len();
        if encd_maxs.len() != n
            || user_idx.len() != n
            || range_lo.len() != n * parts
            || range_hi.len() != n * parts
        {
            return Err(CsjError::InvalidOptions(
                "encoded buffer arrays have inconsistent lengths".into(),
            ));
        }
        if encd_mins.windows(2).any(|w| w[0] > w[1]) {
            return Err(CsjError::InvalidOptions(
                "encoded minima must be ascending".into(),
            ));
        }
        if encd_mins.iter().zip(&encd_maxs).any(|(lo, hi)| lo > hi) {
            return Err(CsjError::InvalidOptions("min above max".into()));
        }
        Ok(Self {
            parts,
            encd_mins,
            encd_maxs,
            range_lo,
            range_hi,
            user_idx,
        })
    }

    /// The *complete overlap* filter: does every part sum of a `B` entry
    /// fall inside the corresponding range of entry `j`? A failure is the
    /// NO OVERLAP event of Section 4.
    #[inline]
    pub fn parts_overlap(&self, j: usize, b_parts: &[u64]) -> bool {
        debug_assert_eq!(b_parts.len(), self.parts);
        let lo = self.range_lo_of(j);
        let hi = self.range_hi_of(j);
        b_parts
            .iter()
            .zip(lo.iter().zip(hi.iter()))
            .all(|(&s, (&l, &h))| s >= l && s <= h)
    }
}

/// Encode a single `B`-side vector: appends its part sums to `out_parts`
/// and returns the `encoded_ID`.
#[inline]
pub fn encode_vector_b(v: &[u32], bounds: &[Range<usize>], out_parts: &mut Vec<u64>) -> u64 {
    let mut id = 0u64;
    for b in bounds {
        let s: u64 = v[b.clone()].iter().map(|&x| x as u64).sum();
        out_parts.push(s);
        id += s;
    }
    id
}

/// Encode a single `A`-side vector: appends its part range endpoints to
/// `out_lo` / `out_hi` and returns `(encoded_Min, encoded_Max)`.
#[inline]
pub fn encode_vector_a(
    v: &[u32],
    eps: u32,
    bounds: &[Range<usize>],
    out_lo: &mut Vec<u64>,
    out_hi: &mut Vec<u64>,
) -> (u64, u64) {
    let eps = eps as u64;
    let mut min = 0u64;
    let mut max = 0u64;
    for b in bounds {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for &x in &v[b.clone()] {
            let x = x as u64;
            lo += x.saturating_sub(eps);
            hi += x + eps;
        }
        out_lo.push(lo);
        out_hi.push(hi);
        min += lo;
        max += hi;
    }
    (min, max)
}

/// Encode community `B`: compute `encoded_ID` and part sums for each user
/// and sort ascending by `encoded_ID` (Lines 1–2 of Ap-MinMax).
///
/// ```
/// use csj_core::{encode_b, Community, EncodingParams};
///
/// let mut c = Community::new("B", 4);
/// c.push(1, &[1, 2, 3, 4]).unwrap();
/// let encoded = encode_b(&c, EncodingParams { parts: 2 });
/// assert_eq!(encoded.encd_ids, vec![10]); // 1+2+3+4
/// assert_eq!(encoded.parts_of(0), &[3, 7]); // (1+2) and (3+4)
/// ```
pub fn encode_b(community: &Community, params: EncodingParams) -> EncodedB {
    let d = community.d();
    params
        .validate(d)
        .expect("encoding params pre-validated by caller");
    let parts = params.effective_parts(d);
    let bounds = part_bounds(d, parts);
    let n = community.len();

    let mut entries: Vec<(u64, u32)> = Vec::with_capacity(n);
    let mut raw_parts: Vec<u64> = Vec::with_capacity(n * parts);
    for i in 0..n {
        let id = encode_vector_b(community.vector(i), &bounds, &mut raw_parts);
        entries.push((id, i as u32));
    }
    // Stable sort by encoded ID keeps ties in user order (deterministic).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (entries[i as usize].0, i));

    let mut encd_ids = Vec::with_capacity(n);
    let mut part_sums = Vec::with_capacity(n * parts);
    let mut user_idx = Vec::with_capacity(n);
    for &o in &order {
        let (id, ui) = entries[o as usize];
        encd_ids.push(id);
        user_idx.push(ui);
        let lo = o as usize * parts;
        part_sums.extend_from_slice(&raw_parts[lo..lo + parts]);
    }
    EncodedB {
        parts,
        encd_ids,
        part_sums,
        user_idx,
    }
}

/// Encode community `A`: compute `encoded_Min`, `encoded_Max` and the part
/// ranges for each user and sort ascending by `encoded_Min` (Lines 3–4 of
/// Ap-MinMax).
///
/// ```
/// use csj_core::{encode_a, Community, EncodingParams};
///
/// let mut c = Community::new("A", 2);
/// c.push(1, &[3, 0]).unwrap();
/// let encoded = encode_a(&c, 1, EncodingParams { parts: 1 });
/// // min = max(0, 3-1) + max(0, 0-1) = 2; max = 4 + 1 = 5.
/// assert_eq!(encoded.encd_mins, vec![2]);
/// assert_eq!(encoded.encd_maxs, vec![5]);
/// ```
pub fn encode_a(community: &Community, eps: u32, params: EncodingParams) -> EncodedA {
    let d = community.d();
    params
        .validate(d)
        .expect("encoding params pre-validated by caller");
    let parts = params.effective_parts(d);
    let bounds = part_bounds(d, parts);
    let n = community.len();

    let mut entries: Vec<(u64, u64, u32)> = Vec::with_capacity(n);
    let mut raw_lo: Vec<u64> = Vec::with_capacity(n * parts);
    let mut raw_hi: Vec<u64> = Vec::with_capacity(n * parts);
    for i in 0..n {
        let (min, max) =
            encode_vector_a(community.vector(i), eps, &bounds, &mut raw_lo, &mut raw_hi);
        entries.push((min, max, i as u32));
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (entries[i as usize].0, i));

    let mut encd_mins = Vec::with_capacity(n);
    let mut encd_maxs = Vec::with_capacity(n);
    let mut range_lo = Vec::with_capacity(n * parts);
    let mut range_hi = Vec::with_capacity(n * parts);
    let mut user_idx = Vec::with_capacity(n);
    for &o in &order {
        let (min, max, ui) = entries[o as usize];
        encd_mins.push(min);
        encd_maxs.push(max);
        user_idx.push(ui);
        let lo = o as usize * parts;
        range_lo.extend_from_slice(&raw_lo[lo..lo + parts]);
        range_hi.extend_from_slice(&raw_hi[lo..lo + parts]);
    }
    EncodedA {
        parts,
        encd_mins,
        encd_maxs,
        range_lo,
        range_hi,
        user_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors_match;

    /// The exact worked example of Figure 1.
    #[test]
    fn figure1_example() {
        let vector: [u32; 27] = [
            1, 0, 0, 0, 2, 2, // 1st part (6 dims)
            0, 0, 2, 1, 1, 5, 4, // 2nd part (7 dims)
            0, 3, 0, 0, 1, 4, 1, // 3rd part
            0, 3, 5, 4, 1, 2, 4, // 4th part
        ];
        let mut c = Community::new("fig1", 27);
        c.push(1, &vector).unwrap();

        let params = EncodingParams { parts: 4 };
        let eb = encode_b(&c, params);
        assert_eq!(eb.encd_ids, vec![46]);
        assert_eq!(eb.parts_of(0), &[5, 13, 9, 19]);

        let ea = encode_a(&c, 1, params);
        assert_eq!(ea.encd_mins, vec![28]);
        assert_eq!(ea.encd_maxs, vec![73]);
        assert_eq!(ea.range_lo_of(0), &[2, 8, 5, 13]);
        assert_eq!(ea.range_hi_of(0), &[11, 20, 16, 26]);
    }

    #[test]
    fn part_bounds_figure1_shape() {
        let b = part_bounds(27, 4);
        let sizes: Vec<usize> = b.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![6, 7, 7, 7]);
        assert_eq!(b[0], 0..6);
        assert_eq!(b[3], 20..27);
    }

    #[test]
    fn part_bounds_exact_division_and_edges() {
        assert_eq!(
            part_bounds(8, 4)
                .iter()
                .map(|r| r.len())
                .collect::<Vec<_>>(),
            vec![2; 4]
        );
        assert_eq!(part_bounds(5, 1), vec![0..5]);
        assert_eq!(
            part_bounds(5, 5)
                .iter()
                .map(|r| r.len())
                .collect::<Vec<_>>(),
            vec![1; 5]
        );
    }

    #[test]
    #[should_panic(expected = "1 <= parts <= d")]
    fn part_bounds_rejects_too_many_parts() {
        let _ = part_bounds(3, 4);
    }

    #[test]
    fn buffers_are_sorted() {
        let mut c = Community::new("s", 4);
        c.push(1, &[9, 9, 9, 9]).unwrap();
        c.push(2, &[0, 0, 0, 0]).unwrap();
        c.push(3, &[5, 5, 0, 0]).unwrap();
        let params = EncodingParams { parts: 2 };
        let eb = encode_b(&c, params);
        assert!(eb.encd_ids.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(eb.user_idx, vec![1, 2, 0]);
        let ea = encode_a(&c, 2, params);
        assert!(ea.encd_mins.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn saturating_minimum_at_zero() {
        let mut c = Community::new("z", 2);
        c.push(1, &[0, 1]).unwrap();
        let ea = encode_a(&c, 5, EncodingParams { parts: 1 });
        // min = max(0, 0-5) + max(0, 1-5) = 0; max = 5 + 6 = 11.
        assert_eq!(ea.encd_mins, vec![0]);
        assert_eq!(ea.encd_maxs, vec![11]);
    }

    #[test]
    fn no_false_miss_on_true_matches() {
        // Deterministic sweep: every per-dim matching pair must pass both
        // encoded filters (the invariant the algorithms rely on).
        let d = 6;
        let eps = 2u32;
        let params = EncodingParams { parts: 3 };
        let mut cb = Community::new("B", d);
        let mut ca = Community::new("A", d);
        for i in 0..40u32 {
            let vb: Vec<u32> = (0..d as u32).map(|j| (i * 7 + j * 3) % 20).collect();
            let va: Vec<u32> = (0..d as u32).map(|j| (i * 5 + j * 11 + i) % 20).collect();
            cb.push(i as u64, &vb).unwrap();
            ca.push(i as u64, &va).unwrap();
        }
        let eb = encode_b(&cb, params);
        let ea = encode_a(&ca, eps, params);
        for i in 0..eb.len() {
            let bv = cb.vector(eb.user_idx[i] as usize);
            for j in 0..ea.len() {
                let av = ca.vector(ea.user_idx[j] as usize);
                if vectors_match(bv, av, eps) {
                    assert!(
                        eb.encd_ids[i] >= ea.encd_mins[j] && eb.encd_ids[i] <= ea.encd_maxs[j],
                        "ID filter dropped a true match"
                    );
                    assert!(
                        ea.parts_overlap(j, eb.parts_of(i)),
                        "part filter dropped a true match"
                    );
                }
            }
        }
    }

    #[test]
    fn overflow_safety_at_extreme_counters() {
        // d * (u32::MAX + eps) must not overflow u64.
        let d = 64;
        let mut c = Community::new("big", d);
        c.push(1, &vec![u32::MAX; d]).unwrap();
        let ea = encode_a(&c, u32::MAX, EncodingParams { parts: 4 });
        let expected_max = d as u64 * (u32::MAX as u64 * 2);
        assert_eq!(ea.encd_maxs, vec![expected_max]);
        let eb = encode_b(&c, EncodingParams { parts: 4 });
        assert_eq!(eb.encd_ids, vec![d as u64 * u32::MAX as u64]);
    }

    #[test]
    fn memory_grows_linearly_with_parts() {
        let mut c = Community::new("m", 16);
        for i in 0..50u64 {
            c.push(i, &[i as u32; 16]).unwrap();
        }
        let m1 = encode_a(&c, 1, EncodingParams { parts: 1 }).memory_bytes();
        let m4 = encode_a(&c, 1, EncodingParams { parts: 4 }).memory_bytes();
        let m8 = encode_a(&c, 1, EncodingParams { parts: 8 }).memory_bytes();
        assert!(m1 < m4 && m4 < m8, "{m1} {m4} {m8}");
        let b4 = encode_b(&c, EncodingParams { parts: 4 }).memory_bytes();
        assert!(b4 < m4, "Encd_B carries one part array, Encd_A two ranges");
    }

    #[test]
    fn parts_overlap_detects_mismatch() {
        let mut ca = Community::new("A", 4);
        ca.push(1, &[10, 10, 0, 0]).unwrap();
        let ea = encode_a(&ca, 1, EncodingParams { parts: 2 });
        // B parts [20, 0]: first part 20 > hi = 22? lo = 18, hi = 22 -> inside.
        assert!(ea.parts_overlap(0, &[20, 0]));
        // B parts [17, 0]: 17 < lo = 18 -> no overlap.
        assert!(!ea.parts_overlap(0, &[17, 0]));
        // Second part range is [0, 2].
        assert!(!ea.parts_overlap(0, &[20, 3]));
    }
}
