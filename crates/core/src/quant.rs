//! Quantized community encodings: narrow `u8`/`u16` lanes next to
//! [`Community`]'s flat `u32` data.
//!
//! The per-dimension test `|b_i - a_i| <= eps` only needs the full `u32`
//! width when a counter (or `eps`) can actually exceed a narrower lane.
//! When every counter of **both** communities and `eps` fit in `u8` (or
//! `u16`), the identical comparison runs on 1- or 2-byte lanes — a 4×
//! (2×) reduction of the bytes each candidate pair streams through the
//! kernel, and proportionally wider SIMD compares.
//!
//! Correctness is by construction, not by approximation: a lane is only
//! eligible when the cast is lossless for every value involved, so the
//! narrow comparison returns *exactly* the same boolean as the `u32`
//! reference for every pair ([`pair_lane`] encodes the widening rule,
//! and the parity suite plus a proptest pin it down). Anything else —
//! one oversized counter, an oversized `eps` — widens back to the `u32`
//! path.
//!
//! [`QuantMode`] is the kill-switch: `Off` forces the pre-quantization
//! scalar kernels (the benchmark baseline), `On`/`Auto` enable the
//! compact fast path.

use csj_ego::lanes;

use crate::community::Community;

/// How the join kernels use the quantized fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Pick the narrowest valid lane per community pair (the default).
    #[default]
    Auto,
    /// Same lane selection as `Auto`; kept distinct so callers (tests,
    /// benches) can state the intent explicitly.
    On,
    /// Disable the fast path: scalar short-circuit `u32` comparisons,
    /// no chunked kernels, no tiling. This is bit-for-bit the
    /// pre-quantization behaviour and the `kernel_gate` baseline.
    Off,
}

impl QuantMode {
    /// Whether the compact fast path is enabled.
    #[inline]
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, QuantMode::Off)
    }
}

/// The compare-lane width chosen for one community pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LaneKind {
    /// Both sides and `eps` fit in a byte.
    U8,
    /// Both sides and `eps` fit in 16 bits.
    U16,
    /// Widening fallback: the untouched `u32` data.
    U32,
}

impl LaneKind {
    /// Lane width in bits (what telemetry reports).
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            LaneKind::U8 => 8,
            LaneKind::U16 => 16,
            LaneKind::U32 => 32,
        }
    }

    /// Lane width in bytes (what the planner's cost features use).
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            LaneKind::U8 => 1,
            LaneKind::U16 => 2,
            LaneKind::U32 => 4,
        }
    }
}

/// Narrow-lane copies of a community's counter matrix.
///
/// A lane vector is present exactly when every counter fits the lane
/// (`max_counter() <= LANE::MAX`), so each present lane is a lossless
/// image of the `u32` data. Build once per community — the engine
/// caches it inside `PreparedCommunity`, version-keyed like the other
/// prepared state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedCommunity {
    max_counter: u32,
    lanes_u8: Option<Vec<u8>>,
    lanes_u16: Option<Vec<u16>>,
}

impl QuantizedCommunity {
    /// Quantize `c`'s counters into every lane they losslessly fit.
    #[must_use]
    pub fn build(c: &Community) -> Self {
        let max_counter = c.max_counter();
        let data = c.raw_data();
        let lanes_u8 = (max_counter <= u32::from(u8::MAX))
            .then(|| data.iter().map(|&v| v as u8).collect::<Vec<u8>>());
        let lanes_u16 = (max_counter <= u32::from(u16::MAX))
            .then(|| data.iter().map(|&v| v as u16).collect::<Vec<u16>>());
        // Validated widening: a present lane must round-trip exactly.
        debug_assert!(lanes_u8
            .as_ref()
            .is_none_or(|l| l.iter().zip(data).all(|(&n, &w)| u32::from(n) == w)));
        debug_assert!(lanes_u16
            .as_ref()
            .is_none_or(|l| l.iter().zip(data).all(|(&n, &w)| u32::from(n) == w)));
        Self {
            max_counter,
            lanes_u8,
            lanes_u16,
        }
    }

    /// The community-wide maximum counter the lanes were derived from.
    #[must_use]
    pub fn max_counter(&self) -> u32 {
        self.max_counter
    }

    /// Whether every counter fits the given lane.
    #[must_use]
    pub fn fits(&self, lane: LaneKind) -> bool {
        match lane {
            LaneKind::U8 => self.lanes_u8.is_some(),
            LaneKind::U16 => self.lanes_u16.is_some(),
            LaneKind::U32 => true,
        }
    }

    fn u8_lanes(&self) -> Option<&[u8]> {
        self.lanes_u8.as_deref()
    }

    fn u16_lanes(&self) -> Option<&[u16]> {
        self.lanes_u16.as_deref()
    }
}

/// The widening rule: the narrowest lane that losslessly holds **both**
/// communities' counters *and* `eps`; anything wider falls back to
/// `u32`. (`eps` must fit too: the saturating-style narrow compare is
/// only exact when the threshold itself is representable.)
#[must_use]
pub fn pair_lane(qb: &QuantizedCommunity, qa: &QuantizedCommunity, eps: u32) -> LaneKind {
    if qb.fits(LaneKind::U8) && qa.fits(LaneKind::U8) && eps <= u32::from(u8::MAX) {
        LaneKind::U8
    } else if qb.fits(LaneKind::U16) && qa.fits(LaneKind::U16) && eps <= u32::from(u16::MAX) {
        LaneKind::U16
    } else {
        LaneKind::U32
    }
}

/// A borrowed, lane-resolved view of one community pair: the one object
/// the `drive_*` kernels consult for full d-dimensional comparisons.
/// Rows are addressed by community index on either side.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LaneView<'x> {
    /// `QuantMode::Off`: the scalar short-circuit reference.
    Scalar {
        b: &'x [u32],
        a: &'x [u32],
        d: usize,
        eps: u32,
    },
    U8 {
        b: &'x [u8],
        a: &'x [u8],
        d: usize,
        eps: u8,
    },
    U16 {
        b: &'x [u16],
        a: &'x [u16],
        d: usize,
        eps: u16,
    },
    /// Widening fallback — chunked kernels over the raw `u32` data.
    U32 {
        b: &'x [u32],
        a: &'x [u32],
        d: usize,
        eps: u32,
    },
}

impl<'x> LaneView<'x> {
    /// Resolve the view for a pair, honouring the mode's kill-switch.
    /// `qb`/`qa` are the cached quantizations when the caller has them
    /// (prepared state); `None` quantizes on the spot.
    pub(crate) fn select(
        mode: QuantMode,
        b: &'x Community,
        a: &'x Community,
        qb: Option<&'x QuantizedCommunity>,
        qa: Option<&'x QuantizedCommunity>,
        eps: u32,
    ) -> Self {
        let d = b.d();
        debug_assert_eq!(d, a.d());
        if !mode.enabled() {
            return LaneView::Scalar {
                b: b.raw_data(),
                a: a.raw_data(),
                d,
                eps,
            };
        }
        let lane = match (qb, qa) {
            (Some(qb), Some(qa)) => pair_lane(qb, qa, eps),
            _ => LaneKind::U32,
        };
        match lane {
            LaneKind::U8 => LaneView::U8 {
                b: qb.and_then(QuantizedCommunity::u8_lanes).expect("u8 lane"),
                a: qa.and_then(QuantizedCommunity::u8_lanes).expect("u8 lane"),
                d,
                eps: eps as u8,
            },
            LaneKind::U16 => LaneView::U16 {
                b: qb
                    .and_then(QuantizedCommunity::u16_lanes)
                    .expect("u16 lane"),
                a: qa
                    .and_then(QuantizedCommunity::u16_lanes)
                    .expect("u16 lane"),
                d,
                eps: eps as u16,
            },
            LaneKind::U32 => LaneView::U32 {
                b: b.raw_data(),
                a: a.raw_data(),
                d,
                eps,
            },
        }
    }

    /// Dimensionality of the viewed vectors.
    pub(crate) fn d(&self) -> usize {
        match *self {
            LaneView::Scalar { d, .. }
            | LaneView::U8 { d, .. }
            | LaneView::U16 { d, .. }
            | LaneView::U32 { d, .. } => d,
        }
    }

    /// Bytes per lane element (4 for the scalar path too — it walks the
    /// raw `u32` data).
    pub(crate) fn lane_bytes(&self) -> u32 {
        match self {
            LaneView::U8 { .. } => 1,
            LaneView::U16 { .. } => 2,
            LaneView::Scalar { .. } | LaneView::U32 { .. } => 4,
        }
    }

    /// Lane width in bits for telemetry; `0` marks the scalar path.
    pub(crate) fn lane_bits(&self) -> u64 {
        match self {
            LaneView::Scalar { .. } => 0,
            LaneView::U8 { .. } => 8,
            LaneView::U16 { .. } => 16,
            LaneView::U32 { .. } => 32,
        }
    }

    /// Full per-dimension comparison of `B` row `bi` against `A` row
    /// `aj`. Every variant computes the same boolean; they differ only
    /// in lane width and kernel shape.
    #[inline]
    pub(crate) fn matches(&self, bi: usize, aj: usize) -> bool {
        match *self {
            LaneView::Scalar { b, a, d, eps } => {
                lanes::all_within_scalar(&b[bi * d..bi * d + d], &a[aj * d..aj * d + d], eps)
            }
            LaneView::U8 { b, a, d, eps } => {
                lanes::all_within(&b[bi * d..bi * d + d], &a[aj * d..aj * d + d], eps)
            }
            LaneView::U16 { b, a, d, eps } => {
                lanes::all_within(&b[bi * d..bi * d + d], &a[aj * d..aj * d + d], eps)
            }
            LaneView::U32 { b, a, d, eps } => {
                lanes::all_within(&b[bi * d..bi * d + d], &a[aj * d..aj * d + d], eps)
            }
        }
    }
}

/// Cache-blocking geometry for the all-pairs exact scan: how many `A`
/// rows fit one tile so a tile's counters stay resident in L1/L2 while
/// a block of `B` rows streams over it.
///
/// Returns `(tile_rows, tile_count)`. Also feeds the planner's tile
/// feature, so it must stay deterministic in `(na, d, lane_bytes)`.
#[must_use]
pub fn tile_geometry(na: usize, d: usize, lane_bytes: u32) -> (usize, usize) {
    /// Target bytes of `A` data per tile — half a typical 64 KiB L1d,
    /// leaving room for the `B` block and edge buffers.
    const TILE_BYTES: usize = 32 * 1024;
    if na == 0 {
        return (0, 0);
    }
    let row_bytes = d.max(1) * lane_bytes as usize;
    let tile_rows = (TILE_BYTES / row_bytes).clamp(64, na.max(64)).min(na);
    (tile_rows, na.div_ceil(tile_rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn community(max: u32) -> Community {
        let mut c = Community::new("Q", 3);
        c.push(1, &[0, max / 2, max]).unwrap();
        c
    }

    #[test]
    fn lanes_present_iff_counters_fit() {
        let q = QuantizedCommunity::build(&community(200));
        assert!(q.fits(LaneKind::U8) && q.fits(LaneKind::U16));
        let q = QuantizedCommunity::build(&community(60_000));
        assert!(!q.fits(LaneKind::U8) && q.fits(LaneKind::U16));
        let q = QuantizedCommunity::build(&community(100_000));
        assert!(!q.fits(LaneKind::U8) && !q.fits(LaneKind::U16));
        assert!(q.fits(LaneKind::U32));
    }

    #[test]
    fn pair_lane_is_the_widest_requirement() {
        let narrow = QuantizedCommunity::build(&community(100));
        let mid = QuantizedCommunity::build(&community(1000));
        let wide = QuantizedCommunity::build(&community(70_000));
        assert_eq!(pair_lane(&narrow, &narrow, 1), LaneKind::U8);
        assert_eq!(pair_lane(&narrow, &mid, 1), LaneKind::U16);
        assert_eq!(pair_lane(&narrow, &wide, 1), LaneKind::U32);
        // eps alone can force the widening.
        assert_eq!(pair_lane(&narrow, &narrow, 300), LaneKind::U16);
        assert_eq!(pair_lane(&narrow, &narrow, 100_000), LaneKind::U32);
    }

    #[test]
    fn narrow_views_agree_with_scalar() {
        let mut b = Community::new("B", 4);
        b.push(1, &[1, 200, 3, 40]).unwrap();
        b.push(2, &[9, 9, 9, 9]).unwrap();
        let mut a = Community::new("A", 4);
        a.push(7, &[2, 199, 3, 41]).unwrap();
        a.push(8, &[100, 100, 100, 100]).unwrap();
        let qb = QuantizedCommunity::build(&b);
        let qa = QuantizedCommunity::build(&a);
        for eps in [0u32, 1, 2, 150] {
            let fast = LaneView::select(QuantMode::Auto, &b, &a, Some(&qb), Some(&qa), eps);
            let slow = LaneView::select(QuantMode::Off, &b, &a, None, None, eps);
            for bi in 0..2 {
                for aj in 0..2 {
                    assert_eq!(
                        fast.matches(bi, aj),
                        slow.matches(bi, aj),
                        "eps={eps} bi={bi} aj={aj}"
                    );
                }
            }
        }
    }

    #[test]
    fn tile_geometry_covers_a_exactly() {
        for na in [1usize, 63, 64, 1000, 5000] {
            for d in [1usize, 27, 200] {
                for bytes in [1u32, 2, 4] {
                    let (rows, count) = tile_geometry(na, d, bytes);
                    assert!(rows >= 1 && rows <= na);
                    assert_eq!(count, na.div_ceil(rows));
                }
            }
        }
        assert_eq!(tile_geometry(0, 27, 4), (0, 0));
    }
}
