//! First-class join telemetry.
//!
//! Every join driven through the substrate × sink kernel (see
//! `algorithms::kernel`) fills one [`JoinTelemetry`] block: the classic
//! Section 4 event counters plus the kernel-level observability the old
//! ad-hoc `TraceSink`/`EventCounters` threading could not express —
//! per-row candidate-stream depth, prune-event depth histograms, cancel
//! poll counts and matcher flush statistics. The block is `Copy` so the
//! engine can aggregate it across joins with plain merges and expose the
//! running totals through `EngineStats`.

use crate::events::EventCounters;

/// Number of log2 buckets in a [`LogHistogram`].
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A tiny fixed-size log2 histogram: bucket `k` counts values `v` with
/// `2^(k-1) <= v < 2^k` (bucket 0 counts zeros; bucket 15, the last,
/// is open-ended and absorbs every value `>= 2^14`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl LogHistogram {
    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&c| c == 0)
    }

    /// Accumulate another histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// Upper bound (exclusive) of a bucket's value range; `None` for the
    /// open-ended last bucket.
    pub fn bucket_limit(index: usize) -> Option<u64> {
        if index + 1 < HISTOGRAM_BUCKETS {
            Some(1u64 << index)
        } else {
            None
        }
    }
}

impl std::fmt::Display for LogHistogram {
    /// Compact sparse rendering: `<1:3 <4:2 ...` (empty buckets elided).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("(empty)");
        }
        let mut first = true;
        for (k, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            match Self::bucket_limit(k) {
                Some(limit) => write!(f, "<{limit}:{count}")?,
                None => write!(f, ">={}:{count}", 1u64 << (HISTOGRAM_BUCKETS - 2))?,
            }
        }
        Ok(())
    }
}

/// Telemetry of one join (or, merged, of many joins) through the shared
/// kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinTelemetry {
    /// The Section 4 pairing events (MIN/MAX PRUNE, NO OVERLAP,
    /// NO MATCH, MATCH).
    pub events: EventCounters,
    /// `B` rows that entered the pairing loop (across all substrates:
    /// nested-loop rows, encoded-buffer rows, EGO leaf rows).
    pub rows_driven: u64,
    /// Candidate `(b, a)` pairs that survived the substrate's cheap
    /// pruning and were streamed to a full judgement (part/range filter
    /// plus d-dimensional comparison).
    pub candidates_streamed: u64,
    /// Largest candidate stream produced by a single `B` row.
    pub peak_stream_depth: u64,
    /// Distribution of candidates streamed per `B` row.
    pub stream_depth_hist: LogHistogram,
    /// Distribution of prune events (MIN + MAX) per `B` row — how early
    /// the substrate's ordering cuts each scan short.
    pub prune_depth_hist: LogHistogram,
    /// Cooperative cancellation polls performed by the kernel.
    pub cancel_polls: u64,
    /// One-to-one matcher invocations (Ex-MinMax segment flushes count
    /// individually; the other exact methods contribute one).
    pub matcher_flushes: u64,
    /// Total edges handed to the matcher across all flushes.
    pub matcher_edges: u64,
    /// Edge count of the largest single flush.
    pub largest_flush_edges: u64,
    /// Compare-lane width in bits the kernel ran on (8/16/32 for the
    /// quantized chunked kernels, 0 for the scalar reference path).
    /// Merges as a max: the widest lane any merged join used.
    pub lane_bits: u64,
    /// `A`-side cache tiles swept by the blocked all-pairs scan (0 when
    /// the drive was not tiled). Merges as a max — parallel workers of
    /// one join share the same tile geometry.
    pub a_tiles: u64,
}

impl JoinTelemetry {
    /// Accumulate another telemetry block (engine aggregation, parallel
    /// worker merges).
    pub fn merge(&mut self, other: &JoinTelemetry) {
        self.events.merge(&other.events);
        self.rows_driven += other.rows_driven;
        self.candidates_streamed += other.candidates_streamed;
        self.peak_stream_depth = self.peak_stream_depth.max(other.peak_stream_depth);
        self.stream_depth_hist.merge(&other.stream_depth_hist);
        self.prune_depth_hist.merge(&other.prune_depth_hist);
        self.cancel_polls += other.cancel_polls;
        self.matcher_flushes += other.matcher_flushes;
        self.matcher_edges += other.matcher_edges;
        self.largest_flush_edges = self.largest_flush_edges.max(other.largest_flush_edges);
        self.lane_bits = self.lane_bits.max(other.lane_bits);
        self.a_tiles = self.a_tiles.max(other.a_tiles);
    }

    /// Mean candidates streamed per driven row.
    pub fn mean_stream_depth(&self) -> f64 {
        if self.rows_driven == 0 {
            0.0
        } else {
            self.candidates_streamed as f64 / self.rows_driven as f64
        }
    }

    /// Multi-line human-readable report (the `csj explain` body).
    /// Convenience wrapper over the [`std::fmt::Display`] impl.
    pub fn report(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for JoinTelemetry {
    /// The `csj explain` / `csj trace` body: one line per section,
    /// trailing newline included so callers can append further blocks.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "events: {}", self.events)?;
        writeln!(
            f,
            "rows driven: {} | candidates streamed: {} (mean {:.2}/row, peak {})",
            self.rows_driven,
            self.candidates_streamed,
            self.mean_stream_depth(),
            self.peak_stream_depth
        )?;
        writeln!(f, "stream depth per row: {}", self.stream_depth_hist)?;
        writeln!(f, "prune events per row: {}", self.prune_depth_hist)?;
        writeln!(
            f,
            "matcher: {} flushes, {} edges (largest flush {})",
            self.matcher_flushes, self.matcher_edges, self.largest_flush_edges
        )?;
        let lane = match self.lane_bits {
            0 => "scalar u32".to_string(),
            bits => format!("u{bits} lanes"),
        };
        writeln!(f, "encoding: {lane}, {} a-tiles", self.a_tiles)?;
        writeln!(f, "cancel polls: {}", self.cancel_polls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Event;

    #[test]
    fn histogram_buckets_values_by_log2() {
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1 << 20); // beyond the last bounded bucket
        assert_eq!(h.bucket(0), 1); // zero
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 1); // 4
        assert_eq!(h.bucket(HISTOGRAM_BUCKETS - 1), 1);
        assert_eq!(h.count(), 6);
        assert!(!h.is_empty());
    }

    #[test]
    fn histogram_bucket_edges_are_pinned() {
        // Pin the exact bucket for each documented edge: zeros land in
        // bucket 0, 1 in bucket 1, 2^14 - 1 is the last value of the
        // bounded range (bucket 14), and everything >= 2^14 — up to and
        // including u64::MAX — lands in the open bucket 15.
        let edges = [
            (0u64, 0usize),
            (1, 1),
            ((1 << 14) - 1, 14),
            (1 << 14, HISTOGRAM_BUCKETS - 1),
            (u64::MAX, HISTOGRAM_BUCKETS - 1),
        ];
        for (value, expected) in edges {
            let mut h = LogHistogram::default();
            h.record(value);
            assert_eq!(
                h.bucket(expected),
                1,
                "value {value} should land in bucket {expected}"
            );
            assert_eq!(h.count(), 1);
        }
        // And the bucket_limit view agrees: bucket 14 is bounded by
        // 2^14 (exclusive), bucket 15 is open-ended.
        assert_eq!(LogHistogram::bucket_limit(14), Some(1 << 14));
        assert_eq!(LogHistogram::bucket_limit(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn telemetry_display_matches_report() {
        let mut t = JoinTelemetry {
            rows_driven: 3,
            candidates_streamed: 9,
            ..Default::default()
        };
        t.events.record(Event::Match);
        assert_eq!(t.report(), format!("{t}"));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LogHistogram::default();
        a.record(5);
        let mut b = LogHistogram::default();
        b.record(5);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket(3), 2);
    }

    #[test]
    fn histogram_display_elides_empty_buckets() {
        let empty = LogHistogram::default();
        assert_eq!(empty.to_string(), "(empty)");
        let mut h = LogHistogram::default();
        h.record(1);
        h.record(6);
        let s = h.to_string();
        assert!(s.contains("<2:1"), "{s}");
        assert!(s.contains("<8:1"), "{s}");
    }

    #[test]
    fn telemetry_merge_sums_and_maxes() {
        let mut a = JoinTelemetry {
            rows_driven: 2,
            candidates_streamed: 10,
            peak_stream_depth: 7,
            cancel_polls: 3,
            matcher_flushes: 1,
            matcher_edges: 4,
            largest_flush_edges: 4,
            ..Default::default()
        };
        a.events.record(Event::Match);
        let mut b = a;
        b.peak_stream_depth = 5;
        b.largest_flush_edges = 9;
        a.merge(&b);
        assert_eq!(a.rows_driven, 4);
        assert_eq!(a.candidates_streamed, 20);
        assert_eq!(a.peak_stream_depth, 7, "peak is a max, not a sum");
        assert_eq!(a.largest_flush_edges, 9);
        assert_eq!(a.cancel_polls, 6);
        assert_eq!(a.events.matches, 2);
    }

    #[test]
    fn mean_stream_depth_handles_zero_rows() {
        assert_eq!(JoinTelemetry::default().mean_stream_depth(), 0.0);
    }

    #[test]
    fn report_mentions_every_section() {
        let t = JoinTelemetry::default();
        let r = t.report();
        for key in [
            "events:",
            "rows driven:",
            "stream depth",
            "prune events",
            "matcher:",
            "encoding:",
            "cancel polls:",
        ] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
    }
}
