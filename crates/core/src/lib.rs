//! # csj-core — Community Similarity based on User Profile Joins
//!
//! A faithful, production-grade implementation of the CSJ problem and the
//! six methods of *"Community Similarity based on User Profile Joins"*
//! (Theocharidis & Lauw, EDBT 2024), plus a hybrid MinMax–SuperEGO method
//! the paper sketches in its experimental discussion.
//!
//! ## The problem
//!
//! Two communities `B` and `A` hold d-dimensional user vectors whose
//! entries are aggregate preference counters. With
//! `ceil(|A|/2) <= |B| <= |A|`, CSJ finds a **one-to-one matching** between
//! the communities where a pair `(b, a)` is admissible only if
//! `|b_i - a_i| <= eps` in **every** dimension, and reports
//! `similarity = matched / |B|`.
//!
//! ## Methods
//!
//! | method | kind | strategy |
//! |---|---|---|
//! | [`CsjMethod::ApBaseline`] | approximate | nested loop, first match consumes both users |
//! | [`CsjMethod::ExBaseline`] | exact | nested loop all-pairs, then one CSF call |
//! | [`CsjMethod::ApMinMax`] | approximate | encoded sort-merge loop with MIN/MAX pruning |
//! | [`CsjMethod::ExMinMax`] | exact | encoded loop + per-segment CSF flushes |
//! | [`CsjMethod::ApSuperEgo`] | approximate | EGO recursion on normalised floats, greedy leaf |
//! | [`CsjMethod::ExSuperEgo`] | exact | EGO recursion, all-pairs leaf, one CSF call |
//! | [`CsjMethod::ApHybrid`] | approximate | EGO recursion on raw integers, encoded greedy leaf |
//! | [`CsjMethod::ExHybrid`] | exact | EGO recursion on raw integers, encoded all-pairs leaf |
//!
//! The *approximate* methods take the first admissible partner per user
//! and may under-count; the *exact* methods gather every admissible pair
//! and run a one-to-one matcher (the paper's CSF by default; see
//! [`csj_matching::MatcherKind`] for the exact-maximum alternatives).
//!
//! ## Quick start
//!
//! ```
//! use csj_core::{Community, CsjMethod, CsjOptions, run};
//!
//! let mut b = Community::new("B", 3);
//! b.push(1, &[3, 4, 2]).unwrap();
//! b.push(2, &[2, 2, 3]).unwrap();
//! let mut a = Community::new("A", 3);
//! a.push(10, &[2, 3, 5]).unwrap();
//! a.push(11, &[2, 3, 1]).unwrap();
//! a.push(12, &[3, 3, 3]).unwrap();
//!
//! let opts = CsjOptions::new(1); // eps = 1
//! let outcome = run(CsjMethod::ExMinMax, &b, &a, &opts).unwrap();
//! assert_eq!(outcome.similarity.percent(), 100.0); // the paper's Section 3 example
//! ```

pub mod algorithms;
pub mod cancel;
pub mod checksum;
pub mod community;
pub mod encoding;
pub mod error;
pub mod events;
pub mod plan;
pub mod prepared;
pub mod quant;
pub mod shard;
pub mod similarity;
pub mod telemetry;
pub mod verify;

pub use algorithms::{run, CsjMethod, CsjOptions, JoinOutcome, PhaseTimings, SuperEgoConfig};
pub use cancel::CancelToken;
pub use community::{Community, UserId};
pub use encoding::{encode_a, encode_b, part_bounds, EncodedA, EncodedB, EncodingParams};
pub use error::CsjError;
pub use events::{Event, EventCounters};
pub use plan::{CostSample, CostTable, Exactness, PlanInput, QueryPlan};
pub use prepared::PreparedCommunity;
pub use quant::{pair_lane, tile_geometry, LaneKind, QuantMode, QuantizedCommunity};
pub use shard::{community_mass, plan_shards, Coverage, ShardLayout};
pub use similarity::Similarity;
pub use telemetry::{JoinTelemetry, LogHistogram};

// Re-export the substrates so downstream users need only csj-core.
pub use csj_ego;
pub use csj_matching;
pub use csj_matching::MatcherKind;

/// Check the CSJ size admissibility constraint:
/// `ceil(|A|/2) <= |B| <= |A|`.
///
/// The paper: "similarity is meaningful to be computed only when the size
/// of B is at least the half of the size of A, since otherwise chances are
/// that B will be a significant subset of A".
pub fn validate_sizes(nb: usize, na: usize) -> Result<(), CsjError> {
    let lower = na.div_ceil(2);
    if nb < lower || nb > na {
        return Err(CsjError::SizeConstraint { nb, na });
    }
    Ok(())
}

/// Check that a `(b, a)` pair satisfies the strict per-dimension epsilon
/// condition — the heart of CSJ.
///
/// Routed through the one chunked lane primitive
/// ([`csj_ego::lanes::all_within`]) that every scalar match path in the
/// workspace shares; [`quant::QuantMode::Off`] selects the short-circuit
/// reference instead.
#[inline]
pub fn vectors_match(b: &[u32], a: &[u32], eps: u32) -> bool {
    debug_assert_eq!(b.len(), a.len());
    csj_ego::lanes::all_within(b, a, eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constraint_boundaries() {
        assert!(validate_sizes(2, 3).is_ok()); // ceil(3/2)=2
        assert!(validate_sizes(1, 3).is_err());
        assert!(validate_sizes(3, 3).is_ok());
        assert!(validate_sizes(4, 3).is_err());
        assert!(validate_sizes(0, 0).is_ok()); // vacuous
        assert!(validate_sizes(5, 10).is_ok());
        assert!(validate_sizes(4, 10).is_err());
    }

    #[test]
    fn vectors_match_is_per_dimension() {
        assert!(vectors_match(&[3, 4, 2], &[2, 3, 3], 1));
        assert!(!vectors_match(&[3, 4, 2], &[2, 3, 4], 1));
        assert!(vectors_match(&[], &[], 0));
        assert!(vectors_match(&[7], &[7], 0));
        assert!(!vectors_match(&[7], &[8], 0));
        assert!(vectors_match(&[0, u32::MAX], &[0, u32::MAX], 0));
    }
}
