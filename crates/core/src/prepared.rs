//! Prepared communities: encode once, join many times.
//!
//! Catalog workloads (the engine's screening phase, broadcast sweeps)
//! join the *same* community against many partners. The plain entry
//! points re-encode both sides on every call; a [`PreparedCommunity`]
//! carries both encoded buffers (`Encd_B` for when it plays the smaller
//! side, `Encd_A` for when it plays the larger side) so repeated MinMax
//! joins skip the `O(n·d + n log n)` encode-and-sort setup entirely.
//!
//! ```
//! use csj_core::prepared::{ex_minmax_between, PreparedCommunity};
//! use csj_core::{Community, CsjOptions};
//!
//! let mut x = Community::new("X", 2);
//! x.push(1, &[1, 1]).unwrap();
//! let mut y = Community::new("Y", 2);
//! y.push(9, &[1, 2]).unwrap();
//!
//! let opts = CsjOptions::new(1);
//! let px = PreparedCommunity::new(x, &opts);
//! let py = PreparedCommunity::new(y, &opts);
//! let raw = ex_minmax_between(&px, &py, &opts);
//! assert_eq!(raw.pairs.len(), 1);
//! ```

use std::sync::Arc;

use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;
use crate::encoding::{encode_a, encode_b, EncodedA, EncodedB, EncodingParams};
use crate::quant::QuantizedCommunity;

/// A community with both MinMax encodings precomputed for a fixed
/// `(eps, parts)` configuration.
///
/// The community itself is held behind an [`Arc`], so preparing an
/// encoding for a community someone else already owns (the engine's
/// registry, a caller keeping its own handle) shares the user vectors
/// instead of copying them — see [`PreparedCommunity::from_shared`].
#[derive(Debug, Clone)]
pub struct PreparedCommunity {
    community: Arc<Community>,
    eps: u32,
    params: EncodingParams,
    as_b: EncodedB,
    as_a: EncodedA,
    quant: QuantizedCommunity,
}

impl PreparedCommunity {
    /// Encode `community` for joins under `opts` (only `eps` and the
    /// encoding parameters matter here).
    pub fn new(community: Community, opts: &CsjOptions) -> Self {
        Self::from_shared(Arc::new(community), opts)
    }

    /// Encode an already-shared community without copying its rows.
    pub fn from_shared(community: Arc<Community>, opts: &CsjOptions) -> Self {
        let as_b = encode_b(&community, opts.encoding);
        let as_a = encode_a(&community, opts.eps, opts.encoding);
        let quant = QuantizedCommunity::build(&community);
        Self {
            community,
            eps: opts.eps,
            params: opts.encoding,
            as_b,
            as_a,
            quant,
        }
    }

    /// The wrapped community.
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// The epsilon the encodings were built for.
    pub fn eps(&self) -> u32 {
        self.eps
    }

    /// The encoding parameters the buffers were built with.
    pub fn params(&self) -> EncodingParams {
        self.params
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.community.len()
    }

    /// Whether the community is empty.
    pub fn is_empty(&self) -> bool {
        self.community.is_empty()
    }

    /// The `Encd_B` buffer (used when this community is the smaller side).
    pub fn encoded_b(&self) -> &EncodedB {
        &self.as_b
    }

    /// The `Encd_A` buffer (used when this community is the larger side).
    pub fn encoded_a(&self) -> &EncodedA {
        &self.as_a
    }

    /// The cached narrow-lane encoding for the kernel fast path.
    pub fn quantized(&self) -> &QuantizedCommunity {
        &self.quant
    }

    /// The wrapped community's shared handle (cheap refcount bump).
    pub fn shared_community(&self) -> Arc<Community> {
        Arc::clone(&self.community)
    }

    /// Consume the wrapper, returning the community. Clones the rows
    /// only when another `Arc` still shares them.
    pub fn into_community(self) -> Community {
        Arc::try_unwrap(self.community).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Reassemble from persisted pieces (the `csj_data::io` load path).
    /// The buffers must match the community's size and the `(eps, parts)`
    /// configuration; mismatches are rejected.
    pub fn from_parts(
        community: Community,
        eps: u32,
        params: EncodingParams,
        as_b: EncodedB,
        as_a: EncodedA,
    ) -> Result<Self, crate::CsjError> {
        let expected_parts = params.effective_parts(community.d());
        if as_b.len() != community.len()
            || as_a.len() != community.len()
            || as_b.parts() != expected_parts
            || as_a.parts() != expected_parts
        {
            return Err(crate::CsjError::InvalidOptions(
                "prepared buffers do not match the community/configuration".into(),
            ));
        }
        let quant = QuantizedCommunity::build(&community);
        Ok(Self {
            community: Arc::new(community),
            eps,
            params,
            as_b,
            as_a,
            quant,
        })
    }
}

fn check_compatible(b: &PreparedCommunity, a: &PreparedCommunity, opts: &CsjOptions) {
    assert_eq!(
        b.community.d(),
        a.community.d(),
        "prepared communities must share dimensionality"
    );
    assert!(
        b.eps == opts.eps && a.eps == opts.eps,
        "prepared encodings were built for a different eps"
    );
    assert!(
        b.params == opts.encoding && a.params == opts.encoding,
        "prepared encodings were built with different encoding params"
    );
}

/// Ap-MinMax over prepared communities (`b` smaller, `a` larger); no
/// re-encoding happens.
pub fn ap_minmax_between(
    b: &PreparedCommunity,
    a: &PreparedCommunity,
    opts: &CsjOptions,
) -> RawJoin {
    check_compatible(b, a, opts);
    crate::algorithms::minmax::ap_minmax_prepared(
        b.community(),
        a.community(),
        b.encoded_b(),
        a.encoded_a(),
        Some(b.quantized()),
        Some(a.quantized()),
        opts,
    )
}

/// Ex-MinMax over prepared communities (`b` smaller, `a` larger); no
/// re-encoding happens.
pub fn ex_minmax_between(
    b: &PreparedCommunity,
    a: &PreparedCommunity,
    opts: &CsjOptions,
) -> RawJoin {
    check_compatible(b, a, opts);
    crate::algorithms::minmax::ex_minmax_prepared(
        b.community(),
        a.community(),
        b.encoded_b(),
        a.encoded_a(),
        Some(b.quantized()),
        Some(a.quantized()),
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{ap_minmax, ex_minmax};

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    fn random_community(name: &str, n: usize, d: usize, seed: u64) -> Community {
        let mut rng = lcg(seed);
        Community::from_rows(
            name,
            d,
            (0..n).map(|i| (i as u64, (0..d).map(|_| rng() % 12).collect::<Vec<u32>>())),
        )
        .expect("well-formed")
    }

    #[test]
    fn prepared_joins_match_plain_joins() {
        let opts = CsjOptions::new(1).with_parts(2);
        let b = random_community("B", 80, 4, 1);
        let a = random_community("A", 100, 4, 2);
        let pb = PreparedCommunity::new(b.clone(), &opts);
        let pa = PreparedCommunity::new(a.clone(), &opts);

        let plain_ap = ap_minmax(&b, &a, &opts);
        let prep_ap = ap_minmax_between(&pb, &pa, &opts);
        assert_eq!(plain_ap.pairs, prep_ap.pairs);
        assert_eq!(plain_ap.telemetry, prep_ap.telemetry);

        let plain_ex = ex_minmax(&b, &a, &opts);
        let prep_ex = ex_minmax_between(&pb, &pa, &opts);
        assert_eq!(plain_ex.pairs, prep_ex.pairs);
    }

    #[test]
    fn either_orientation_works_from_one_preparation() {
        // The same prepared object serves as B against one partner and as
        // A against another.
        let opts = CsjOptions::new(1).with_parts(2);
        let mid = PreparedCommunity::new(random_community("mid", 60, 3, 7), &opts);
        let small = PreparedCommunity::new(random_community("small", 40, 3, 8), &opts);
        let large = PreparedCommunity::new(random_community("large", 90, 3, 9), &opts);
        let as_a = ex_minmax_between(&small, &mid, &opts);
        let as_b = ex_minmax_between(&mid, &large, &opts);
        assert!(as_a.pairs.len() <= small.len());
        assert!(as_b.pairs.len() <= mid.len());
    }

    #[test]
    fn accessors() {
        let opts = CsjOptions::new(2).with_parts(3);
        let c = random_community("acc", 10, 3, 3);
        let p = PreparedCommunity::new(c.clone(), &opts);
        assert_eq!(p.len(), 10);
        assert!(!p.is_empty());
        assert_eq!(p.eps(), 2);
        assert_eq!(p.params().parts, 3);
        assert_eq!(p.encoded_b().len(), 10);
        assert_eq!(p.encoded_a().len(), 10);
        assert_eq!(p.into_community(), c);
    }

    #[test]
    fn from_shared_shares_rather_than_copies() {
        let opts = CsjOptions::new(1).with_parts(2);
        let c = Arc::new(random_community("sh", 10, 3, 5));
        let p = PreparedCommunity::from_shared(Arc::clone(&c), &opts);
        assert!(Arc::ptr_eq(&c, &p.shared_community()));
        // With the outer Arc still alive, consuming must clone.
        let back = p.into_community();
        assert_eq!(back, *c);
    }

    #[test]
    #[should_panic(expected = "different eps")]
    fn rejects_mismatched_eps() {
        let c = random_community("x", 4, 2, 1);
        let p1 = PreparedCommunity::new(c.clone(), &CsjOptions::new(1));
        let p2 = PreparedCommunity::new(c, &CsjOptions::new(2));
        let _ = ex_minmax_between(&p1, &p2, &CsjOptions::new(1));
    }
}
