//! Pairing-process events.
//!
//! During the pairing of a `b ∈ B` with an `a ∈ A`, the MinMax algorithms
//! (and, where applicable, the other methods) yield five kinds of events
//! (Section 4 of the paper). Counting them is how the test suite asserts
//! pruning behaviour and how the benches explain *why* a method is fast.

/// One pairing event, as defined in Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// Current `b` cannot match this or any later `a`
    /// (`eB.encd_ID < eA.encd_Min`): move to the next `b`.
    MinPrune,
    /// Current `a` cannot match this or any later `b`
    /// (`eB.encd_ID > eA.encd_Max` while the skip flag is active): the
    /// offset advances past `a` permanently.
    MaxPrune,
    /// The encoded ID is in range but some part sum of `b` falls outside
    /// the corresponding range of `a`: skip the d-dimensional comparison.
    NoOverlap,
    /// Full d-dimensional comparison executed and failed.
    NoMatch,
    /// Full d-dimensional comparison executed and succeeded.
    Match,
}

/// Counters for every event kind plus the comparison workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// MIN PRUNE events.
    pub min_prune: u64,
    /// MAX PRUNE events (offset advances).
    pub max_prune: u64,
    /// NO OVERLAP events (part/range filter rejections).
    pub no_overlap: u64,
    /// NO MATCH events (full comparisons that failed).
    pub no_match: u64,
    /// MATCH events (full comparisons that succeeded).
    pub matches: u64,
}

impl EventCounters {
    /// Record one event.
    #[inline]
    pub fn record(&mut self, event: Event) {
        match event {
            Event::MinPrune => self.min_prune += 1,
            Event::MaxPrune => self.max_prune += 1,
            Event::NoOverlap => self.no_overlap += 1,
            Event::NoMatch => self.no_match += 1,
            Event::Match => self.matches += 1,
        }
    }

    /// Number of full d-dimensional comparisons executed.
    pub fn full_comparisons(&self) -> u64 {
        self.no_match + self.matches
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.min_prune + self.max_prune + self.no_overlap + self.no_match + self.matches
    }

    /// Merge another counter block into this one.
    pub fn merge(&mut self, other: &EventCounters) {
        self.min_prune += other.min_prune;
        self.max_prune += other.max_prune;
        self.no_overlap += other.no_overlap;
        self.no_match += other.no_match;
        self.matches += other.matches;
    }
}

impl std::fmt::Display for EventCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min_prune={} max_prune={} no_overlap={} no_match={} match={}",
            self.min_prune, self.max_prune, self.no_overlap, self.no_match, self.matches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut c = EventCounters::default();
        c.record(Event::MinPrune);
        c.record(Event::Match);
        c.record(Event::Match);
        c.record(Event::NoMatch);
        c.record(Event::NoOverlap);
        c.record(Event::MaxPrune);
        assert_eq!(c.min_prune, 1);
        assert_eq!(c.matches, 2);
        assert_eq!(c.full_comparisons(), 3);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = EventCounters {
            min_prune: 1,
            max_prune: 2,
            no_overlap: 3,
            no_match: 4,
            matches: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 2 * b.total());
    }

    #[test]
    fn display_mentions_all_kinds() {
        let c = EventCounters::default();
        let s = c.to_string();
        for key in ["min_prune", "max_prune", "no_overlap", "no_match", "match"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
