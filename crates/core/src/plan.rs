//! Cost-based query planning: pick a [`CsjMethod`] from the instance.
//!
//! The paper's Section 6.2 timing analysis shows that no single method
//! wins everywhere: the Ex-MinMax / Ex-SuperEGO crossover moves with
//! `|A|`, `|B|`, `d`, `eps` and data density, and the discussion
//! sketches a "combined algorithm" that picks per instance. This module
//! is that combiner's model half: a [`PlanInput`] summarises one join
//! instance, a versioned [`CostTable`] holds per-method linear cost
//! coefficients (seeded from the offline `tables -- crossover`
//! experiment, recalibratable via [`fit`]), and [`CostTable::plan`]
//! deterministically resolves [`CsjMethod::Auto`] to the cheapest
//! admissible concrete method, keeping the rejected alternatives for
//! `csj explain` and query traces.
//!
//! Everything here is **pure and deterministic**: the same table and the
//! same input always produce the same [`QueryPlan`] (the planner's
//! online feedback loop lives in `csj-engine`, where latency
//! observations exist). The table serialises to a small versioned text
//! format (`csj-cost-table v1`) so a calibrated model survives process
//! restarts and can be reviewed in a diff.

use crate::algorithms::CsjMethod;
use crate::prepared::PreparedCommunity;

/// Format/semantics version of [`CostTable`]; bumped when the feature
/// vector or the serialised layout changes incompatibly. v2 extended
/// the vector with the quantized-kernel features (narrow-lane compare
/// volume, A-tile count).
pub const COST_TABLE_VERSION: u32 = 2;

/// Length of the per-method feature/weight vector.
pub const FEATURES: usize = 6;

/// Number of concrete methods the table covers.
const METHODS: usize = CsjMethod::ALL.len();

/// Density assumed when no prepared encodings are available to estimate
/// it (cold CLI paths, registry-average ladder inputs).
pub const DEFAULT_DENSITY: f64 = 0.25;

/// What kind of answer the caller needs; restricts which methods a plan
/// may choose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exactness {
    /// Only exact methods qualify (refinement, cached similarities).
    Exact,
    /// Only approximate methods qualify (screening, degraded sweeps).
    Approximate,
    /// Any method qualifies; the plan simply picks the cheapest.
    Any,
}

impl Exactness {
    /// Whether `method` satisfies this requirement.
    pub fn admits(self, method: CsjMethod) -> bool {
        match self {
            Exactness::Exact => method.is_exact(),
            Exactness::Approximate => !method.is_exact(),
            Exactness::Any => true,
        }
    }

    /// Stable label used in traces and `csj explain`.
    pub fn label(self) -> &'static str {
        match self {
            Exactness::Exact => "exact",
            Exactness::Approximate => "approximate",
            Exactness::Any => "any",
        }
    }
}

/// Everything the cost model knows about one join instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanInput {
    /// Size of the smaller community `B`.
    pub nb: usize,
    /// Size of the larger community `A`.
    pub na: usize,
    /// Dimensionality.
    pub d: usize,
    /// The per-dimension epsilon threshold.
    pub eps: u32,
    /// The caller's exactness requirement.
    pub exactness: Exactness,
    /// Estimated fraction of `(b, a)` pairs that survive the cheap
    /// MIN/MAX filters and reach a full d-dimensional comparison, in
    /// `(0, 1]`. Derived from the prepared encodings' part-sum spread
    /// ([`PlanInput::from_prepared`]) or [`DEFAULT_DENSITY`].
    pub density: f64,
    /// Bytes per counter lane the quantized kernel would use for this
    /// pair (1, 2 or 4): the widest of both sides' narrowest fitting
    /// lanes, widened further if `eps` exceeds the lane's range. 4 when
    /// nothing is known about the data (cold CLI paths).
    pub lane_bytes: usize,
}

impl PlanInput {
    /// An input with the default density estimate.
    pub fn new(nb: usize, na: usize, d: usize, eps: u32, exactness: Exactness) -> Self {
        Self {
            nb,
            na,
            d,
            eps,
            exactness,
            density: DEFAULT_DENSITY,
            lane_bytes: 4,
        }
    }

    /// Set the quantized lane width the kernel would pick for this pair
    /// (see [`crate::quant::pair_lane`]).
    pub fn with_lane(mut self, lane_bytes: usize) -> Self {
        self.lane_bytes = lane_bytes;
        self
    }

    /// Build the input from two prepared communities (`b` smaller, `a`
    /// larger), estimating the candidate density from their encodings:
    /// the mean `[encoded_Min, encoded_Max]` window of `A` relative to
    /// the spread of `B`'s sorted `encoded_ID`s approximates the
    /// fraction of `A` each driven `B` row must consider.
    pub fn from_prepared(
        b: &PreparedCommunity,
        a: &PreparedCommunity,
        exactness: Exactness,
    ) -> Self {
        let mut input = Self::new(b.len(), a.len(), b.community().d(), b.eps(), exactness);
        input.density = density_estimate(b, a);
        input.lane_bytes =
            crate::quant::pair_lane(b.quantized(), a.quantized(), b.eps()).bytes() as usize;
        input
    }

    /// The model's feature vector: `[1, setup elements, raw candidate
    /// pairs, surviving comparisons, narrow-lane compare volume, A-tile
    /// count]`. The last two describe the quantized kernel: the compare
    /// volume rescaled by the chosen lane width (a `u8` pair moves a
    /// quarter of the bytes a `u32` pair does, so its weight lets the
    /// fit learn the narrow-lane discount) and the number of L1-sized
    /// tiles the blocked scan walks (per-tile loop overhead).
    pub fn features(&self) -> [f64; FEATURES] {
        let nb = self.nb as f64;
        let na = self.na as f64;
        let d = self.d as f64;
        let compare = nb * na * d * self.density.clamp(1e-6, 1.0);
        let lane_scale = (self.lane_bytes.clamp(1, 4) as f64) / 4.0;
        let (_, tiles) =
            crate::quant::tile_geometry(self.na, self.d, self.lane_bytes.clamp(1, 4) as u32);
        [
            1.0,
            (nb + na) * d,
            nb * na,
            compare,
            compare * lane_scale,
            tiles as f64,
        ]
    }
}

/// Density estimate from prepared encodings; see
/// [`PlanInput::from_prepared`].
pub fn density_estimate(b: &PreparedCommunity, a: &PreparedCommunity) -> f64 {
    let eb = b.encoded_b();
    let ea = a.encoded_a();
    if eb.is_empty() || ea.is_empty() {
        return DEFAULT_DENSITY;
    }
    let window_sum: u64 = ea
        .encd_mins
        .iter()
        .zip(&ea.encd_maxs)
        .map(|(&lo, &hi)| hi - lo + 1)
        .sum();
    let mean_window = window_sum as f64 / ea.len() as f64;
    let spread = (eb.encd_ids[eb.len() - 1] - eb.encd_ids[0]).max(1) as f64;
    (mean_window / spread).clamp(1.0 / a.len().max(1) as f64, 1.0)
}

/// One method's cost estimate within a [`QueryPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCandidate {
    /// The concrete method.
    pub method: CsjMethod,
    /// Estimated wall-clock cost, microseconds.
    pub estimated_us: f64,
}

/// The resolved plan for one join instance: the chosen method, its cost
/// estimate and every admissible alternative the model rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The instance the plan was made for.
    pub input: PlanInput,
    /// The cheapest admissible method.
    pub chosen: CsjMethod,
    /// The chosen method's estimated cost, microseconds.
    pub estimated_us: f64,
    /// Every admissible candidate, cheapest first (the chosen method is
    /// `candidates[0]`).
    pub candidates: Vec<PlanCandidate>,
    /// Version of the cost table that produced the plan.
    pub table_version: u32,
    /// Provenance of the table (`"seeded"` or `"calibrated"`).
    pub table_source: String,
}

impl QueryPlan {
    /// The admissible alternatives the model did *not* choose, cheapest
    /// first.
    pub fn rejected(&self) -> &[PlanCandidate] {
        &self.candidates[1..]
    }

    /// One-line rendering of the rejected alternatives, for traces and
    /// `csj explain` (`"ex-superego:312us, ex-baseline:4102us"`).
    pub fn rejected_summary(&self) -> String {
        self.rejected()
            .iter()
            .map(|c| format!("{}:{:.0}us", c.method.name(), c.estimated_us))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Versioned per-method cost coefficients over [`PlanInput::features`].
/// `weights[i]` corresponds to `CsjMethod::ALL[i]`; the estimated cost
/// of a method is the dot product of its weights with the feature
/// vector, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// Format/semantics version (see [`COST_TABLE_VERSION`]).
    pub version: u32,
    /// Provenance: `"seeded"` for the built-in coefficients,
    /// `"calibrated"` for tables produced by [`fit`].
    pub source: String,
    /// Per-method weight rows, indexed like [`CsjMethod::ALL`].
    pub weights: [[f64; FEATURES]; METHODS],
}

fn method_index(method: CsjMethod) -> usize {
    CsjMethod::ALL
        .iter()
        .position(|&m| m == method)
        .expect("concrete method in ALL")
}

impl CostTable {
    /// The built-in coefficients, seeded from the shape of the
    /// `tables -- crossover` results: Baseline pays nothing in setup but
    /// scans every pair; MinMax buys a ~5x smaller scan with a cheap
    /// encode-and-sort; SuperEGO pays the largest setup (normalise,
    /// reorder, EGO sort) for the cheapest scan; hybrids sit between.
    /// Exact variants add the matcher's per-edge cost on top of their
    /// approximate siblings. Absolute values are rough — [`fit`]
    /// recalibrates them on the actual machine — but the *relative*
    /// shape already reproduces the paper's small-instance/large-
    /// instance crossover.
    pub fn seeded() -> Self {
        // The two v2 kernel features (narrow-lane compare volume, tile
        // count) are seeded at zero: the seed stays behaviourally
        // identical to the v1 table and only calibration against the
        // quantized kernels gives them weight.
        let row =
            |base: f64, setup: f64, scan: f64, compare: f64| [base, setup, scan, compare, 0.0, 0.0];
        Self {
            version: COST_TABLE_VERSION,
            source: "seeded".to_string(),
            // Indexed like CsjMethod::ALL:
            // ApBaseline, ApMinMax, ApSuperEgo, ApHybrid,
            // ExBaseline, ExMinMax, ExSuperEgo, ExHybrid.
            weights: [
                row(2.0, 0.0, 0.0040, 0.0015),
                row(3.0, 0.010, 0.0008, 0.0015),
                row(5.0, 0.030, 0.0005, 0.0015),
                row(5.0, 0.020, 0.0006, 0.0015),
                row(3.0, 0.0, 0.0040, 0.0035),
                row(4.0, 0.010, 0.0008, 0.0035),
                row(6.0, 0.030, 0.0005, 0.0035),
                row(6.0, 0.020, 0.0006, 0.0035),
            ],
        }
    }

    /// Estimated cost of running `method` on `input`, microseconds.
    /// Never below 1 µs (a calibrated row must not go negative on
    /// inputs outside its fitting range).
    pub fn estimate(&self, method: CsjMethod, input: &PlanInput) -> f64 {
        let w = &self.weights[method_index(method)];
        let f = input.features();
        w.iter()
            .zip(f.iter())
            .map(|(wi, fi)| wi * fi)
            .sum::<f64>()
            .max(1.0)
    }

    /// Resolve `input` to a concrete method: every admissible method is
    /// costed and the cheapest wins (ties break on [`CsjMethod::ALL`]
    /// order, so planning is fully deterministic).
    pub fn plan(&self, input: &PlanInput) -> QueryPlan {
        let mut candidates: Vec<PlanCandidate> = CsjMethod::ALL
            .iter()
            .filter(|&&m| input.exactness.admits(m))
            .map(|&m| PlanCandidate {
                method: m,
                estimated_us: self.estimate(m, input),
            })
            .collect();
        candidates.sort_by(|p, q| {
            p.estimated_us
                .total_cmp(&q.estimated_us)
                .then_with(|| method_index(p.method).cmp(&method_index(q.method)))
        });
        let best = candidates[0];
        QueryPlan {
            input: *input,
            chosen: best.method,
            estimated_us: best.estimated_us,
            candidates,
            table_version: self.version,
            table_source: self.source.clone(),
        }
    }

    /// The degradation ladder for an exact `primary` method under
    /// pressure (open breaker, deadline): *fastest-exact → hybrid →
    /// approximate*. Rungs are ordered from least to most degraded and
    /// the final rung is always [`CsjMethod::approximate_counterpart`],
    /// whose score is a sound lower bound within a factor of two of the
    /// exact answer. An approximate (or [`CsjMethod::Auto`]) primary
    /// has nothing to degrade to and gets a single-rung ladder.
    pub fn degradation_ladder(&self, primary: CsjMethod, input: &PlanInput) -> Vec<CsjMethod> {
        if !primary.is_exact() {
            return vec![primary.approximate_counterpart()];
        }
        let mut ladder = Vec::with_capacity(4);
        let push = |m: CsjMethod, ladder: &mut Vec<CsjMethod>| {
            if m != primary && !ladder.contains(&m) {
                ladder.push(m);
            }
        };
        // Rung 1: the cheapest *other* exact method (the breaker is
        // per-method, so a healthy exact sibling preserves exactness).
        if let Some(fastest) = CsjMethod::ALL
            .iter()
            .filter(|&&m| m.is_exact() && m != primary)
            .min_by(|&&p, &&q| self.estimate(p, input).total_cmp(&self.estimate(q, input)))
        {
            push(*fastest, &mut ladder);
        }
        // Rung 2: the exact hybrid — a different substrate (integer EGO
        // recursion + encoded leaf), robust when the primary's substrate
        // is the problem.
        push(CsjMethod::ExHybrid, &mut ladder);
        // Rung 3+: approximate — cheapest first, the primary's
        // counterpart always last (the documented 2x soundness rung).
        if let Some(cheapest_ap) = CsjMethod::ALL
            .iter()
            .filter(|&&m| !m.is_exact() && m != primary.approximate_counterpart())
            .min_by(|&&p, &&q| self.estimate(p, input).total_cmp(&self.estimate(q, input)))
        {
            push(*cheapest_ap, &mut ladder);
        }
        let counterpart = primary.approximate_counterpart();
        if !ladder.contains(&counterpart) {
            ladder.push(counterpart);
        }
        ladder
    }

    /// Serialise to the versioned `csj-cost-table` text format. Float
    /// weights use Rust's shortest-roundtrip rendering, so
    /// `from_text(to_text())` reproduces the table bit-identically.
    pub fn to_text(&self) -> String {
        let mut out = format!("csj-cost-table v{}\nsource {}\n", self.version, self.source);
        for (i, m) in CsjMethod::ALL.iter().enumerate() {
            out.push_str(&format!("method {}", m.name()));
            for w in &self.weights[i] {
                out.push_str(&format!(" {w:?}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the `csj-cost-table` text format; rejects unknown versions,
    /// unknown/missing methods and malformed weights.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty cost table")?;
        let version: u32 = header
            .strip_prefix("csj-cost-table v")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| format!("bad cost-table header: {header:?}"))?;
        if version != COST_TABLE_VERSION {
            return Err(format!(
                "unsupported cost-table version {version} (this build reads v{COST_TABLE_VERSION})"
            ));
        }
        let source_line = lines.next().ok_or("missing source line")?;
        let source = source_line
            .strip_prefix("source ")
            .ok_or_else(|| format!("bad source line: {source_line:?}"))?
            .trim()
            .to_string();
        let mut weights = [[f64::NAN; FEATURES]; METHODS];
        let mut seen = [false; METHODS];
        for line in lines {
            let mut tok = line.split_whitespace();
            match tok.next() {
                Some("method") => {}
                other => return Err(format!("unexpected line start: {other:?}")),
            }
            let name = tok.next().ok_or("method line without a name")?;
            let method: CsjMethod = name.parse().map_err(|e| format!("cost table: {e}"))?;
            if method == CsjMethod::Auto {
                return Err("cost table cannot contain a row for auto".into());
            }
            let idx = method_index(method);
            if seen[idx] {
                return Err(format!("duplicate row for {name}"));
            }
            seen[idx] = true;
            for w in weights[idx].iter_mut() {
                let raw = tok
                    .next()
                    .ok_or_else(|| format!("{name}: missing weight"))?;
                *w = raw
                    .parse()
                    .map_err(|_| format!("{name}: bad weight {raw:?}"))?;
                if !w.is_finite() {
                    return Err(format!("{name}: non-finite weight {raw:?}"));
                }
            }
            if tok.next().is_some() {
                return Err(format!("{name}: too many weights"));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!(
                "cost table missing a row for {}",
                CsjMethod::ALL[missing].name()
            ));
        }
        Ok(Self {
            version,
            source,
            weights,
        })
    }
}

impl Default for CostTable {
    fn default() -> Self {
        Self::seeded()
    }
}

/// One calibration observation: `method` ran on `input` in `actual_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostSample {
    /// The measured method.
    pub method: CsjMethod,
    /// The instance it ran on.
    pub input: PlanInput,
    /// Measured wall-clock, microseconds.
    pub actual_us: f64,
}

/// Fit a calibrated table from measured samples: per method, ridge
/// least squares over the feature vector, regularised toward the seed
/// coefficients so under-determined fits (few shapes) degrade to a
/// rescaled seed instead of oscillating. Methods with no samples keep
/// their seed row. Deterministic: same samples, same table.
pub fn fit(samples: &[CostSample], seed: &CostTable) -> CostTable {
    let mut table = seed.clone();
    table.source = "calibrated".to_string();
    for (idx, &method) in CsjMethod::ALL.iter().enumerate() {
        let rows: Vec<&CostSample> = samples.iter().filter(|s| s.method == method).collect();
        if rows.is_empty() {
            continue;
        }
        // Normal equations with Tikhonov regularisation toward the seed:
        // (X'X + λS) w = X'y + λS w_seed, with S scaling λ per feature so
        // the penalty is dimensionless across wildly different feature
        // magnitudes.
        let mut xtx = [[0.0f64; FEATURES]; FEATURES];
        let mut xty = [0.0f64; FEATURES];
        let mut scale = [0.0f64; FEATURES];
        for s in &rows {
            let f = s.input.features();
            for i in 0..FEATURES {
                scale[i] += f[i] * f[i];
                xty[i] += f[i] * s.actual_us;
                for j in 0..FEATURES {
                    xtx[i][j] += f[i] * f[j];
                }
            }
        }
        const LAMBDA: f64 = 1e-2;
        for i in 0..FEATURES {
            let s = LAMBDA * (scale[i] / rows.len() as f64).max(1e-12);
            xtx[i][i] += s;
            xty[i] += s * seed.weights[idx][i];
        }
        if let Some(w) = solve(xtx, xty) {
            table.weights[idx] = w;
        }
    }
    table
}

/// Gaussian elimination with partial pivoting; `None` on a (numerically)
/// singular system — the caller keeps the seed row then.
fn solve(mut a: [[f64; FEATURES]; FEATURES], mut b: [f64; FEATURES]) -> Option<[f64; FEATURES]> {
    for col in 0..FEATURES {
        let pivot = (col..FEATURES).max_by(|&p, &q| a[p][col].abs().total_cmp(&a[q][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..FEATURES {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, &p) in pivot_row.iter().enumerate().skip(col) {
                a[row][k] -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; FEATURES];
    for row in (0..FEATURES).rev() {
        let mut acc = b[row];
        for k in (row + 1)..FEATURES {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
        if !x[row].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn input(nb: usize, na: usize, d: usize, eps: u32, exactness: Exactness) -> PlanInput {
        PlanInput::new(nb, na, d, eps, exactness)
    }

    fn random_community(name: &str, n: usize, d: usize, seed: u64) -> crate::Community {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        crate::Community::from_rows(
            name,
            d,
            (0..n).map(|i| (i as u64, (0..d).map(|_| next() % 12).collect::<Vec<u32>>())),
        )
        .expect("well-formed")
    }

    #[test]
    fn plan_respects_exactness() {
        let table = CostTable::seeded();
        let exact = table.plan(&input(100, 120, 27, 2, Exactness::Exact));
        assert!(exact.chosen.is_exact());
        assert!(exact.candidates.iter().all(|c| c.method.is_exact()));
        assert_eq!(exact.candidates.len(), 4);

        let approx = table.plan(&input(100, 120, 27, 2, Exactness::Approximate));
        assert!(!approx.chosen.is_exact());
        assert_eq!(approx.candidates.len(), 4);

        let any = table.plan(&input(100, 120, 27, 2, Exactness::Any));
        assert_eq!(any.candidates.len(), 8);
        // The cheapest overall can never be exact under this model: the
        // exact sibling always adds matcher cost on identical features.
        assert!(!any.chosen.is_exact());
    }

    #[test]
    fn candidates_sorted_and_rejected_excludes_chosen() {
        let table = CostTable::seeded();
        let plan = table.plan(&input(500, 550, 27, 2, Exactness::Exact));
        assert!(plan
            .candidates
            .windows(2)
            .all(|w| w[0].estimated_us <= w[1].estimated_us));
        assert_eq!(plan.candidates[0].method, plan.chosen);
        assert_eq!(plan.rejected().len(), plan.candidates.len() - 1);
        assert!(plan.rejected().iter().all(|c| c.method != plan.chosen));
        assert!(plan.rejected_summary().contains(":"));
    }

    #[test]
    fn seeded_model_reproduces_the_crossover_shape() {
        // Tiny instances: no-setup Baseline wins. Large instances: the
        // encoded scan methods win (setup amortised).
        let table = CostTable::seeded();
        let small = table.plan(&input(8, 10, 27, 2, Exactness::Exact));
        assert_eq!(small.chosen, CsjMethod::ExBaseline);
        let large = table.plan(&input(4000, 4400, 27, 2, Exactness::Exact));
        assert_ne!(large.chosen, CsjMethod::ExBaseline);
    }

    #[test]
    fn text_roundtrip_is_identical() {
        let table = CostTable::seeded();
        let text = table.to_text();
        let back = CostTable::from_text(&text).unwrap();
        assert_eq!(back, table);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn from_text_rejects_malformed_tables() {
        assert!(CostTable::from_text("").is_err());
        assert!(CostTable::from_text("csj-cost-table v99\nsource x\n").is_err());
        let mut missing = CostTable::seeded().to_text();
        let last = missing.rfind("method").unwrap();
        missing.truncate(last);
        assert!(CostTable::from_text(&missing)
            .unwrap_err()
            .contains("missing"));
        let dup = format!(
            "{}method ap-baseline 1 1 1 1 1 1\n",
            CostTable::seeded().to_text()
        );
        assert!(CostTable::from_text(&dup)
            .unwrap_err()
            .contains("duplicate"));
        let auto_row = "csj-cost-table v2\nsource x\nmethod auto 1 1 1 1 1 1\n";
        assert!(CostTable::from_text(auto_row).is_err());
        // Pre-kernel v1 tables (4 features) are rejected loudly, not
        // silently zero-extended.
        let v1 = "csj-cost-table v1\nsource seeded\nmethod ap-baseline 1 1 1 1\n";
        assert!(CostTable::from_text(v1)
            .unwrap_err()
            .contains("unsupported cost-table version 1"));
    }

    #[test]
    fn ladder_ends_on_the_counterpart_and_never_contains_primary() {
        let table = CostTable::seeded();
        let inp = input(400, 440, 27, 2, Exactness::Exact);
        for primary in CsjMethod::ALL.into_iter().filter(|m| m.is_exact()) {
            let ladder = table.degradation_ladder(primary, &inp);
            assert!(!ladder.is_empty());
            assert!(!ladder.contains(&primary), "{primary}");
            assert_eq!(*ladder.last().unwrap(), primary.approximate_counterpart());
            // fastest-exact rung first, then strictly more degraded.
            assert!(ladder[0].is_exact(), "{primary}: {ladder:?}");
            let mut deduped = ladder.clone();
            deduped.dedup();
            assert_eq!(deduped, ladder, "no duplicate rungs");
        }
        // Approximate primaries have a single self rung.
        assert_eq!(
            table.degradation_ladder(CsjMethod::ApMinMax, &inp),
            vec![CsjMethod::ApMinMax]
        );
        // Auto is not exact: delegated selection stays delegated.
        assert_eq!(
            table.degradation_ladder(CsjMethod::Auto, &inp),
            vec![CsjMethod::Auto]
        );
    }

    #[test]
    fn fit_recovers_planted_coefficients() {
        // Synthesise samples from a known table and check the fit ranks
        // methods identically on a held-out instance.
        let mut truth = CostTable::seeded();
        truth.weights[method_index(CsjMethod::ExMinMax)] = [10.0, 0.02, 0.0002, 0.001, 0.0, 0.0];
        truth.weights[method_index(CsjMethod::ExBaseline)] = [5.0, 0.0, 0.006, 0.004, 0.0, 0.0];
        let shapes = [
            input(50, 60, 27, 2, Exactness::Exact),
            input(200, 220, 27, 2, Exactness::Exact),
            input(800, 880, 27, 2, Exactness::Exact),
            input(2000, 2200, 27, 2, Exactness::Exact),
            input(400, 800, 27, 2, Exactness::Exact),
        ];
        let mut samples = Vec::new();
        for m in [CsjMethod::ExMinMax, CsjMethod::ExBaseline] {
            for s in &shapes {
                samples.push(CostSample {
                    method: m,
                    input: *s,
                    actual_us: truth.estimate(m, s),
                });
            }
        }
        let fitted = fit(&samples, &CostTable::seeded());
        assert_eq!(fitted.source, "calibrated");
        let held_out = input(1200, 1300, 27, 2, Exactness::Exact);
        let truth_best = truth.estimate(CsjMethod::ExMinMax, &held_out)
            < truth.estimate(CsjMethod::ExBaseline, &held_out);
        let fit_best = fitted.estimate(CsjMethod::ExMinMax, &held_out)
            < fitted.estimate(CsjMethod::ExBaseline, &held_out);
        assert_eq!(truth_best, fit_best);
        // Unmeasured methods keep their seed rows.
        assert_eq!(
            fitted.weights[method_index(CsjMethod::ApSuperEgo)],
            CostTable::seeded().weights[method_index(CsjMethod::ApSuperEgo)]
        );
    }

    #[test]
    fn narrow_lanes_shift_the_planned_crossover() {
        // A calibrated table can express "the blocked Baseline scan is
        // bandwidth-bound": its compare cost rides on the lane-scaled
        // v2 feature while MinMax's stays on the raw pair count. On a
        // u8-lane pair the quantized scan then wins the plan; the same
        // shape with u32 lanes keeps the encoded method. The seeded
        // weights alone can't distinguish these (both v2 features seed
        // to zero) — this is exactly what `plan --calibrate` against
        // the quantized kernels learns.
        let mut table = CostTable::seeded();
        let ex_baseline = method_index(CsjMethod::ExBaseline);
        // All of ExBaseline's scan cost is byte volume: feature 4.
        table.weights[ex_baseline] = [3.0, 0.0, 0.0, 0.0, 0.0120, 0.05];
        let shape = input(600, 660, 27, 2, Exactness::Exact);

        let wide = table.plan(&shape.with_lane(4));
        assert_ne!(wide.chosen, CsjMethod::ExBaseline);

        let narrow = table.plan(&shape.with_lane(1));
        assert_eq!(narrow.chosen, CsjMethod::ExBaseline);
        // The estimate itself reflects the 4x byte discount (modulo the
        // fixed floor and per-tile overhead).
        assert!(narrow.estimated_us < wide.candidates[0].estimated_us * 2.0);
    }

    #[test]
    fn from_prepared_reports_the_pair_lane() {
        let opts = crate::CsjOptions::new(1).with_parts(2);
        let narrow = random_community("narrow", 30, 3, 11); // counters < 12
        let wide = {
            let mut c = random_community("wide", 30, 3, 12);
            c.push(999, &[70_000, 1, 2]).unwrap();
            c
        };
        let pn = PreparedCommunity::new(narrow, &opts);
        let pw = PreparedCommunity::new(wide, &opts);
        assert_eq!(
            PlanInput::from_prepared(&pn, &pn, Exactness::Any).lane_bytes,
            1
        );
        // One side exceeding u16 range widens the pair to u32.
        assert_eq!(
            PlanInput::from_prepared(&pn, &pw, Exactness::Any).lane_bytes,
            4
        );
    }

    #[test]
    fn estimates_have_a_floor() {
        let mut table = CostTable::seeded();
        table.weights[0] = [-100.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let e = table.estimate(CsjMethod::ApBaseline, &input(1, 1, 1, 0, Exactness::Any));
        assert_eq!(e, 1.0);
    }

    proptest! {
        /// Frozen-table determinism: for any seeded input, planning is a
        /// pure function — two independent table instances (one via the
        /// text roundtrip) produce byte-identical plans.
        #[test]
        fn frozen_table_plans_are_byte_identical(
            nb in 1usize..5000,
            extra in 0usize..5000,
            d in 1usize..64,
            eps in 0u32..10,
            density_millis in 1u32..1000,
            which in 0usize..3,
        ) {
            let exactness = [Exactness::Exact, Exactness::Approximate, Exactness::Any][which];
            let mut input = PlanInput::new(nb, nb + extra, d, eps, exactness);
            input.density = f64::from(density_millis) / 1000.0;
            let table = CostTable::seeded();
            let roundtripped = CostTable::from_text(&table.to_text()).unwrap();
            let p1 = table.plan(&input);
            let p2 = roundtripped.plan(&input);
            prop_assert_eq!(&p1, &p2);
            prop_assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
            prop_assert!(input.exactness.admits(p1.chosen));
        }
    }
}
