//! Cooperative cancellation for long-running joins.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between the caller
//! and a running join. The join loops poll it at per-row granularity and
//! bail out early once it trips, reporting the truncation through
//! `RawJoin::cancelled` / `JoinOutcome::cancelled` rather than an error:
//! the pairs gathered so far still form a valid (partial) one-to-one
//! matching, so callers can degrade gracefully instead of discarding
//! work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Clones observe the same flag; once
/// [`cancel`](CancelToken::cancel) is called the token stays cancelled
/// forever (there is no reset — create a fresh token per query instead).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag. Safe to call from any thread, any number of times.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Two tokens are equal when they share the same flag — a clone equals
/// its source, while two independently created tokens never compare
/// equal even if neither is cancelled.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_trips_permanently() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn equality_is_identity() {
        let t = CancelToken::new();
        let c = t.clone();
        assert_eq!(t, c);
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn cancels_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
