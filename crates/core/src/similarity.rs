//! The CSJ similarity score (Equation 1 of the paper).

/// `similarity(B, A) = |matched_user_pairs(B, A)| / |B|`.
///
/// The paper writes this with an extra factor `p` (`p = 1` for exact
/// methods, `p ∈ (0, 1]` for approximate ones) to express that approximate
/// methods may under-report; operationally both kinds compute
/// `matched / |B|` and the approximate deficit is observable by comparing
/// against an exact method, which is how the evaluation tables present it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Similarity {
    /// Number of one-to-one matched user pairs found.
    pub matched: usize,
    /// `|B|`, the size of the smaller community.
    pub b_size: usize,
}

impl Similarity {
    /// Construct from a matched-pair count and `|B|`.
    pub fn new(matched: usize, b_size: usize) -> Self {
        debug_assert!(matched <= b_size, "cannot match more pairs than |B|");
        Self { matched, b_size }
    }

    /// The similarity as a ratio in `[0, 1]` (0 for an empty `B`).
    pub fn ratio(&self) -> f64 {
        if self.b_size == 0 {
            0.0
        } else {
            self.matched as f64 / self.b_size as f64
        }
    }

    /// The similarity as a percentage in `[0, 100]`.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

impl std::fmt::Display for Similarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}%", self.percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_percent() {
        let s = Similarity::new(2, 5);
        assert!((s.ratio() - 0.4).abs() < 1e-12);
        assert!((s.percent() - 40.0).abs() < 1e-12);
        assert_eq!(s.to_string(), "40.00%");
    }

    #[test]
    fn empty_b_is_zero() {
        let s = Similarity::new(0, 0);
        assert_eq!(s.ratio(), 0.0);
        assert_eq!(s.percent(), 0.0);
    }

    #[test]
    fn full_similarity() {
        let s = Similarity::new(3, 3);
        assert_eq!(s.percent(), 100.0);
    }
}
