//! Communities and user vectors.
//!
//! A community (a *brand page* in the paper's terminology) is a set of
//! subscribers, each represented by a d-dimensional vector of aggregate
//! preference counters — dimension `i` counts the user's interactions
//! (likes, views, purchases, ...) with content of category `i`.
//!
//! Storage is a single flat `Vec<u32>` with stride `d` (structure of
//! arrays): joins stream over millions of vectors and per-user allocation
//! or pointer chasing would dominate otherwise.

use crate::error::CsjError;

/// Opaque external identifier of a user (e.g. a social-network account id).
pub type UserId = u64;

/// A community of d-dimensional user profile vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Community {
    name: String,
    d: usize,
    ids: Vec<UserId>,
    data: Vec<u32>,
}

impl Community {
    /// Create an empty community named `name` with dimensionality `d`.
    ///
    /// # Panics
    /// Panics if `d == 0`; a zero-dimensional profile is meaningless and
    /// would make every user match every other.
    pub fn new(name: impl Into<String>, d: usize) -> Self {
        assert!(d > 0, "community dimensionality must be positive");
        Self {
            name: name.into(),
            d,
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Create an empty community with room for `capacity` users.
    pub fn with_capacity(name: impl Into<String>, d: usize, capacity: usize) -> Self {
        assert!(d > 0, "community dimensionality must be positive");
        Self {
            name: name.into(),
            d,
            ids: Vec::with_capacity(capacity),
            data: Vec::with_capacity(capacity * d),
        }
    }

    /// Add a user with its profile vector.
    ///
    /// Duplicate user ids are *not* checked here (the check is `O(n)`);
    /// use [`Community::push_unique`] when the input is untrusted.
    pub fn push(&mut self, id: UserId, vector: &[u32]) -> Result<(), CsjError> {
        if vector.len() != self.d {
            return Err(CsjError::VectorLength {
                expected: self.d,
                got: vector.len(),
            });
        }
        self.ids.push(id);
        self.data.extend_from_slice(vector);
        Ok(())
    }

    /// Add a user, rejecting duplicate ids (`O(n)` scan — intended for
    /// small, untrusted inputs).
    pub fn push_unique(&mut self, id: UserId, vector: &[u32]) -> Result<(), CsjError> {
        if self.ids.contains(&id) {
            return Err(CsjError::DuplicateUser(id));
        }
        self.push(id, vector)
    }

    /// Build a community from `(id, vector)` rows.
    pub fn from_rows<I, V>(name: impl Into<String>, d: usize, rows: I) -> Result<Self, CsjError>
    where
        I: IntoIterator<Item = (UserId, V)>,
        V: AsRef<[u32]>,
    {
        let mut c = Community::new(name, d);
        for (id, v) in rows {
            c.push(id, v.as_ref())?;
        }
        Ok(c)
    }

    /// Community name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dimensionality of the profiles.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the community has no subscribers.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Profile vector of the user at index `i`.
    #[inline]
    pub fn vector(&self, i: usize) -> &[u32] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// External id of the user at index `i`.
    #[inline]
    pub fn user_id(&self, i: usize) -> UserId {
        self.ids[i]
    }

    /// All user ids, in insertion order.
    pub fn user_ids(&self) -> &[UserId] {
        &self.ids
    }

    /// The flat counter storage (row-major, stride [`Community::d`]).
    pub fn raw_data(&self) -> &[u32] {
        &self.data
    }

    /// Iterate `(user_id, vector)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &[u32])> + '_ {
        self.ids.iter().copied().zip(self.data.chunks_exact(self.d))
    }

    /// Find the index of a user by external id (`O(n)` scan).
    pub fn find_user(&self, id: UserId) -> Option<usize> {
        self.ids.iter().position(|&u| u == id)
    }

    /// Overwrite the profile vector of the user at index `i` (counters
    /// grow continuously in a live system; see `csj-engine`).
    pub fn set_vector(&mut self, i: usize, vector: &[u32]) -> Result<(), CsjError> {
        if vector.len() != self.d {
            return Err(CsjError::VectorLength {
                expected: self.d,
                got: vector.len(),
            });
        }
        self.data[i * self.d..(i + 1) * self.d].copy_from_slice(vector);
        Ok(())
    }

    /// Remove the user at index `i` in O(d) by swapping in the last user
    /// (order is not meaningful; the join algorithms sort internally).
    pub fn swap_remove_user(&mut self, i: usize) -> UserId {
        let id = self.ids.swap_remove(i);
        let n = self.ids.len(); // length after removal == index of last row
        if i < n {
            let (head, tail) = self.data.split_at_mut(n * self.d);
            head[i * self.d..(i + 1) * self.d].copy_from_slice(&tail[..self.d]);
        }
        self.data.truncate(n * self.d);
        id
    }

    /// Largest counter value in the community (0 if empty).
    pub fn max_counter(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Sum of counters per dimension (the community's aggregate footprint,
    /// used by dataset statistics and Table 1 of the paper).
    pub fn dimension_totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.d];
        for row in self.data.chunks_exact(self.d) {
            for (t, &v) in totals.iter_mut().zip(row) {
                *t += v as u64;
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut c = Community::new("Nike", 3);
        c.push(7, &[1, 2, 3]).unwrap();
        c.push(9, &[4, 5, 6]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.d(), 3);
        assert_eq!(c.vector(0), &[1, 2, 3]);
        assert_eq!(c.vector(1), &[4, 5, 6]);
        assert_eq!(c.user_id(1), 9);
        assert_eq!(c.name(), "Nike");
    }

    #[test]
    fn rejects_wrong_vector_length() {
        let mut c = Community::new("X", 3);
        assert_eq!(
            c.push(1, &[1, 2]),
            Err(CsjError::VectorLength {
                expected: 3,
                got: 2
            })
        );
        assert!(c.is_empty());
    }

    #[test]
    fn push_unique_detects_duplicates() {
        let mut c = Community::new("X", 1);
        c.push_unique(1, &[0]).unwrap();
        assert_eq!(c.push_unique(1, &[5]), Err(CsjError::DuplicateUser(1)));
    }

    #[test]
    fn from_rows_roundtrip() {
        let c = Community::from_rows("Y", 2, vec![(1u64, [1u32, 2]), (2, [3, 4])]).unwrap();
        assert_eq!(c.len(), 2);
        let rows: Vec<_> = c.iter().collect();
        assert_eq!(rows[0], (1, &[1u32, 2][..]));
        assert_eq!(rows[1], (2, &[3u32, 4][..]));
    }

    #[test]
    fn stats_helpers() {
        let c = Community::from_rows("Z", 2, vec![(1u64, [1u32, 10]), (2, [3, 20])]).unwrap();
        assert_eq!(c.max_counter(), 20);
        assert_eq!(c.dimension_totals(), vec![4, 30]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimensions_rejected() {
        let _ = Community::new("bad", 0);
    }

    #[test]
    fn empty_community_stats() {
        let c = Community::new("E", 4);
        assert_eq!(c.max_counter(), 0);
        assert_eq!(c.dimension_totals(), vec![0, 0, 0, 0]);
    }
}

#[cfg(test)]
mod mutation_tests {
    use super::*;

    fn sample() -> Community {
        let mut c = Community::new("M", 2);
        c.push(1, &[1, 1]).unwrap();
        c.push(2, &[2, 2]).unwrap();
        c.push(3, &[3, 3]).unwrap();
        c
    }

    #[test]
    fn find_and_set_vector() {
        let mut c = sample();
        assert_eq!(c.find_user(2), Some(1));
        assert_eq!(c.find_user(9), None);
        c.set_vector(1, &[7, 8]).unwrap();
        assert_eq!(c.vector(1), &[7, 8]);
        assert!(c.set_vector(1, &[7]).is_err());
    }

    #[test]
    fn swap_remove_middle() {
        let mut c = sample();
        assert_eq!(c.swap_remove_user(0), 1);
        assert_eq!(c.len(), 2);
        // Last user (id 3) swapped into slot 0.
        assert_eq!(c.user_id(0), 3);
        assert_eq!(c.vector(0), &[3, 3]);
        assert_eq!(c.user_id(1), 2);
    }

    #[test]
    fn swap_remove_last() {
        let mut c = sample();
        assert_eq!(c.swap_remove_user(2), 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.user_id(1), 2);
        assert_eq!(c.raw_data().len(), 4);
    }

    #[test]
    fn swap_remove_down_to_empty() {
        let mut c = sample();
        c.swap_remove_user(0);
        c.swap_remove_user(0);
        c.swap_remove_user(0);
        assert!(c.is_empty());
        assert!(c.raw_data().is_empty());
    }
}
