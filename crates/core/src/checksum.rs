//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! shared by the durable storage formats: the binary corpus footer
//! (`csj-data`), the write-ahead log frames and snapshot footers
//! (`csj-durability`).
//!
//! Hand-rolled rather than pulled from a crate so the whole workspace
//! stays dependency-light; the table-driven form processes a byte per
//! lookup, which is far faster than any of the files it guards need.
//! The parameters match the ubiquitous zlib/PNG/gzip CRC-32, so foreign
//! tooling (`python -c "import zlib; zlib.crc32(...)"`) can re-verify
//! our files.

/// The 256-entry lookup table for the reflected polynomial, built at
/// compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32 hasher, for streaming writers that cannot hold the
/// whole payload in memory.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (empty input hashes to 0).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far. Does not consume the
    /// hasher: callers may peek mid-stream (the WAL does, per frame).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"split me across several updates";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn finish_is_non_destructive() {
        let mut h = Crc32::new();
        h.update(b"abc");
        let mid = h.finish();
        assert_eq!(mid, h.finish());
        h.update(b"def");
        assert_eq!(h.finish(), crc32(b"abcdef"));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[17] = 0xA5;
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
