//! Ground-truth oracle for tests and audits.
//!
//! Computes the CSJ answer the slow-but-sure way: enumerate every
//! admissible pair with the strict integer per-dimension condition, then
//! run a *true maximum* bipartite matching (Hopcroft–Karp). Every exact
//! method's matched-pair count can be compared against this; the gap, if
//! any, is attributable to the CSF heuristic (quantified by the
//! `ablation_matcher` bench).

use csj_matching::{hopcroft_karp, MatchGraph};

use crate::community::Community;
use crate::similarity::Similarity;
use crate::vectors_match;

/// The ground-truth result.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Every admissible `(b_index, a_index)` pair.
    pub candidate_pairs: Vec<(u32, u32)>,
    /// A maximum one-to-one matching over those pairs.
    pub maximum_matching: Vec<(u32, u32)>,
    /// The true CSJ similarity.
    pub similarity: Similarity,
}

/// Compute the exact CSJ ground truth by brute force (O(|B|·|A|·d) plus
/// matching). Intended for tests and audits, not production joins.
///
/// ```
/// use csj_core::{verify::ground_truth, Community};
///
/// let b = Community::from_rows("B", 1, vec![(1u64, vec![5u32])]).unwrap();
/// let a = Community::from_rows("A", 1, vec![(9u64, vec![6u32])]).unwrap();
/// assert_eq!(ground_truth(&b, &a, 1).similarity.percent(), 100.0);
/// assert_eq!(ground_truth(&b, &a, 0).similarity.percent(), 0.0);
/// ```
pub fn ground_truth(b: &Community, a: &Community, eps: u32) -> GroundTruth {
    assert_eq!(b.d(), a.d(), "communities must share dimensionality");
    let mut edges = Vec::new();
    for i in 0..b.len() {
        let bv = b.vector(i);
        for j in 0..a.len() {
            if vectors_match(bv, a.vector(j), eps) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    let graph = MatchGraph::from_edges(b.len() as u32, a.len() as u32, edges.clone());
    let matching = hopcroft_karp(&graph).into_pairs();
    let similarity = Similarity::new(matching.len(), b.len());
    GroundTruth {
        candidate_pairs: edges,
        maximum_matching: matching,
        similarity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{run, CsjMethod, CsjOptions};

    fn community(name: &str, rows: &[Vec<u32>]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    #[test]
    fn section3_ground_truth() {
        let b = community("B", &[vec![3, 4, 2], vec![2, 2, 3]]);
        let a = community("A", &[vec![2, 3, 5], vec![2, 3, 1], vec![3, 3, 3]]);
        let gt = ground_truth(&b, &a, 1);
        assert_eq!(gt.candidate_pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(gt.maximum_matching.len(), 2);
        assert_eq!(gt.similarity.percent(), 100.0);
    }

    #[test]
    fn every_method_is_bounded_by_ground_truth() {
        let mut state = 0xABCD_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..50)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..60)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let gt = ground_truth(&b, &a, 1);
        let opts = CsjOptions::new(1).with_parts(2);
        for m in CsjMethod::ALL {
            let out = run(m, &b, &a, &opts).unwrap();
            assert!(
                out.similarity.matched <= gt.similarity.matched,
                "{m} exceeded the maximum matching"
            );
            if m.is_exact() && m != CsjMethod::ApSuperEgo {
                // Exact methods with the CSF matcher may fall short of the
                // true maximum only through CSF's heuristic nature; with
                // Hopcroft-Karp they must equal it.
                let hk = CsjOptions::new(1)
                    .with_parts(2)
                    .with_matcher(csj_matching::MatcherKind::HopcroftKarp);
                let out_hk = run(m, &b, &a, &hk).unwrap();
                if m != CsjMethod::ExSuperEgo {
                    assert_eq!(
                        out_hk.similarity.matched, gt.similarity.matched,
                        "{m} with Hopcroft-Karp must reach the maximum"
                    );
                }
            }
        }
    }
}
