//! Shard layout and coverage accounting for sharded multi-pair queries.
//!
//! The execution layer (csj-shard + the engine) partitions a registry
//! into *shards* so one slow or poisoned community can only hurt its own
//! shard. Two pieces live here, in core, because both the engine and the
//! service reason about them:
//!
//! * [`plan_shards`] — the skew-aware layout. Placement is driven by
//!   **part-sum mass** (a community's aggregate counter footprint plus
//!   its row count), not by community count, so a few giant communities
//!   don't land on the same shard and serialize the tail (the LSF-Join
//!   observation: under skew, balanced *cardinality* is not balanced
//!   *work*).
//! * [`Coverage`] — the typed completeness report attached to partial
//!   results: how many shards resolved each way and how many work units
//!   (candidate communities, or candidate pairs for all-pairs sweeps)
//!   were actually screened. Shard failures degrade a query's
//!   *completeness*, never its correctness — `Coverage` is how callers
//!   see exactly how much completeness was lost.

use crate::community::Community;

/// Completeness report of a sharded multi-pair query. Attached to
/// `Partial` results, surfaced in `csj explain`, spans, and the
/// `csj_shard_*` metrics.
///
/// The shard counts satisfy the fate identity
/// `dispatched == completed + failed + cancelled` (checked by
/// [`Coverage::identity_holds`] and lint-checked in the invariant
/// suite, like the service's four fates). `hedged` counts shards whose
/// winning result came from a hedged re-dispatch; hedged shards are a
/// *subset* of `completed`, not a fourth fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Coverage {
    /// Shard tasks handed to the executor.
    pub dispatched: u64,
    /// Shards that returned a usable value (including hedge winners).
    pub completed: u64,
    /// Shards lost to a panic, worker death, or their deadline slice.
    pub failed: u64,
    /// Shards never started because the query was cancelled first.
    pub cancelled: u64,
    /// Completed shards whose result came from the hedge attempt.
    pub hedged: u64,
    /// Work units (candidate communities, or pairs for all-pairs
    /// sweeps) actually screened across surviving shards.
    pub units_screened: u64,
    /// Work units never screened: members of failed/cancelled shards
    /// plus units a surviving shard skipped under budget pressure.
    pub units_skipped: u64,
}

impl Coverage {
    /// The shard-fate identity: every dispatched shard resolved to
    /// exactly one of completed / failed / cancelled.
    pub fn identity_holds(&self) -> bool {
        self.dispatched == self.completed + self.failed + self.cancelled
    }

    /// Whether any completeness was lost (a shard failed or was
    /// cancelled, or some unit went unscreened).
    pub fn is_partial(&self) -> bool {
        self.failed > 0 || self.cancelled > 0 || self.units_skipped > 0
    }

    /// Fraction of work units screened, in `[0, 1]`; 1.0 when there was
    /// nothing to do.
    pub fn unit_fraction(&self) -> f64 {
        let total = self.units_screened + self.units_skipped;
        if total == 0 {
            1.0
        } else {
            self.units_screened as f64 / total as f64
        }
    }
}

impl std::fmt::Display for Coverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shards {}/{} completed ({} hedged, {} failed, {} cancelled), \
             units {}/{} screened",
            self.completed,
            self.dispatched,
            self.hedged,
            self.failed,
            self.cancelled,
            self.units_screened,
            self.units_screened + self.units_skipped,
        )
    }
}

/// The placement mass of one community: its part-sum footprint (sum of
/// all counters) plus its row count, plus one so even an all-zero
/// community carries weight. Join cost grows with both the row count
/// and the counter magnitudes that defeat MIN/MAX pruning, so this is
/// the skew signal the layout balances.
pub fn community_mass(c: &Community) -> u64 {
    let part_sum: u64 = c.dimension_totals().iter().sum();
    part_sum + c.len() as u64 + 1
}

/// A planned shard layout: `shards[s]` holds the *original indices* of
/// the items placed on shard `s`, each sorted ascending so every shard
/// processes its members in canonical input order (this is what makes
/// sharded results independent of shard count and dispatch order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Member indices per shard, each ascending.
    pub shards: Vec<Vec<usize>>,
    /// Total placed mass per shard (same length as `shards`).
    pub masses: Vec<u64>,
}

impl ShardLayout {
    /// Largest shard mass divided by the ideal (total/shards) — 1.0 is
    /// perfect balance. Diagnostic only.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.masses.iter().sum();
        let max = self.masses.iter().copied().max().unwrap_or(0);
        if total == 0 || self.masses.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / self.masses.len() as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max as f64 / ideal
        }
    }
}

/// Plan a size-balanced, skew-aware layout of `masses.len()` items onto
/// at most `shard_count` shards with the greedy LPT heuristic: place
/// heaviest-first onto the currently lightest shard. LPT is within 4/3
/// of the optimal makespan, which is all the balance the executor needs.
///
/// Deterministic: ties in mass break on the lower original index, ties
/// in shard load break on the lower shard id. Empty shards are dropped,
/// so every returned shard has at least one member (the returned layout
/// may have fewer shards than requested).
pub fn plan_shards(masses: &[u64], shard_count: usize) -> ShardLayout {
    let shard_count = shard_count.max(1).min(masses.len().max(1));
    let mut order: Vec<usize> = (0..masses.len()).collect();
    // Heaviest first; equal masses keep input order (sort is stable).
    order.sort_by(|&i, &j| masses[j].cmp(&masses[i]));
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    let mut loads = vec![0u64; shard_count];
    for idx in order {
        let lightest = (0..shard_count)
            .min_by_key(|&s| (loads[s], s))
            .expect("at least one shard");
        shards[lightest].push(idx);
        loads[lightest] += masses[idx];
    }
    let mut kept: Vec<(Vec<usize>, u64)> = shards
        .into_iter()
        .zip(loads)
        .filter(|(members, _)| !members.is_empty())
        .collect();
    for (members, _) in &mut kept {
        members.sort_unstable();
    }
    let (shards, masses) = kept.into_iter().unzip();
    ShardLayout { shards, masses }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_partial_flags() {
        let full = Coverage {
            dispatched: 4,
            completed: 4,
            units_screened: 40,
            ..Coverage::default()
        };
        assert!(full.identity_holds());
        assert!(!full.is_partial());
        assert_eq!(full.unit_fraction(), 1.0);

        let lossy = Coverage {
            dispatched: 4,
            completed: 2,
            failed: 1,
            cancelled: 1,
            hedged: 1,
            units_screened: 30,
            units_skipped: 10,
        };
        assert!(lossy.identity_holds());
        assert!(lossy.is_partial());
        assert!((lossy.unit_fraction() - 0.75).abs() < 1e-12);

        let broken = Coverage {
            dispatched: 4,
            completed: 2,
            ..Coverage::default()
        };
        assert!(!broken.identity_holds());
    }

    #[test]
    fn display_is_compact() {
        let c = Coverage {
            dispatched: 4,
            completed: 3,
            failed: 1,
            hedged: 1,
            units_screened: 9,
            units_skipped: 3,
            ..Coverage::default()
        };
        let s = c.to_string();
        assert!(s.contains("3/4 completed"), "got: {s}");
        assert!(s.contains("9/12 screened"), "got: {s}");
    }

    #[test]
    fn mass_weights_counters_and_rows() {
        let mut heavy = Community::new("heavy", 2);
        heavy.push(1, &[100, 100]).unwrap();
        let mut wide = Community::new("wide", 2);
        for u in 0..10u64 {
            wide.push(u, &[1, 1]).unwrap();
        }
        assert_eq!(community_mass(&heavy), 200 + 1 + 1);
        assert_eq!(community_mass(&wide), 20 + 10 + 1);
        // An empty community still has nonzero mass.
        assert_eq!(community_mass(&Community::new("empty", 2)), 1);
    }

    #[test]
    fn giants_are_spread_apart() {
        // Two giants among eight midgets on four shards: LPT must not
        // co-locate the giants.
        let masses = [1000, 1000, 10, 10, 10, 10, 10, 10, 10, 10];
        let layout = plan_shards(&masses, 4);
        assert_eq!(layout.shards.len(), 4);
        let giant_shards: Vec<usize> = layout
            .shards
            .iter()
            .enumerate()
            .filter(|(_, m)| m.contains(&0) || m.contains(&1))
            .map(|(s, _)| s)
            .collect();
        assert_eq!(giant_shards.len(), 2, "giants on distinct shards");
        // Every item placed exactly once.
        let mut seen: Vec<usize> = layout.shards.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..masses.len()).collect::<Vec<_>>());
        // Mass-balanced, not count-balanced: giant shards hold 1 item.
        for s in &giant_shards {
            assert_eq!(layout.shards[*s].len(), 1);
        }
        // LPT is within 4/3 of the optimal makespan, which is bounded
        // below by both the heaviest item and the ideal average.
        let total: u64 = masses.iter().sum();
        let heaviest = *masses.iter().max().unwrap();
        let optimum = heaviest.max(total.div_ceil(4)) as f64;
        let max_load = *layout.masses.iter().max().unwrap() as f64;
        assert!(max_load <= optimum * 4.0 / 3.0 + 1e-9);
    }

    #[test]
    fn layout_is_deterministic_and_canonical() {
        let masses = [5, 5, 5, 5, 5, 5];
        let a = plan_shards(&masses, 3);
        let b = plan_shards(&masses, 3);
        assert_eq!(a, b);
        for members in &a.shards {
            let mut sorted = members.clone();
            sorted.sort_unstable();
            assert_eq!(*members, sorted, "members ascend");
        }
    }

    #[test]
    fn degenerate_shapes() {
        // More shards than items: empties dropped.
        let layout = plan_shards(&[7, 3], 8);
        assert_eq!(layout.shards.len(), 2);
        // Zero items: one empty layout, no panic.
        let empty = plan_shards(&[], 4);
        assert!(empty.shards.is_empty());
        assert_eq!(empty.imbalance(), 1.0);
        // One shard takes everything in input order.
        let one = plan_shards(&[1, 2, 3], 1);
        assert_eq!(one.shards, vec![vec![0, 1, 2]]);
        assert_eq!(one.masses, vec![6]);
    }
}
