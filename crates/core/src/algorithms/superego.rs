//! The SuperEGO substrate (Section 5.2): the state-of-the-art
//! epsilon-join comparator, adapted to answer CSJ.
//!
//! Adaptation, following the paper:
//!
//! 1. All counters are **normalised to `[0,1]^d`** ("since else the
//!    algorithm does not work") — a lossy `u32 -> f32` conversion for
//!    skewed datasets, which is the documented source of SuperEGO's
//!    accuracy deficit on VK-like data.
//! 2. The epsilon parameter becomes `eps / max_value` per dimension (the
//!    paper quotes the total budget as `27 * (1/152532)` for VK — i.e.
//!    `d` per-dimension slices of `eps/max_value`). The join condition is
//!    evaluated **per dimension** on the normalised floats so that it
//!    "correctly applies for CSJ"; the literal aggregate-L1 reading is
//!    available behind [`SuperEgoConfig::l1_predicate`] as an ablation
//!    (it strictly overestimates CSJ similarity).
//! 3. The recursion's leaves stream through the kernel's `drive_ego`:
//!    **Ap-SuperEGO** = SuperEGO × [`GreedySink`] (the greedy consuming
//!    loop of Ap-Baseline), **Ex-SuperEGO** = SuperEGO × [`CollectSink`]
//!    (all leaf pairs, one matcher call at the end).
//!
//! The recursion, EGO ordering, EGO-strategy pruning and Super-EGO
//! dimension reordering live in the [`csj_ego`] substrate crate.
//!
//! [`SuperEgoConfig::l1_predicate`]: crate::algorithms::SuperEgoConfig

use csj_ego::{
    collect_pairs_parallel, dimension_order, normalize_counters, permute_dimensions, EgoStats,
    JoinPredicate, PointSet, SuperEgoParams,
};

use crate::algorithms::kernel::{
    drive_ego, CollectSink, DriveCtx, GreedySink, Judgement, PairSink,
};
use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;

/// Normalise, optionally reorder dimensions, and EGO-sort both
/// communities; derive the per-dimension predicate.
fn prepare(
    b: &Community,
    a: &Community,
    opts: &CsjOptions,
) -> (PointSet<f32>, PointSet<f32>, JoinPredicate<f32>) {
    let d = b.d();
    let max_value = opts
        .superego
        .max_value
        .unwrap_or_else(|| b.max_counter().max(a.max_counter()))
        .max(1);
    let eps_norm = (opts.eps as f64 / max_value as f64) as f32;
    // The grid needs a positive cell width even for eps = 0 (equality
    // joins); any tiny width keeps the pruning sound.
    let width = if eps_norm > 0.0 { eps_norm } else { 1.0e-6 };

    let mut data_b = normalize_counters(b.raw_data(), max_value);
    let mut data_a = normalize_counters(a.raw_data(), max_value);
    if opts.superego.reorder {
        let order = dimension_order(d, &data_b, &data_a, width, 10_000);
        data_b = permute_dimensions(&data_b, d, &order);
        data_a = permute_dimensions(&data_a, d, &order);
    }
    let ps_b = PointSet::build(d, width, data_b, None);
    let ps_a = PointSet::build(d, width, data_a, None);
    let pred = if opts.superego.l1_predicate {
        JoinPredicate::L1 {
            eps_sum: d as f64 * eps_norm as f64,
        }
    } else {
        JoinPredicate::PerDim { eps: eps_norm }
    };
    (ps_b, ps_a, pred)
}

/// Approximate SuperEGO: the recursion with the greedy sink at the
/// leaves.
pub fn ap_superego(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let (ps_b, ps_a, pred) = prepare(b, a, opts);
    let params = SuperEgoParams { t: opts.superego.t };
    let mut out = RawJoin::default();
    let setup = setup.elapsed();
    let mut stats = EgoStats::default();
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    let mut sink = GreedySink::new(ps_b.len(), ps_a.len());
    drive_ego(
        &ps_b,
        &ps_a,
        params,
        &mut stats,
        &mut |i, j| {
            if pred.matches(ps_b.point(i), ps_a.point(j)) {
                Judgement::Match
            } else {
                Judgement::NoMatch
            }
        },
        &mut ctx,
        &mut sink,
    );
    ctx.cancelled |= opts.is_cancelled();
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.timings.setup = setup;
    out.ego = Some(stats);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

/// Exact SuperEGO: the recursion collecting all leaf pairs, then one
/// matcher call (the paper's CSF by default).
pub fn ex_superego(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let (ps_b, ps_a, pred) = prepare(b, a, opts);
    let params = SuperEgoParams { t: opts.superego.t };
    let mut out = RawJoin::default();
    let setup = setup.elapsed();
    let mut stats = EgoStats::default();
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    // The leaf enumeration cannot run the matcher after a trip: skip it
    // and return an empty (trivially valid) matching so cancellation
    // stays prompt.
    let mut sink = CollectSink::whole(b.len(), a.len(), opts.matcher, false);
    if opts.superego.threads > 1 {
        // The parallel enumeration lives in csj_ego and streams edges
        // from worker threads; per-row kernel telemetry is unavailable
        // there, so only the event counters are reconstructed.
        let edges = collect_pairs_parallel(
            &ps_b,
            &ps_a,
            pred,
            params,
            &mut stats,
            opts.superego.threads,
        );
        ctx.telemetry.events.matches = edges.len() as u64;
        ctx.telemetry.events.no_match = stats.pairs_checked - edges.len() as u64;
        sink.absorb_edges(&edges);
    } else {
        drive_ego(
            &ps_b,
            &ps_a,
            params,
            &mut stats,
            &mut |i, j| {
                if pred.matches(ps_b.point(i), ps_a.point(j)) {
                    Judgement::Match
                } else {
                    Judgement::NoMatch
                }
            },
            &mut ctx,
            &mut sink,
        );
    }
    ctx.cancelled |= opts.is_cancelled();
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.timings.setup = setup;
    out.ego = Some(stats);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline::ex_baseline;
    use crate::algorithms::CsjOptions;

    fn community(name: &str, rows: &[Vec<u32>]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    #[test]
    fn section3_example_shows_normalisation_loss() {
        // Every candidate pair of the Section 3 example sits exactly on
        // the epsilon boundary (some |b_i - a_i| == eps), which is where
        // the float conversion may lose pairs — the accuracy deficit the
        // paper reports for SuperEGO on VK. The result must therefore be
        // a valid one-to-one matching bounded by the exact answer (2),
        // but needn't reach it.
        let b = community("B", &[vec![3, 4, 2], vec![2, 2, 3]]);
        let a = community("A", &[vec![2, 3, 5], vec![2, 3, 1], vec![3, 3, 3]]);
        let opts = CsjOptions::new(1).with_parts(3);
        let ex = ex_superego(&b, &a, &opts);
        assert!(ex.pairs.len() <= 2);
        let ap = ap_superego(&b, &a, &opts);
        assert!(ap.pairs.len() <= ex.pairs.len().max(ap.pairs.len()));
        for &(x, y) in ex.pairs.iter().chain(ap.pairs.iter()) {
            // Any pair it does report must be a true per-dim match.
            assert!(crate::vectors_match(
                b.vector(x as usize),
                a.vector(y as usize),
                1
            ));
        }
    }

    #[test]
    fn exact_agrees_with_baseline_under_exact_normalisation() {
        // With a power-of-two normalisation divisor and counters below
        // 2^24, the u32 -> f32 conversion is exact, so Ex-SuperEGO must
        // equal Ex-Baseline — the regime of the paper's Synthetic dataset
        // (Tables 8 and 10, where all exact methods agree).
        let mut rng = lcg(31);
        let d = 5;
        let rows_b: Vec<Vec<u32>> = (0..70)
            .map(|_| (0..d).map(|_| rng() % 16).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| rng() % 16).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        for eps in [0u32, 1, 2, 4] {
            let mut opts = CsjOptions::new(eps).with_parts(2);
            opts.superego.t = 8;
            opts.superego.max_value = Some(16); // power of two -> exact
            let ego = ex_superego(&b, &a, &opts);
            let base = ex_baseline(&b, &a, &opts);
            assert_eq!(ego.pairs.len(), base.pairs.len(), "eps={eps}");
        }
    }

    #[test]
    fn loss_hits_only_boundary_pairs() {
        // Normalisation loss can only strike pairs with a dimension at
        // exactly |b_i - a_i| == eps; interior pairs (all diffs < eps,
        // e.g. exact duplicates) always survive. The paper's small VK
        // deficits correspond to datasets where most matched profiles are
        // near-duplicates — the property the VK-like generator provides.
        let _d = 3;
        let mut rows_b: Vec<Vec<u32>> = Vec::new();
        let mut rows_a: Vec<Vec<u32>> = Vec::new();
        // 60 exact-duplicate pairs (loss-proof).
        for i in 0..60u32 {
            rows_b.push(vec![i * 13 % 997, i * 29 % 997, i * 7 % 997]);
            rows_a.push(rows_b[i as usize].clone());
        }
        // 10 boundary pairs (loss-prone: one dim differs by exactly eps).
        for i in 0..10u32 {
            let base = vec![10_000 + i * 31, 20_000 + i * 17, 30_000 + i * 11];
            let mut shifted = base.clone();
            shifted[(i % 3) as usize] += 1;
            rows_b.push(base);
            rows_a.push(shifted);
        }
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let mut opts = CsjOptions::new(1).with_parts(2);
        opts.superego.t = 8;
        opts.superego.max_value = Some(152_532); // the paper's VK maximum
        let ego = ex_superego(&b, &a, &opts);
        let base = ex_baseline(&b, &a, &opts);
        assert_eq!(base.pairs.len(), 70);
        assert!(ego.pairs.len() >= 60, "interior pairs must all survive");
        assert!(ego.pairs.len() <= 70);
    }

    #[test]
    fn parallel_exact_agrees_with_serial() {
        let mut rng = lcg(77);
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..200)
            .map(|_| (0..d).map(|_| rng() % 20).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..250)
            .map(|_| (0..d).map(|_| rng() % 20).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let mut serial_opts = CsjOptions::new(2).with_parts(2);
        serial_opts.superego.t = 16;
        let mut par_opts = serial_opts.clone();
        par_opts.superego.threads = 4;
        let s = ex_superego(&b, &a, &serial_opts);
        let p = ex_superego(&b, &a, &par_opts);
        assert_eq!(s.pairs.len(), p.pairs.len());
        // Both routes must agree on the event counters too.
        assert_eq!(s.telemetry.events, p.telemetry.events);
    }

    #[test]
    fn l1_ablation_overestimates() {
        // The aggregate-L1 predicate admits a superset of pairs, so its
        // "similarity" is >= the per-dimension similarity.
        let mut rng = lcg(13);
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..60)
            .map(|_| (0..d).map(|_| rng() % 12).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..80)
            .map(|_| (0..d).map(|_| rng() % 12).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let mut per = CsjOptions::new(1).with_parts(2);
        per.superego.t = 8;
        let mut l1 = per.clone();
        l1.superego.l1_predicate = true;
        let per_out = ex_superego(&b, &a, &per);
        let l1_out = ex_superego(&b, &a, &l1);
        assert!(l1_out.pairs.len() >= per_out.pairs.len());
    }

    #[test]
    fn reorder_toggle_preserves_result() {
        let mut rng = lcg(55);
        let d = 6;
        let rows_b: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| rng() % 25).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..120)
            .map(|_| (0..d).map(|_| rng() % 25).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let mut with = CsjOptions::new(2).with_parts(3);
        with.superego.t = 8;
        let mut without = with.clone();
        without.superego.reorder = false;
        assert_eq!(
            ex_superego(&b, &a, &with).pairs.len(),
            ex_superego(&b, &a, &without).pairs.len()
        );
    }

    #[test]
    fn records_ego_stats() {
        let b = community("B", &[vec![1, 1]]);
        let a = community("A", &[vec![1, 1]]);
        let out = ex_superego(&b, &a, &CsjOptions::new(1).with_parts(2));
        let stats = out.ego.expect("superego must report stats");
        assert!(stats.calls >= 1);
    }

    #[test]
    fn eps_zero_equality_join() {
        let b = community("B", &[vec![5, 7]]);
        let a = community("A", &[vec![5, 7], vec![5, 8]]);
        let out = ex_superego(&b, &a, &CsjOptions::new(0).with_parts(2));
        assert_eq!(out.pairs, vec![(0, 0)]);
    }
}
