//! The MinMax methods (Section 4): the paper's main contribution.
//!
//! Both algorithms first build the encoded buffers `Encd_B` (ascending
//! `encoded_ID`) and `Encd_A` (ascending `encoded_Min`) and then run a
//! pruned double loop:
//!
//! * **MIN PRUNE** — `eB.encd_ID < eA.encd_Min`: since `Encd_A` is sorted
//!   by `encd_Min`, the current `b` cannot match this or any later `a`;
//!   move to the next `b`.
//! * **MAX PRUNE** — `eB.encd_ID > eA.encd_Max` while the `skip` flag is
//!   still set: since `Encd_B` is sorted by `encd_ID`, this `a` can never
//!   match a later `b` either, so the global `offset` advances past it.
//!   (`skip` is deactivated by the first comparison of the scan — even a
//!   part/range comparison — because the offset may only swallow a
//!   *contiguous* prefix.)
//! * **NO OVERLAP** — some part sum of `b` falls outside the matching
//!   range of `a`: skip the d-dimensional comparison.
//! * **NO MATCH / MATCH** — result of the full d-dimensional comparison.
//!
//! **Ap-MinMax** consumes both users at the first MATCH. **Ex-MinMax**
//! keeps scanning to collect *every* match of the current `b`, maintains
//! `maxV` (the largest `encoded_Max` among matched `a`s of the running
//! segment) and, whenever the next `b`'s `encoded_ID` exceeds `maxV`,
//! flushes the segment through the one-to-one matcher (CSF by default) —
//! safe because no future `b` can reach any matched `a` of the segment
//! (their `encoded_Max` values are all `<= maxV`), and no past `b` can
//! reach any future `a` (they were MIN-pruned). Segment connected
//! components therefore never straddle a flush boundary, which is also
//! property-tested against whole-graph matching.
//!
//! The pairing loops are written against an [`MinMaxOracle`] so the unit
//! tests can replay the exact executions of Figures 2 and 3 of the paper
//! (see `figure2_trace` / `figure3_trace`).

use csj_matching::{run_matcher, MatchGraph, MatcherKind};

use crate::algorithms::{CsjOptions, RawJoin};
use crate::cancel::CancelToken;
use crate::community::Community;
use crate::encoding::{encode_a, encode_b, EncodedA, EncodedB};
use crate::events::{Event, EventCounters};
use crate::vectors_match;

/// Verdict of the part/range filter plus (when it passes) the full
/// d-dimensional comparison for one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Judgement {
    /// Part sums do not completely overlap the ranges (NO OVERLAP).
    NoOverlap,
    /// Full comparison failed (NO MATCH).
    NoMatch,
    /// Full comparison succeeded (MATCH).
    Match,
}

/// Supplies [`Judgement`]s for candidate pairs whose encoded ID passed the
/// Min/Max window. Production code uses [`RealOracle`]; the figure tests
/// use a scripted table.
pub(crate) trait MinMaxOracle {
    fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement;
}

/// Observes the pairing process; the no-op implementation vanishes at
/// compile time in production paths.
pub(crate) trait TraceSink {
    fn event(&mut self, _ev: Event, _b_pos: usize, _a_pos: usize) {}
    fn flush(&mut self, _edges: &[(u32, u32)]) {}
}

/// Zero-cost silent sink.
pub(crate) struct NoTrace;
impl TraceSink for NoTrace {}

/// The production oracle: part/range filter, then strict per-dimension
/// comparison through the encoded buffers' "real ID" indirection.
pub(crate) struct RealOracle<'x> {
    pub b: &'x Community,
    pub a: &'x Community,
    pub eb: &'x EncodedB,
    pub ea: &'x EncodedA,
    pub eps: u32,
}

impl MinMaxOracle for RealOracle<'_> {
    #[inline]
    fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement {
        if !self.ea.parts_overlap(a_pos, self.eb.parts_of(b_pos)) {
            return Judgement::NoOverlap;
        }
        let bv = self.b.vector(self.eb.user_idx[b_pos] as usize);
        let av = self.a.vector(self.ea.user_idx[a_pos] as usize);
        if vectors_match(bv, av, self.eps) {
            Judgement::Match
        } else {
            Judgement::NoMatch
        }
    }
}

/// The Ap-MinMax pairing loop over pre-encoded buffers. Returns matched
/// `(b_pos, a_pos)` buffer positions. `cancel` is polled once per `b`
/// row; on trip the loop stops and sets `*cancelled`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub(crate) fn ap_minmax_loop<O: MinMaxOracle, T: TraceSink>(
    eb_ids: &[u64],
    ea_mins: &[u64],
    ea_maxs: &[u64],
    oracle: &mut O,
    advance_offset: bool,
    events: &mut EventCounters,
    trace: &mut T,
    cancel: Option<&CancelToken>,
    cancelled: &mut bool,
) -> Vec<(u32, u32)> {
    let na = ea_mins.len();
    let mut consumed = vec![false; na];
    let mut offset = 0usize;
    let mut pairs = Vec::new();

    for (i, &id) in eb_ids.iter().enumerate() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            *cancelled = true;
            break;
        }
        let mut skip = true;
        let mut j = offset;
        while j < na {
            if consumed[j] {
                // A consumed entry can never match again; while the scan
                // is still in the untouched prefix it may be folded into
                // the offset.
                if advance_offset && skip && j == offset {
                    offset += 1;
                }
                j += 1;
                continue;
            }
            if id < ea_mins[j] {
                events.record(Event::MinPrune);
                trace.event(Event::MinPrune, i, j);
                break; // go to next eB
            } else if id <= ea_maxs[j] {
                match oracle.judge(i, j) {
                    Judgement::NoOverlap => {
                        events.record(Event::NoOverlap);
                        trace.event(Event::NoOverlap, i, j);
                    }
                    Judgement::NoMatch => {
                        events.record(Event::NoMatch);
                        trace.event(Event::NoMatch, i, j);
                    }
                    Judgement::Match => {
                        events.record(Event::Match);
                        trace.event(Event::Match, i, j);
                        pairs.push((i as u32, j as u32));
                        consumed[j] = true;
                        break; // approximate: go to next eB
                    }
                }
                skip = false;
                j += 1;
            } else {
                // eB.encd_ID > eA.encd_Max.
                if advance_offset && skip {
                    offset += 1;
                    events.record(Event::MaxPrune);
                    trace.event(Event::MaxPrune, i, j);
                }
                j += 1;
            }
        }
    }
    pairs
}

/// The Ex-MinMax pairing loop: collects every match per `b`, flushing
/// closed segments through `matcher`. Returns the final one-to-one
/// `(b_pos, a_pos)` buffer positions. `cancel` is polled once per `b`
/// row; on trip the already-flushed segments are returned (a valid
/// partial matching) and `*cancelled` is set — edges of the still-open
/// segment are dropped rather than matched so cancellation stays prompt.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub(crate) fn ex_minmax_loop<O: MinMaxOracle, T: TraceSink>(
    eb_ids: &[u64],
    ea_mins: &[u64],
    ea_maxs: &[u64],
    oracle: &mut O,
    matcher: MatcherKind,
    advance_offset: bool,
    events: &mut EventCounters,
    trace: &mut T,
    matcher_time: &mut std::time::Duration,
    cancel: Option<&CancelToken>,
    cancelled: &mut bool,
) -> Vec<(u32, u32)> {
    let na = ea_mins.len();
    let mut flushed = vec![false; na];
    let mut offset = 0usize;
    let mut maxv = 0u64;
    let mut seg_edges: Vec<(u32, u32)> = Vec::new();
    let mut pairs = Vec::new();

    for (i, &id) in eb_ids.iter().enumerate() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            *cancelled = true;
            break;
        }
        let mut skip = true;
        let mut j = offset;
        while j < na {
            if flushed[j] {
                if advance_offset && skip && j == offset {
                    offset += 1;
                }
                j += 1;
                continue;
            }
            if id < ea_mins[j] {
                events.record(Event::MinPrune);
                trace.event(Event::MinPrune, i, j);
                break;
            } else if id <= ea_maxs[j] {
                match oracle.judge(i, j) {
                    Judgement::NoOverlap => {
                        events.record(Event::NoOverlap);
                        trace.event(Event::NoOverlap, i, j);
                    }
                    Judgement::NoMatch => {
                        events.record(Event::NoMatch);
                        trace.event(Event::NoMatch, i, j);
                    }
                    Judgement::Match => {
                        events.record(Event::Match);
                        trace.event(Event::Match, i, j);
                        seg_edges.push((i as u32, j as u32));
                        if ea_maxs[j] > maxv {
                            maxv = ea_maxs[j];
                        }
                    }
                }
                skip = false;
                j += 1;
            } else {
                if advance_offset && skip {
                    offset += 1;
                    events.record(Event::MaxPrune);
                    trace.event(Event::MaxPrune, i, j);
                }
                j += 1;
            }
        }
        // Segment boundary check: the current b is finished; if every
        // future b's encoded ID exceeds maxV, no future b can reach any
        // matched a of the running segment, so it is safe to flush.
        let closes_segment = match eb_ids.get(i + 1) {
            Some(&next_id) => next_id > maxv,
            None => true,
        };
        if closes_segment {
            if !seg_edges.is_empty() {
                trace.flush(&seg_edges);
                let t = std::time::Instant::now();
                flush_segment(&mut seg_edges, &mut flushed, matcher, &mut pairs);
                *matcher_time += t.elapsed();
            }
            maxv = 0;
        }
    }
    pairs
}

/// Run the one-to-one matcher on a closed segment and mark its `A` users
/// as flushed (they are MAX-pruned by construction).
fn flush_segment(
    seg_edges: &mut Vec<(u32, u32)>,
    flushed: &mut [bool],
    matcher: MatcherKind,
    pairs: &mut Vec<(u32, u32)>,
) {
    // Compact node numbering for the segment subgraph.
    let mut b_nodes: Vec<u32> = seg_edges.iter().map(|&(b, _)| b).collect();
    b_nodes.sort_unstable();
    b_nodes.dedup();
    let mut a_nodes: Vec<u32> = seg_edges.iter().map(|&(_, a)| a).collect();
    a_nodes.sort_unstable();
    a_nodes.dedup();
    let remapped: Vec<(u32, u32)> = seg_edges
        .iter()
        .map(|&(b, a)| {
            let bi = b_nodes.binary_search(&b).expect("node present") as u32;
            let ai = a_nodes.binary_search(&a).expect("node present") as u32;
            (bi, ai)
        })
        .collect();
    let graph = MatchGraph::from_edges(b_nodes.len() as u32, a_nodes.len() as u32, remapped);
    let matching = run_matcher(&graph, matcher);
    for &(bi, ai) in matching.pairs() {
        pairs.push((b_nodes[bi as usize], a_nodes[ai as usize]));
    }
    for &(_, a) in seg_edges.iter() {
        flushed[a as usize] = true;
    }
    seg_edges.clear();
}

/// Approximate MinMax (Algorithm Ap-MinMax).
pub fn ap_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let eb = encode_b(b, opts.encoding);
    let ea = encode_a(a, opts.eps, opts.encoding);
    let setup = setup.elapsed();
    let mut raw = ap_minmax_prepared(b, a, &eb, &ea, opts);
    raw.timings.setup = setup;
    raw
}

/// Ap-MinMax over pre-encoded buffers (see `csj_core::prepared`).
pub(crate) fn ap_minmax_prepared(
    b: &Community,
    a: &Community,
    eb: &EncodedB,
    ea: &EncodedA,
    opts: &CsjOptions,
) -> RawJoin {
    let mut out = RawJoin::default();
    let mut oracle = RealOracle {
        b,
        a,
        eb,
        ea,
        eps: opts.eps,
    };
    let pairing = std::time::Instant::now();
    let pos_pairs = ap_minmax_loop(
        &eb.encd_ids,
        &ea.encd_mins,
        &ea.encd_maxs,
        &mut oracle,
        opts.offset_pruning,
        &mut out.events,
        &mut NoTrace,
        opts.cancel.as_ref(),
        &mut out.cancelled,
    );
    out.timings.pairing = pairing.elapsed();
    out.pairs = map_positions(&pos_pairs, eb, ea);
    out
}

/// Exact MinMax (Algorithm Ex-MinMax).
pub fn ex_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let eb = encode_b(b, opts.encoding);
    let ea = encode_a(a, opts.eps, opts.encoding);
    let setup = setup.elapsed();
    let mut raw = ex_minmax_prepared(b, a, &eb, &ea, opts);
    raw.timings.setup = setup;
    raw
}

/// Ex-MinMax over pre-encoded buffers (see `csj_core::prepared`).
pub(crate) fn ex_minmax_prepared(
    b: &Community,
    a: &Community,
    eb: &EncodedB,
    ea: &EncodedA,
    opts: &CsjOptions,
) -> RawJoin {
    let mut out = RawJoin::default();
    let mut oracle = RealOracle {
        b,
        a,
        eb,
        ea,
        eps: opts.eps,
    };
    let pairing = std::time::Instant::now();
    let mut matcher_time = std::time::Duration::ZERO;
    let pos_pairs = ex_minmax_loop(
        &eb.encd_ids,
        &ea.encd_mins,
        &ea.encd_maxs,
        &mut oracle,
        opts.matcher,
        opts.offset_pruning,
        &mut out.events,
        &mut NoTrace,
        &mut matcher_time,
        opts.cancel.as_ref(),
        &mut out.cancelled,
    );
    out.timings.pairing = pairing.elapsed().saturating_sub(matcher_time);
    out.timings.matching = matcher_time;
    out.pairs = map_positions(&pos_pairs, eb, ea);
    out
}

/// Translate buffer positions back to community user indices.
fn map_positions(pos_pairs: &[(u32, u32)], eb: &EncodedB, ea: &EncodedA) -> Vec<(u32, u32)> {
    pos_pairs
        .iter()
        .map(|&(i, j)| (eb.user_idx[i as usize], ea.user_idx[j as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline::{ap_baseline, ex_baseline};
    use crate::algorithms::CsjOptions;

    /// Scripted oracle for the figure walkthroughs.
    struct TableOracle(Vec<((usize, usize), Judgement)>);
    impl MinMaxOracle for TableOracle {
        fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement {
            self.0
                .iter()
                .find(|(k, _)| *k == (b_pos, a_pos))
                .map(|&(_, j)| j)
                .unwrap_or_else(|| panic!("unexpected comparison of b{b_pos} with a{a_pos}"))
        }
    }

    /// Records the full event tape.
    #[derive(Default)]
    struct Tape {
        events: Vec<(Event, usize, usize)>,
        flushes: Vec<Vec<(u32, u32)>>,
    }
    impl TraceSink for Tape {
        fn event(&mut self, ev: Event, b_pos: usize, a_pos: usize) {
            self.events.push((ev, b_pos, a_pos));
        }
        fn flush(&mut self, edges: &[(u32, u32)]) {
            self.flushes.push(edges.to_vec());
        }
    }

    /// Figure 2: the full Ap-MinMax running example (8 instances).
    /// Users are 0-indexed here: figure's b1..b5 -> 0..4, a1..a5 -> 0..4.
    #[test]
    fn figure2_trace() {
        let eb_ids = [40, 48, 67, 71, 74];
        let ea_mins = [30, 33, 42, 45, 50];
        let ea_maxs = [55, 60, 72, 73, 80];
        use Judgement as J;
        let mut oracle = TableOracle(vec![
            ((0, 0), J::NoOverlap),
            ((0, 1), J::NoOverlap),
            ((1, 0), J::NoMatch),
            ((1, 1), J::NoMatch),
            ((1, 2), J::Match),
            ((2, 3), J::NoMatch),
            ((2, 4), J::NoOverlap),
            ((3, 3), J::NoOverlap),
            ((3, 4), J::NoMatch),
            ((4, 4), J::Match),
        ]);
        let mut events = EventCounters::default();
        let mut tape = Tape::default();
        let mut cancelled = false;
        let pairs = ap_minmax_loop(
            &eb_ids,
            &ea_mins,
            &ea_maxs,
            &mut oracle,
            true,
            &mut events,
            &mut tape,
            None,
            &mut cancelled,
        );

        // MATCHES = {<b2, a3>, <b5, a5>} -> positions (1,2), (4,4);
        // similarity = 2/5 = 40%.
        assert_eq!(pairs, vec![(1, 2), (4, 4)]);

        use Event::*;
        let expected = vec![
            // << 1 >> b1 vs a1, a2 (NO OVERLAP), min-pruned by a3.
            (NoOverlap, 0, 0),
            (NoOverlap, 0, 1),
            (MinPrune, 0, 2),
            // << 2 >> b2: NO MATCH with a1, a2; MATCH with a3.
            (NoMatch, 1, 0),
            (NoMatch, 1, 1),
            (Match, 1, 2),
            // << 3 >>, << 4 >> b3 max-prunes a1 and a2.
            (MaxPrune, 2, 0),
            (MaxPrune, 2, 1),
            // << 5 >> b3 vs a4 (NO MATCH), a5 (NO OVERLAP).
            (NoMatch, 2, 3),
            (NoOverlap, 2, 4),
            // << 6 >> b4 starts at the offset moved by b3: a4, a5.
            (NoOverlap, 3, 3),
            (NoMatch, 3, 4),
            // << 7 >> b5 max-prunes a4; << 8 >> MATCH with a5.
            (MaxPrune, 4, 3),
            (Match, 4, 4),
        ];
        assert_eq!(tape.events, expected);
        assert_eq!(events.matches, 2);
        assert_eq!(events.min_prune, 1);
        assert_eq!(events.max_prune, 3);
        assert_eq!(events.no_overlap, 4);
        assert_eq!(events.no_match, 4);
    }

    /// Figure 3: the full Ex-MinMax running example (6 instances),
    /// including the mid-stream CSF flushes and the `maxV` bookkeeping.
    #[test]
    fn figure3_trace() {
        let eb_ids = [40, 58, 67, 74, 81];
        let ea_mins = [30, 33, 38, 45, 50];
        let ea_maxs = [55, 60, 57, 73, 80];
        use Judgement as J;
        let mut oracle = TableOracle(vec![
            ((0, 0), J::Match),
            ((0, 1), J::NoOverlap),
            ((0, 2), J::Match),
            ((1, 1), J::Match),
            ((1, 3), J::Match),
            ((1, 4), J::NoMatch),
            ((2, 3), J::Match),
            ((2, 4), J::NoMatch),
            ((3, 4), J::NoOverlap),
        ]);
        let mut events = EventCounters::default();
        let mut tape = Tape::default();
        let mut matcher_time = std::time::Duration::ZERO;
        let mut cancelled = false;
        let pairs = ex_minmax_loop(
            &eb_ids,
            &ea_mins,
            &ea_maxs,
            &mut oracle,
            MatcherKind::Csf,
            true,
            &mut events,
            &mut tape,
            &mut matcher_time,
            None,
            &mut cancelled,
        );

        use Event::*;
        let expected = vec![
            // << 1 >> b1: MATCH a1 (maxV=55), NO OVERLAP a2, MATCH a3
            // (maxV=57), MIN PRUNE by a4; b2=58 > maxV -> CSF flush.
            (Match, 0, 0),
            (NoOverlap, 0, 1),
            (Match, 0, 2),
            (MinPrune, 0, 3),
            // << 2 >> b2: MATCH a2 (maxV=60), MATCH a4 (maxV=73),
            // NO MATCH a5; b3=67 < maxV -> segment stays open.
            (Match, 1, 1),
            (Match, 1, 3),
            (NoMatch, 1, 4),
            // << 3 >> b3 max-prunes a2 (67 > 60)...
            (MaxPrune, 2, 1),
            // << 4 >> ...then MATCH a4, NO MATCH a5; b4=74 > maxV=73 ->
            // CSF flush of <b2,a2>, <b2,a4>, <b3,a4>.
            (Match, 2, 3),
            (NoMatch, 2, 4),
            // << 5 >> b4 vs a5: NO OVERLAP (maxV reset to 0).
            (NoOverlap, 3, 4),
            // << 6 >> b5 max-prunes a5; done.
            (MaxPrune, 4, 4),
        ];
        assert_eq!(tape.events, expected);

        // Two CSF calls with exactly the figure's inputs.
        assert_eq!(tape.flushes.len(), 2);
        assert_eq!(tape.flushes[0], vec![(0, 0), (0, 2)]);
        assert_eq!(tape.flushes[1], vec![(1, 1), (1, 3), (2, 3)]);

        // CSF covers b1 with one of {a1, a3}, and both b2 and b3.
        assert_eq!(pairs.len(), 3);
        let b_matched: Vec<u32> = {
            let mut v: Vec<u32> = pairs.iter().map(|&(b, _)| b).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(b_matched, vec![0, 1, 2]);
        assert!(pairs.iter().any(|&(b, a)| b == 0 && (a == 0 || a == 2)));
        assert!(pairs.iter().any(|&(b, a)| b == 2 && a == 3)); // b3's only match
        assert!(pairs.iter().any(|&(b, a)| b == 1 && a == 1)); // leaves a4 for b3
    }

    fn community(name: &str, rows: &[&[u32]]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    #[test]
    fn section3_example_end_to_end() {
        let b = community("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = community("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let opts = CsjOptions::new(1).with_parts(3);
        let ex = ex_minmax(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 2, "exact similarity must be 100%");
        let ap = ap_minmax(&b, &a, &opts);
        assert!(!ap.pairs.is_empty());
    }

    /// Deterministic pseudo-random cross-check against the baselines.
    #[test]
    fn agrees_with_baseline_on_random_data() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for (d, eps, range) in [(4usize, 1u32, 8u32), (6, 2, 12), (3, 0, 4), (8, 3, 30)] {
            let rows_b: Vec<Vec<u32>> = (0..60)
                .map(|_| (0..d).map(|_| next() % range).collect())
                .collect();
            let rows_a: Vec<Vec<u32>> = (0..80)
                .map(|_| (0..d).map(|_| next() % range).collect())
                .collect();
            let b = Community::from_rows(
                "B",
                d,
                rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .unwrap();
            let a = Community::from_rows(
                "A",
                d,
                rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .unwrap();
            let opts = CsjOptions::new(eps).with_parts(2.min(d));

            // Exact MinMax == Exact Baseline (same matcher, same graph).
            let exm = ex_minmax(&b, &a, &opts);
            let exb = ex_baseline(&b, &a, &opts);
            assert_eq!(exm.pairs.len(), exb.pairs.len(), "d={d} eps={eps}");

            // Approximate methods are valid one-to-one subsets.
            let apm = ap_minmax(&b, &a, &opts);
            let apb = ap_baseline(&b, &a, &opts);
            assert!(apm.pairs.len() <= exm.pairs.len());
            assert!(apb.pairs.len() <= exm.pairs.len());
            for raw in [&apm, &exm] {
                let mut bs: Vec<u32> = raw.pairs.iter().map(|&(x, _)| x).collect();
                let mut as_: Vec<u32> = raw.pairs.iter().map(|&(_, y)| y).collect();
                bs.sort_unstable();
                as_.sort_unstable();
                let bl = bs.len();
                let al = as_.len();
                bs.dedup();
                as_.dedup();
                assert_eq!(bs.len(), bl, "duplicate b in matching");
                assert_eq!(as_.len(), al, "duplicate a in matching");
                for &(x, y) in &raw.pairs {
                    assert!(vectors_match(
                        b.vector(x as usize),
                        a.vector(y as usize),
                        eps
                    ));
                }
            }
        }
    }

    #[test]
    fn pruning_events_fire_on_separated_communities() {
        // B's encoded IDs far below A's minima: everything MIN-pruned at
        // the first A entry; zero comparisons.
        let b = community("B", &[&[0, 0], &[1, 0]]);
        let a = community("A", &[&[50, 50], &[60, 60]]);
        let opts = CsjOptions::new(1).with_parts(2);
        let out = ap_minmax(&b, &a, &opts);
        assert!(out.pairs.is_empty());
        assert_eq!(out.events.min_prune, 2);
        assert_eq!(out.events.full_comparisons(), 0);
    }

    #[test]
    fn max_prune_advances_offset() {
        // B's encoded IDs far above A's maxima: every b max-prunes all of
        // A once; thanks to the offset, later bs never rescan.
        let b = community("B", &[&[50, 50], &[60, 60], &[70, 70]]);
        let a = community("A", &[&[0, 0], &[1, 1], &[2, 2]]);
        let opts = CsjOptions::new(1).with_parts(2);
        let out = ap_minmax(&b, &a, &opts);
        assert!(out.pairs.is_empty());
        assert_eq!(out.events.max_prune, 3, "offset should eat A exactly once");
    }

    #[test]
    fn empty_communities() {
        let b = Community::new("B", 2);
        let a = Community::new("A", 2);
        let opts = CsjOptions::new(1).with_parts(2);
        assert!(ap_minmax(&b, &a, &opts).pairs.is_empty());
        assert!(ex_minmax(&b, &a, &opts).pairs.is_empty());
    }

    #[test]
    fn offset_pruning_toggle_preserves_results() {
        let mut state = 0xFACE_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 5;
        let rows_b: Vec<Vec<u32>> = (0..70)
            .map(|_| (0..d).map(|_| next() % 12).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| next() % 12).collect())
            .collect();
        let b = Community::from_rows(
            "B",
            d,
            rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let a = Community::from_rows(
            "A",
            d,
            rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let on = CsjOptions::new(1).with_parts(2);
        let mut off = on.clone();
        off.offset_pruning = false;
        // Identical results either way; pruning only affects work done.
        assert_eq!(ap_minmax(&b, &a, &on).pairs, ap_minmax(&b, &a, &off).pairs);
        assert_eq!(
            ex_minmax(&b, &a, &on).pairs.len(),
            ex_minmax(&b, &a, &off).pairs.len()
        );
        assert_eq!(ex_minmax(&b, &a, &off).events.max_prune, 0);
    }

    #[test]
    fn identical_communities_reach_full_similarity() {
        let rows: Vec<Vec<u32>> = (0..20u32).map(|i| vec![i * 3, i * 5, i * 7, 2]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|v| &v[..]).collect();
        let b = community("B", &refs);
        let a = community("A", &refs);
        let opts = CsjOptions::new(0).with_parts(4);
        let out = ex_minmax(&b, &a, &opts);
        assert_eq!(out.pairs.len(), 20);
    }
}
