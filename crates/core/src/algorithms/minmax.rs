//! The MinMax substrate (Section 4): the paper's main contribution.
//!
//! Both algorithms first build the encoded buffers `Encd_B` (ascending
//! `encoded_ID`) and `Encd_A` (ascending `encoded_Min`) and then run one
//! pruned double loop — [`drive_minmax`] — whose consumption mode is a
//! [`PairSink`]:
//!
//! * **MIN PRUNE** — `eB.encd_ID < eA.encd_Min`: since `Encd_A` is sorted
//!   by `encd_Min`, the current `b` cannot match this or any later `a`;
//!   move to the next `b`.
//! * **MAX PRUNE** — `eB.encd_ID > eA.encd_Max` while the scan is still
//!   inside the untouched prefix: since `Encd_B` is sorted by `encd_ID`,
//!   this `a` can never match a later `b` either, so the shared
//!   [`PrefixPruner`] folds it into the global offset. (The prefix is
//!   broken by the first comparison of the scan — even a part/range
//!   comparison — because the offset may only swallow a *contiguous*
//!   prefix.)
//! * **NO OVERLAP** — some part sum of `b` falls outside the matching
//!   range of `a`: skip the d-dimensional comparison.
//! * **NO MATCH / MATCH** — result of the full d-dimensional comparison.
//!
//! **Ap-MinMax** = MinMax × [`GreedySink`]: the first MATCH consumes both
//! users. **Ex-MinMax** = MinMax × segmented [`CollectSink`]: every match
//! of the current `b` becomes an edge, the sink maintains `maxV` (the
//! largest `encoded_Max` among matched `a`s of the running segment) and,
//! whenever the next `b`'s `encoded_ID` exceeds `maxV`, flushes the
//! segment through the one-to-one matcher (CSF by default) — safe because
//! no future `b` can reach any matched `a` of the segment (their
//! `encoded_Max` values are all `<= maxV`), and no past `b` can reach any
//! future `a` (they were MIN-pruned). Segment connected components
//! therefore never straddle a flush boundary, which is also
//! property-tested against whole-graph matching.
//!
//! The drive judges candidates through a [`MinMaxOracle`] so the unit
//! tests can replay the exact executions of Figures 2 and 3 of the paper
//! (see `figure2_trace` / `figure3_trace`), observing the ordered event
//! stream through the kernel's `Tape` hook.

use crate::algorithms::kernel::{
    CollectSink, DriveCtx, GreedySink, Judgement, PairSink, PrefixPruner,
};
use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;
use crate::encoding::{encode_a, encode_b, EncodedA, EncodedB};
use crate::events::Event;
use crate::quant::{LaneView, QuantizedCommunity};

/// Supplies [`Judgement`]s for candidate pairs whose encoded ID passed the
/// Min/Max window. Production code uses [`RealOracle`]; the figure tests
/// use a scripted table.
pub(crate) trait MinMaxOracle {
    fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement;
}

/// The production oracle: part/range filter, then strict per-dimension
/// comparison through the encoded buffers' "real ID" indirection. The
/// full comparison runs on the pair's resolved [`LaneView`] — narrow
/// quantized lanes when the counters and `eps` permit.
pub(crate) struct RealOracle<'x> {
    pub view: LaneView<'x>,
    pub eb: &'x EncodedB,
    pub ea: &'x EncodedA,
}

impl MinMaxOracle for RealOracle<'_> {
    #[inline]
    fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement {
        if !self.ea.parts_overlap(a_pos, self.eb.parts_of(b_pos)) {
            return Judgement::NoOverlap;
        }
        let bi = self.eb.user_idx[b_pos] as usize;
        let aj = self.ea.user_idx[a_pos] as usize;
        if self.view.matches(bi, aj) {
            Judgement::Match
        } else {
            Judgement::NoMatch
        }
    }
}

/// Drive the MinMax substrate over pre-encoded buffers: the one pruned
/// sort-merge scan behind both Ap- and Ex-MinMax. The sink receives
/// `(b_pos, a_pos)` **buffer positions** (translate with
/// [`map_positions`]) plus each matched `a`'s `encd_Max` as the segment
/// watermark bound.
pub(crate) fn drive_minmax<O: MinMaxOracle, S: PairSink>(
    eb_ids: &[u64],
    ea_mins: &[u64],
    ea_maxs: &[u64],
    oracle: &mut O,
    pruning: bool,
    ctx: &mut DriveCtx,
    sink: &mut S,
) {
    let na = ea_mins.len();
    let mut pruner = PrefixPruner::new(pruning);
    for (i, &id) in eb_ids.iter().enumerate() {
        if ctx.poll_cancel() {
            break;
        }
        if !sink.wants_b(i as u32) {
            continue;
        }
        ctx.begin_row();
        let mut j = pruner.begin_row();
        while j < na {
            if !sink.wants_a(j as u32) {
                // A consumed/flushed entry can never match again; while
                // the scan is still in the untouched prefix it may be
                // folded into the offset.
                pruner.on_dead(j);
                j += 1;
                continue;
            }
            if id < ea_mins[j] {
                ctx.event(Event::MinPrune, i, j);
                break; // go to next eB
            } else if id <= ea_maxs[j] {
                ctx.candidate();
                let judgement = oracle.judge(i, j);
                ctx.event(judgement.event(), i, j);
                if judgement == Judgement::Match
                    && sink.on_match(ctx, i as u32, j as u32, ea_maxs[j])
                {
                    break; // approximate: go to next eB
                }
                pruner.touch();
                j += 1;
            } else {
                // eB.encd_ID > eA.encd_Max.
                if pruner.on_max_prune() {
                    ctx.event(Event::MaxPrune, i, j);
                }
                j += 1;
            }
        }
        ctx.end_row();
        // The segmented sink flushes here once the next b's encoded ID
        // clears the running segment's maxV watermark.
        sink.row_end(ctx, eb_ids.get(i + 1).copied());
    }
}

/// Build the quantized side tables the fast path wants (no-op in `Off`
/// mode — the scalar view reads the raw data directly).
fn quantize(
    b: &Community,
    a: &Community,
    opts: &CsjOptions,
) -> Option<(QuantizedCommunity, QuantizedCommunity)> {
    opts.quant
        .enabled()
        .then(|| (QuantizedCommunity::build(b), QuantizedCommunity::build(a)))
}

/// Approximate MinMax (Algorithm Ap-MinMax).
pub fn ap_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let eb = encode_b(b, opts.encoding);
    let ea = encode_a(a, opts.eps, opts.encoding);
    let quant = quantize(b, a, opts);
    let setup = setup.elapsed();
    let mut raw = ap_minmax_prepared(
        b,
        a,
        &eb,
        &ea,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts,
    );
    raw.timings.setup = setup;
    raw
}

/// Ap-MinMax over pre-encoded buffers (see `csj_core::prepared`).
pub(crate) fn ap_minmax_prepared(
    b: &Community,
    a: &Community,
    eb: &EncodedB,
    ea: &EncodedA,
    qb: Option<&QuantizedCommunity>,
    qa: Option<&QuantizedCommunity>,
    opts: &CsjOptions,
) -> RawJoin {
    let mut out = RawJoin::default();
    let view = LaneView::select(opts.quant, b, a, qb, qa, opts.eps);
    let mut oracle = RealOracle { view, eb, ea };
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    ctx.telemetry.lane_bits = view.lane_bits();
    let mut sink = GreedySink::new(eb.encd_ids.len(), ea.encd_mins.len());
    drive_minmax(
        &eb.encd_ids,
        &ea.encd_mins,
        &ea.encd_maxs,
        &mut oracle,
        opts.offset_pruning,
        &mut ctx,
        &mut sink,
    );
    let pos_pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.pairs = map_positions(&pos_pairs, eb, ea);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

/// Exact MinMax (Algorithm Ex-MinMax).
pub fn ex_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let eb = encode_b(b, opts.encoding);
    let ea = encode_a(a, opts.eps, opts.encoding);
    let quant = quantize(b, a, opts);
    let setup = setup.elapsed();
    let mut raw = ex_minmax_prepared(
        b,
        a,
        &eb,
        &ea,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts,
    );
    raw.timings.setup = setup;
    raw
}

/// Ex-MinMax over pre-encoded buffers (see `csj_core::prepared`). On
/// cancellation the already-flushed segments are returned (a valid
/// partial matching) — edges of the still-open segment are dropped
/// rather than matched so cancellation stays prompt.
pub(crate) fn ex_minmax_prepared(
    b: &Community,
    a: &Community,
    eb: &EncodedB,
    ea: &EncodedA,
    qb: Option<&QuantizedCommunity>,
    qa: Option<&QuantizedCommunity>,
    opts: &CsjOptions,
) -> RawJoin {
    let mut out = RawJoin::default();
    let view = LaneView::select(opts.quant, b, a, qb, qa, opts.eps);
    let mut oracle = RealOracle { view, eb, ea };
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    ctx.telemetry.lane_bits = view.lane_bits();
    let mut sink = CollectSink::segmented(ea.encd_mins.len(), opts.matcher);
    drive_minmax(
        &eb.encd_ids,
        &ea.encd_mins,
        &ea.encd_maxs,
        &mut oracle,
        opts.offset_pruning,
        &mut ctx,
        &mut sink,
    );
    let pos_pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.pairs = map_positions(&pos_pairs, eb, ea);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

/// Translate buffer positions back to community user indices.
fn map_positions(pos_pairs: &[(u32, u32)], eb: &EncodedB, ea: &EncodedA) -> Vec<(u32, u32)> {
    pos_pairs
        .iter()
        .map(|&(i, j)| (eb.user_idx[i as usize], ea.user_idx[j as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline::{ap_baseline, ex_baseline};
    use crate::algorithms::kernel::Tape as TapeHook;
    use crate::algorithms::CsjOptions;
    use crate::vectors_match;
    use csj_matching::MatcherKind;

    /// Scripted oracle for the figure walkthroughs.
    struct TableOracle(Vec<((usize, usize), Judgement)>);
    impl MinMaxOracle for TableOracle {
        fn judge(&mut self, b_pos: usize, a_pos: usize) -> Judgement {
            self.0
                .iter()
                .find(|(k, _)| *k == (b_pos, a_pos))
                .map(|&(_, j)| j)
                .unwrap_or_else(|| panic!("unexpected comparison of b{b_pos} with a{a_pos}"))
        }
    }

    /// Records the full event tape.
    #[derive(Default)]
    struct Tape {
        events: Vec<(Event, usize, usize)>,
        flushes: Vec<Vec<(u32, u32)>>,
    }
    impl TapeHook for Tape {
        fn event(&mut self, ev: Event, b_pos: usize, a_pos: usize) {
            self.events.push((ev, b_pos, a_pos));
        }
        fn flush(&mut self, edges: &[(u32, u32)]) {
            self.flushes.push(edges.to_vec());
        }
    }

    /// Figure 2: the full Ap-MinMax running example (8 instances).
    /// Users are 0-indexed here: figure's b1..b5 -> 0..4, a1..a5 -> 0..4.
    #[test]
    fn figure2_trace() {
        let eb_ids = [40, 48, 67, 71, 74];
        let ea_mins = [30, 33, 42, 45, 50];
        let ea_maxs = [55, 60, 72, 73, 80];
        use Judgement as J;
        let mut oracle = TableOracle(vec![
            ((0, 0), J::NoOverlap),
            ((0, 1), J::NoOverlap),
            ((1, 0), J::NoMatch),
            ((1, 1), J::NoMatch),
            ((1, 2), J::Match),
            ((2, 3), J::NoMatch),
            ((2, 4), J::NoOverlap),
            ((3, 3), J::NoOverlap),
            ((3, 4), J::NoMatch),
            ((4, 4), J::Match),
        ]);
        let mut tape = Tape::default();
        let mut ctx = DriveCtx::with_tape(None, &mut tape);
        let mut sink = GreedySink::new(eb_ids.len(), ea_mins.len());
        drive_minmax(
            &eb_ids,
            &ea_mins,
            &ea_maxs,
            &mut oracle,
            true,
            &mut ctx,
            &mut sink,
        );
        let pairs = sink.finish(&mut ctx);
        let telemetry = ctx.telemetry;

        // MATCHES = {<b2, a3>, <b5, a5>} -> positions (1,2), (4,4);
        // similarity = 2/5 = 40%.
        assert_eq!(pairs, vec![(1, 2), (4, 4)]);

        use Event::*;
        let expected = vec![
            // << 1 >> b1 vs a1, a2 (NO OVERLAP), min-pruned by a3.
            (NoOverlap, 0, 0),
            (NoOverlap, 0, 1),
            (MinPrune, 0, 2),
            // << 2 >> b2: NO MATCH with a1, a2; MATCH with a3.
            (NoMatch, 1, 0),
            (NoMatch, 1, 1),
            (Match, 1, 2),
            // << 3 >>, << 4 >> b3 max-prunes a1 and a2.
            (MaxPrune, 2, 0),
            (MaxPrune, 2, 1),
            // << 5 >> b3 vs a4 (NO MATCH), a5 (NO OVERLAP).
            (NoMatch, 2, 3),
            (NoOverlap, 2, 4),
            // << 6 >> b4 starts at the offset moved by b3: a4, a5.
            (NoOverlap, 3, 3),
            (NoMatch, 3, 4),
            // << 7 >> b5 max-prunes a4; << 8 >> MATCH with a5.
            (MaxPrune, 4, 3),
            (Match, 4, 4),
        ];
        assert_eq!(tape.events, expected);
        let events = telemetry.events;
        assert_eq!(events.matches, 2);
        assert_eq!(events.min_prune, 1);
        assert_eq!(events.max_prune, 3);
        assert_eq!(events.no_overlap, 4);
        assert_eq!(events.no_match, 4);
        // The kernel's per-row stream telemetry on the figure: b1 streams
        // 2 candidates, b2 3, b3 2, b4 2, b5 1 -> 10 total, peak 3.
        assert_eq!(telemetry.rows_driven, 5);
        assert_eq!(telemetry.candidates_streamed, 10);
        assert_eq!(telemetry.peak_stream_depth, 3);
    }

    /// Figure 3: the full Ex-MinMax running example (6 instances),
    /// including the mid-stream CSF flushes and the `maxV` bookkeeping.
    #[test]
    fn figure3_trace() {
        let eb_ids = [40, 58, 67, 74, 81];
        let ea_mins = [30, 33, 38, 45, 50];
        let ea_maxs = [55, 60, 57, 73, 80];
        use Judgement as J;
        let mut oracle = TableOracle(vec![
            ((0, 0), J::Match),
            ((0, 1), J::NoOverlap),
            ((0, 2), J::Match),
            ((1, 1), J::Match),
            ((1, 3), J::Match),
            ((1, 4), J::NoMatch),
            ((2, 3), J::Match),
            ((2, 4), J::NoMatch),
            ((3, 4), J::NoOverlap),
        ]);
        let mut tape = Tape::default();
        let mut ctx = DriveCtx::with_tape(None, &mut tape);
        let mut sink = CollectSink::segmented(ea_mins.len(), MatcherKind::Csf);
        drive_minmax(
            &eb_ids,
            &ea_mins,
            &ea_maxs,
            &mut oracle,
            true,
            &mut ctx,
            &mut sink,
        );
        let pairs = sink.finish(&mut ctx);
        let telemetry = ctx.telemetry;

        use Event::*;
        let expected = vec![
            // << 1 >> b1: MATCH a1 (maxV=55), NO OVERLAP a2, MATCH a3
            // (maxV=57), MIN PRUNE by a4; b2=58 > maxV -> CSF flush.
            (Match, 0, 0),
            (NoOverlap, 0, 1),
            (Match, 0, 2),
            (MinPrune, 0, 3),
            // << 2 >> b2: MATCH a2 (maxV=60), MATCH a4 (maxV=73),
            // NO MATCH a5; b3=67 < maxV -> segment stays open.
            (Match, 1, 1),
            (Match, 1, 3),
            (NoMatch, 1, 4),
            // << 3 >> b3 max-prunes a2 (67 > 60)...
            (MaxPrune, 2, 1),
            // << 4 >> ...then MATCH a4, NO MATCH a5; b4=74 > maxV=73 ->
            // CSF flush of <b2,a2>, <b2,a4>, <b3,a4>.
            (Match, 2, 3),
            (NoMatch, 2, 4),
            // << 5 >> b4 vs a5: NO OVERLAP (maxV reset to 0).
            (NoOverlap, 3, 4),
            // << 6 >> b5 max-prunes a5; done.
            (MaxPrune, 4, 4),
        ];
        assert_eq!(tape.events, expected);

        // Two CSF calls with exactly the figure's inputs.
        assert_eq!(tape.flushes.len(), 2);
        assert_eq!(tape.flushes[0], vec![(0, 0), (0, 2)]);
        assert_eq!(tape.flushes[1], vec![(1, 1), (1, 3), (2, 3)]);
        // ... which the flush telemetry mirrors.
        assert_eq!(telemetry.matcher_flushes, 2);
        assert_eq!(telemetry.matcher_edges, 5);
        assert_eq!(telemetry.largest_flush_edges, 3);

        // CSF covers b1 with one of {a1, a3}, and both b2 and b3.
        assert_eq!(pairs.len(), 3);
        let b_matched: Vec<u32> = {
            let mut v: Vec<u32> = pairs.iter().map(|&(b, _)| b).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(b_matched, vec![0, 1, 2]);
        assert!(pairs.iter().any(|&(b, a)| b == 0 && (a == 0 || a == 2)));
        assert!(pairs.iter().any(|&(b, a)| b == 2 && a == 3)); // b3's only match
        assert!(pairs.iter().any(|&(b, a)| b == 1 && a == 1)); // leaves a4 for b3
    }

    fn community(name: &str, rows: &[&[u32]]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    #[test]
    fn section3_example_end_to_end() {
        let b = community("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = community("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let opts = CsjOptions::new(1).with_parts(3);
        let ex = ex_minmax(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 2, "exact similarity must be 100%");
        let ap = ap_minmax(&b, &a, &opts);
        assert!(!ap.pairs.is_empty());
    }

    /// Deterministic pseudo-random cross-check against the baselines.
    #[test]
    fn agrees_with_baseline_on_random_data() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for (d, eps, range) in [(4usize, 1u32, 8u32), (6, 2, 12), (3, 0, 4), (8, 3, 30)] {
            let rows_b: Vec<Vec<u32>> = (0..60)
                .map(|_| (0..d).map(|_| next() % range).collect())
                .collect();
            let rows_a: Vec<Vec<u32>> = (0..80)
                .map(|_| (0..d).map(|_| next() % range).collect())
                .collect();
            let b = Community::from_rows(
                "B",
                d,
                rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .unwrap();
            let a = Community::from_rows(
                "A",
                d,
                rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .unwrap();
            let opts = CsjOptions::new(eps).with_parts(2.min(d));

            // Exact MinMax == Exact Baseline (same matcher, same graph).
            let exm = ex_minmax(&b, &a, &opts);
            let exb = ex_baseline(&b, &a, &opts);
            assert_eq!(exm.pairs.len(), exb.pairs.len(), "d={d} eps={eps}");

            // Approximate methods are valid one-to-one subsets.
            let apm = ap_minmax(&b, &a, &opts);
            let apb = ap_baseline(&b, &a, &opts);
            assert!(apm.pairs.len() <= exm.pairs.len());
            assert!(apb.pairs.len() <= exm.pairs.len());
            for raw in [&apm, &exm] {
                let mut bs: Vec<u32> = raw.pairs.iter().map(|&(x, _)| x).collect();
                let mut as_: Vec<u32> = raw.pairs.iter().map(|&(_, y)| y).collect();
                bs.sort_unstable();
                as_.sort_unstable();
                let bl = bs.len();
                let al = as_.len();
                bs.dedup();
                as_.dedup();
                assert_eq!(bs.len(), bl, "duplicate b in matching");
                assert_eq!(as_.len(), al, "duplicate a in matching");
                for &(x, y) in &raw.pairs {
                    assert!(vectors_match(
                        b.vector(x as usize),
                        a.vector(y as usize),
                        eps
                    ));
                }
            }
        }
    }

    #[test]
    fn pruning_events_fire_on_separated_communities() {
        // B's encoded IDs far below A's minima: everything MIN-pruned at
        // the first A entry; zero comparisons.
        let b = community("B", &[&[0, 0], &[1, 0]]);
        let a = community("A", &[&[50, 50], &[60, 60]]);
        let opts = CsjOptions::new(1).with_parts(2);
        let out = ap_minmax(&b, &a, &opts);
        assert!(out.pairs.is_empty());
        assert_eq!(out.telemetry.events.min_prune, 2);
        assert_eq!(out.telemetry.events.full_comparisons(), 0);
        assert_eq!(out.telemetry.candidates_streamed, 0);
    }

    #[test]
    fn max_prune_advances_offset() {
        // B's encoded IDs far above A's maxima: every b max-prunes all of
        // A once; thanks to the offset, later bs never rescan.
        let b = community("B", &[&[50, 50], &[60, 60], &[70, 70]]);
        let a = community("A", &[&[0, 0], &[1, 1], &[2, 2]]);
        let opts = CsjOptions::new(1).with_parts(2);
        let out = ap_minmax(&b, &a, &opts);
        assert!(out.pairs.is_empty());
        assert_eq!(
            out.telemetry.events.max_prune, 3,
            "offset should eat A exactly once"
        );
    }

    #[test]
    fn empty_communities() {
        let b = Community::new("B", 2);
        let a = Community::new("A", 2);
        let opts = CsjOptions::new(1).with_parts(2);
        assert!(ap_minmax(&b, &a, &opts).pairs.is_empty());
        assert!(ex_minmax(&b, &a, &opts).pairs.is_empty());
    }

    #[test]
    fn offset_pruning_toggle_preserves_results() {
        let mut state = 0xFACE_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 5;
        let rows_b: Vec<Vec<u32>> = (0..70)
            .map(|_| (0..d).map(|_| next() % 12).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| next() % 12).collect())
            .collect();
        let b = Community::from_rows(
            "B",
            d,
            rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let a = Community::from_rows(
            "A",
            d,
            rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let on = CsjOptions::new(1).with_parts(2);
        let mut off = on.clone();
        off.offset_pruning = false;
        // Identical results either way; pruning only affects work done.
        assert_eq!(ap_minmax(&b, &a, &on).pairs, ap_minmax(&b, &a, &off).pairs);
        assert_eq!(
            ex_minmax(&b, &a, &on).pairs.len(),
            ex_minmax(&b, &a, &off).pairs.len()
        );
        assert_eq!(ex_minmax(&b, &a, &off).telemetry.events.max_prune, 0);
    }

    #[test]
    fn identical_communities_reach_full_similarity() {
        let rows: Vec<Vec<u32>> = (0..20u32).map(|i| vec![i * 3, i * 5, i * 7, 2]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|v| &v[..]).collect();
        let b = community("B", &refs);
        let a = community("A", &refs);
        let opts = CsjOptions::new(0).with_parts(4);
        let out = ex_minmax(&b, &a, &opts);
        assert_eq!(out.pairs.len(), 20);
    }
}
