//! The Baseline substrate (Section 5.1): plain nested-loop pairing.
//!
//! One generic [`drive_baseline`] scan drives both consumption modes:
//!
//! * **Ap-Baseline** = Baseline × [`GreedySink`]: the first match
//!   consumes both users; the shared [`PrefixPruner`] keeps the
//!   contiguous prefix of consumed `A` users out of later scans.
//! * **Ex-Baseline** = Baseline × [`CollectSink`]: every match becomes an
//!   edge and the one-to-one matcher (the paper's CSF) runs **once**.

use crate::algorithms::kernel::{
    drive_baseline, drive_baseline_blocked, join_worker, CollectSink, DriveCtx, EdgeListSink,
    GreedySink, PairSink, PrefixPruner,
};
use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;
use crate::quant::{LaneView, QuantizedCommunity};

/// Quantize both sides when the fast path is on (the scalar view needs
/// no side tables). Returned by value so the entry points can borrow
/// views out of it for the drive's lifetime.
fn quantize(
    b: &Community,
    a: &Community,
    opts: &CsjOptions,
) -> Option<(QuantizedCommunity, QuantizedCommunity)> {
    opts.quant
        .enabled()
        .then(|| (QuantizedCommunity::build(b), QuantizedCommunity::build(a)))
}

/// Approximate Baseline: nested-loop substrate × greedy sink.
pub fn ap_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let nb = b.len();
    let na = a.len();
    let quant = quantize(b, a, opts);
    let view = LaneView::select(
        opts.quant,
        b,
        a,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts.eps,
    );
    let mut out = RawJoin::default();
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    let mut sink = GreedySink::new(nb, na);
    // Section 5.1: "skip and offset are used similarly to Ap-MinMax for
    // the faster processing of the nested loop join".
    let mut pruner = PrefixPruner::new(opts.offset_pruning);
    drive_baseline(&view, 0..nb, na, &mut pruner, &mut ctx, &mut sink);
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

/// Exact Baseline: nested-loop substrate × collect sink.
///
/// With `opts.threads > 1` the enumeration partitions `B` into row
/// ranges processed by scoped workers, each streaming into an
/// [`EdgeListSink`]; edges and telemetry merge in range order, so the
/// result (pairs *and* telemetry) is identical to the serial run. A
/// worker panic is re-raised on the caller's thread with its original
/// payload, so the engine's panic isolation reports the real message.
pub fn ex_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let nb = b.len();
    let na = a.len();
    let threads = opts.threads.max(1).min(nb.max(1));
    let mut out = RawJoin::default();
    let quant = quantize(b, a, opts);
    let view = LaneView::select(
        opts.quant,
        b,
        a,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts.eps,
    );
    // The exact scan is unconditional (every row and column is wanted,
    // nothing is consumed mid-scan), so the cache-blocked drive emits
    // the identical edge list and telemetry; `Off` keeps the serial
    // scalar scan as the benchmark baseline.
    let blocked = opts.quant.enabled();

    let cancel = opts.cancel.as_ref();
    let mut ctx = DriveCtx::new(cancel);
    // Exact mode never consumes during the scan, so prefix pruning is a
    // no-op; keep it disabled to preserve full comparison counts.
    let mut sink = CollectSink::whole(nb, na, opts.matcher, true);
    let drive_range = |ctx: &mut DriveCtx, range: std::ops::Range<usize>| -> Vec<(u32, u32)> {
        if blocked {
            let mut edges = Vec::new();
            drive_baseline_blocked(&view, range, na, ctx, &mut edges);
            edges
        } else {
            let mut pruner = PrefixPruner::new(false);
            let mut edges = EdgeListSink::new();
            drive_baseline(&view, range, na, &mut pruner, ctx, &mut edges);
            edges.into_edges()
        }
    };
    if threads <= 1 {
        let edges = drive_range(&mut ctx, 0..nb);
        sink.absorb_edges(&edges);
    } else {
        let chunk = nb.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * chunk).min(nb)..((t + 1) * chunk).min(nb))
            .collect();
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| {
                    let drive_range = &drive_range;
                    scope.spawn(move || {
                        let mut ctx = DriveCtx::new(cancel);
                        let edges = drive_range(&mut ctx, r);
                        (ctx.telemetry, ctx.cancelled, edges)
                    })
                })
                .collect();
            handles.into_iter().map(join_worker).collect::<Vec<_>>()
        });
        for (telemetry, cancelled, edges) in chunks {
            ctx.telemetry.merge(&telemetry);
            ctx.cancelled |= cancelled;
            sink.absorb_edges(&edges);
        }
    }
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::CsjOptions;

    fn community(name: &str, rows: &[&[u32]]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    /// The Section 3 worked example: approximate may get 50%, exact 100%.
    #[test]
    fn section3_example() {
        let b = community("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = community("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let opts = CsjOptions::new(1);
        let ap = ap_baseline(&b, &a, &opts);
        // b1 greedily takes its first match in scan order (a2 at index 1);
        // b2 can still take a3 -> here greedy happens to find both.
        assert_eq!(ap.pairs.len(), 2);
        let ex = ex_baseline(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 2);
    }

    #[test]
    fn greedy_can_lose_to_exact() {
        // b0 matches a0 and a1; b1 matches only a0. Scan order makes
        // Ap-Baseline give a0 to b0, stranding b1. Ex-Baseline recovers.
        let b = community("B", &[&[5], &[5]]);
        let a = community("A", &[&[5], &[9]]);
        // b0={5} matches a0={5} (eps 0); b1={5} matches a0 only.
        let opts = CsjOptions::new(0);
        let ap = ap_baseline(&b, &a, &opts);
        assert_eq!(ap.pairs, vec![(0, 0)]);
        let ex = ex_baseline(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 1); // maximum is still 1 here
    }

    #[test]
    fn approximate_offset_skips_consumed_prefix() {
        // Every b matches a0..a2 in order; after 3 matches the offset
        // should have advanced past all consumed entries.
        let b = community("B", &[&[1], &[1], &[1]]);
        let a = community("A", &[&[1], &[1], &[1]]);
        let opts = CsjOptions::new(0);
        let out = ap_baseline(&b, &a, &opts);
        assert_eq!(out.pairs, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(out.telemetry.events.matches, 3);
        // b1 must not re-compare a0 (consumed): only match events + zero
        // no-match events proves the prefix skipping worked.
        assert_eq!(out.telemetry.events.no_match, 0);
        // The kernel saw exactly one candidate per row.
        assert_eq!(out.telemetry.rows_driven, 3);
        assert_eq!(out.telemetry.candidates_streamed, 3);
        assert_eq!(out.telemetry.peak_stream_depth, 1);
    }

    #[test]
    fn exact_counts_all_comparisons() {
        let b = community("B", &[&[0], &[10]]);
        let a = community("A", &[&[0], &[10], &[20]]);
        let opts = CsjOptions::new(1);
        let out = ex_baseline(&b, &a, &opts);
        assert_eq!(out.telemetry.events.full_comparisons(), 6);
        assert_eq!(out.telemetry.events.matches, 2);
        assert_eq!(out.pairs.len(), 2);
        // One whole-graph matcher flush over both match edges.
        assert_eq!(out.telemetry.matcher_flushes, 1);
        assert_eq!(out.telemetry.matcher_edges, 2);
    }

    #[test]
    fn empty_b_side() {
        let b = Community::new("B", 2);
        let a = community("A", &[&[1, 1]]);
        let opts = CsjOptions::new(1);
        assert!(ap_baseline(&b, &a, &opts).pairs.is_empty());
        assert!(ex_baseline(&b, &a, &opts).pairs.is_empty());
    }

    #[test]
    fn parallel_ex_baseline_matches_serial() {
        let mut state = 0x7777_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..110)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let b = Community::from_rows(
            "B",
            d,
            rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let a = Community::from_rows(
            "A",
            d,
            rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let serial = CsjOptions::new(1);
        let mut parallel = serial.clone();
        parallel.threads = 4;
        let s = ex_baseline(&b, &a, &serial);
        let p = ex_baseline(&b, &a, &parallel);
        assert_eq!(s.pairs, p.pairs);
        // Range-ordered merging makes the whole telemetry block — not
        // just the event counters — bit-identical to the serial drive.
        assert_eq!(s.telemetry, p.telemetry);
    }

    #[test]
    fn pre_cancelled_token_yields_empty_flagged_result() {
        let b = community("B", &[&[1], &[1], &[1]]);
        let a = community("A", &[&[1], &[1], &[1]]);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let opts = CsjOptions::new(0).with_cancel(token);
        let ap = ap_baseline(&b, &a, &opts);
        assert!(ap.cancelled);
        assert!(ap.pairs.is_empty());
        let ex = ex_baseline(&b, &a, &opts);
        assert!(ex.cancelled);
        assert!(ex.pairs.is_empty());
        // Without a token the same inputs run to completion.
        let full = ap_baseline(&b, &a, &CsjOptions::new(0));
        assert!(!full.cancelled);
        assert_eq!(full.pairs.len(), 3);
    }

    #[test]
    fn eps_zero_requires_equality() {
        let b = community("B", &[&[1, 2]]);
        let a = community("A", &[&[1, 2], &[1, 3]]);
        let opts = CsjOptions::new(0);
        let out = ap_baseline(&b, &a, &opts);
        assert_eq!(out.pairs, vec![(0, 0)]);
    }
}
