//! The Baseline methods (Section 5.1): plain nested-loop joins.
//!
//! * **Ap-Baseline** scans `A` for each `b ∈ B` and takes the first match,
//!   consuming both users. Like Ap-MinMax it maintains a `skip`/`offset`
//!   pair so that a contiguous prefix of already-consumed `A` users is
//!   never rescanned.
//! * **Ex-Baseline** first finds *all* matches between `B` and `A` with a
//!   full nested loop, then builds the four matching structures and calls
//!   the one-to-one matcher (the paper's CSF) **once**.

use csj_matching::{run_matcher, GraphBuilder};

use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;
use crate::events::Event;
use crate::vectors_match;

/// Approximate Baseline: greedy first-match nested loop.
pub fn ap_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let nb = b.len();
    let na = a.len();
    let mut out = RawJoin::default();
    let pairing = std::time::Instant::now();
    let mut consumed = vec![false; na];
    // `offset` skips the contiguous prefix of consumed A users; `skip`
    // stays true while the scan has only seen that prefix, exactly like
    // the MinMax flag (Section 5.1: "skip and offset are used similarly
    // to Ap-MinMax for the faster processing of the nested loop join").
    let mut offset = 0usize;
    for i in 0..nb {
        if opts.is_cancelled() {
            out.cancelled = true;
            break;
        }
        let bv = b.vector(i);
        let mut skip = true;
        let mut j = offset;
        while j < na {
            if consumed[j] {
                if opts.offset_pruning && skip && j == offset {
                    offset += 1;
                }
                j += 1;
                continue;
            }
            skip = false;
            if vectors_match(bv, a.vector(j), opts.eps) {
                out.events.record(Event::Match);
                out.pairs.push((i as u32, j as u32));
                consumed[j] = true;
                break;
            }
            out.events.record(Event::NoMatch);
            j += 1;
        }
    }
    out.timings.pairing = pairing.elapsed();
    out
}

/// Exact Baseline: enumerate all matches, then one matcher call.
///
/// With `opts.threads > 1` the enumeration partitions `B` into row
/// ranges processed by scoped workers (edges and event counts merge in
/// range order, so the result is identical to the serial run).
pub fn ex_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let nb = b.len();
    let na = a.len();
    let threads = opts.threads.max(1).min(nb.max(1));
    let mut out = RawJoin::default();
    let pairing = std::time::Instant::now();

    let cancel = opts.cancel.as_ref();
    let chunks: Vec<ScanChunk> = if threads <= 1 {
        vec![scan_rows(b, a, 0..nb, opts.eps, cancel)]
    } else {
        let chunk = nb.div_ceil(threads);
        let ranges: Vec<std::ops::Range<usize>> = (0..threads)
            .map(|t| (t * chunk).min(nb)..((t + 1) * chunk).min(nb))
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|r| scope.spawn(move || scan_rows(b, a, r, opts.eps, cancel)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut builder = GraphBuilder::with_capacity(
        nb as u32,
        na as u32,
        chunks.iter().map(|c| c.edges.len()).sum(),
    );
    for chunk in chunks {
        for (i, j) in chunk.edges {
            builder.add_edge(i, j);
        }
        out.events.matches += chunk.matches;
        out.events.no_match += chunk.no_matches;
        out.cancelled |= chunk.cancelled;
    }
    out.timings.pairing = pairing.elapsed();
    let matching_t = std::time::Instant::now();
    let graph = builder.build();
    let matching = run_matcher(&graph, opts.matcher);
    out.timings.matching = matching_t.elapsed();
    out.pairs = matching.into_pairs();
    out
}

/// Edges plus event counts from one scanned row range.
struct ScanChunk {
    edges: Vec<(u32, u32)>,
    matches: u64,
    no_matches: u64,
    cancelled: bool,
}

/// Scan one range of `B` rows against all of `A`, polling `cancel` once
/// per row.
fn scan_rows(
    b: &Community,
    a: &Community,
    rows: std::ops::Range<usize>,
    eps: u32,
    cancel: Option<&crate::cancel::CancelToken>,
) -> ScanChunk {
    let mut edges = Vec::new();
    let mut matches = 0u64;
    let mut no_matches = 0u64;
    let mut cancelled = false;
    for i in rows {
        if cancel.is_some_and(|c| c.is_cancelled()) {
            cancelled = true;
            break;
        }
        let bv = b.vector(i);
        for j in 0..a.len() {
            if vectors_match(bv, a.vector(j), eps) {
                matches += 1;
                edges.push((i as u32, j as u32));
            } else {
                no_matches += 1;
            }
        }
    }
    ScanChunk {
        edges,
        matches,
        no_matches,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::CsjOptions;

    fn community(name: &str, rows: &[&[u32]]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    /// The Section 3 worked example: approximate may get 50%, exact 100%.
    #[test]
    fn section3_example() {
        let b = community("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = community("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let opts = CsjOptions::new(1);
        let ap = ap_baseline(&b, &a, &opts);
        // b1 greedily takes its first match in scan order (a2 at index 1);
        // b2 can still take a3 -> here greedy happens to find both.
        assert_eq!(ap.pairs.len(), 2);
        let ex = ex_baseline(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 2);
    }

    #[test]
    fn greedy_can_lose_to_exact() {
        // b0 matches a0 and a1; b1 matches only a0. Scan order makes
        // Ap-Baseline give a0 to b0, stranding b1. Ex-Baseline recovers.
        let b = community("B", &[&[5], &[5]]);
        let a = community("A", &[&[5], &[9]]);
        // b0={5} matches a0={5} (eps 0); b1={5} matches a0 only.
        let opts = CsjOptions::new(0);
        let ap = ap_baseline(&b, &a, &opts);
        assert_eq!(ap.pairs, vec![(0, 0)]);
        let ex = ex_baseline(&b, &a, &opts);
        assert_eq!(ex.pairs.len(), 1); // maximum is still 1 here
    }

    #[test]
    fn approximate_offset_skips_consumed_prefix() {
        // Every b matches a0..a2 in order; after 3 matches the offset
        // should have advanced past all consumed entries.
        let b = community("B", &[&[1], &[1], &[1]]);
        let a = community("A", &[&[1], &[1], &[1]]);
        let opts = CsjOptions::new(0);
        let out = ap_baseline(&b, &a, &opts);
        assert_eq!(out.pairs, vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(out.events.matches, 3);
        // b1 must not re-compare a0 (consumed): only match events + zero
        // no-match events proves the prefix skipping worked.
        assert_eq!(out.events.no_match, 0);
    }

    #[test]
    fn exact_counts_all_comparisons() {
        let b = community("B", &[&[0], &[10]]);
        let a = community("A", &[&[0], &[10], &[20]]);
        let opts = CsjOptions::new(1);
        let out = ex_baseline(&b, &a, &opts);
        assert_eq!(out.events.full_comparisons(), 6);
        assert_eq!(out.events.matches, 2);
        assert_eq!(out.pairs.len(), 2);
    }

    #[test]
    fn empty_b_side() {
        let b = Community::new("B", 2);
        let a = community("A", &[&[1, 1]]);
        let opts = CsjOptions::new(1);
        assert!(ap_baseline(&b, &a, &opts).pairs.is_empty());
        assert!(ex_baseline(&b, &a, &opts).pairs.is_empty());
    }

    #[test]
    fn parallel_ex_baseline_matches_serial() {
        let mut state = 0x7777_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..110)
            .map(|_| (0..d).map(|_| next() % 10).collect())
            .collect();
        let b = Community::from_rows(
            "B",
            d,
            rows_b.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let a = Community::from_rows(
            "A",
            d,
            rows_a.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap();
        let serial = CsjOptions::new(1);
        let mut parallel = serial.clone();
        parallel.threads = 4;
        let s = ex_baseline(&b, &a, &serial);
        let p = ex_baseline(&b, &a, &parallel);
        assert_eq!(s.pairs, p.pairs);
        assert_eq!(s.events, p.events);
    }

    #[test]
    fn pre_cancelled_token_yields_empty_flagged_result() {
        let b = community("B", &[&[1], &[1], &[1]]);
        let a = community("A", &[&[1], &[1], &[1]]);
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let opts = CsjOptions::new(0).with_cancel(token);
        let ap = ap_baseline(&b, &a, &opts);
        assert!(ap.cancelled);
        assert!(ap.pairs.is_empty());
        let ex = ex_baseline(&b, &a, &opts);
        assert!(ex.cancelled);
        assert!(ex.pairs.is_empty());
        // Without a token the same inputs run to completion.
        let full = ap_baseline(&b, &a, &CsjOptions::new(0));
        assert!(!full.cancelled);
        assert_eq!(full.pairs.len(), 3);
    }

    #[test]
    fn eps_zero_requires_equality() {
        let b = community("B", &[&[1, 2]]);
        let a = community("A", &[&[1, 2], &[1, 3]]);
        let opts = CsjOptions::new(0);
        let out = ap_baseline(&b, &a, &opts);
        assert_eq!(out.pairs, vec![(0, 0)]);
    }
}
