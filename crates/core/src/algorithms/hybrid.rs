//! The MinMax–SuperEGO hybrid (the paper's Section 6.2 discussion).
//!
//! The paper observes that both SuperEGO methods "essentially replace the
//! NestedLoopJoin part of the original SuperEGO framework with that used
//! in Baseline", and that the MinMax encoded nested loop is emphatically
//! faster than the Baseline one — so "a combined algorithm MinMax-SuperEGO
//! would be faster than SuperEGO itself ... even in that theoretic case of
//! non-normalized data". This module builds that combination:
//!
//! * the SuperEGO recursion runs **directly on the raw integer counters**
//!   (no normalisation, hence no accuracy loss — the paper's "theoretic
//!   case" made real, since our grid is generic over the scalar type);
//! * the grid cell width is the integer `eps`, so EGO-strategy pruning is
//!   exact for the strict per-dimension condition;
//! * the leaf nested loop first consults the **MinMax encoding filters**
//!   (encoded-ID window, then part/range overlap) before paying for a
//!   d-dimensional comparison.
//!
//! The leaves stream through the kernel's `drive_ego` like SuperEGO's:
//! **Ap-Hybrid** = Hybrid × [`GreedySink`], **Ex-Hybrid** = Hybrid ×
//! [`CollectSink`]. Filter rejections inside the leaf are reported as
//! NO OVERLAP events (both the ID-window and the part/range filter are
//! encoding-level rejections); full comparisons report NO MATCH / MATCH
//! as usual.

use csj_ego::{EgoStats, PointSet, SuperEgoParams};

use crate::algorithms::kernel::{
    drive_ego, CollectSink, DriveCtx, GreedySink, Judgement, PairSink,
};
use crate::algorithms::{CsjOptions, RawJoin};
use crate::community::Community;
use crate::encoding::{encode_vector_a, encode_vector_b, part_bounds};
use crate::quant::{LaneView, QuantizedCommunity};

/// Per-user encodings addressable by community index (unsorted — the EGO
/// order provides the traversal; the encodings only filter).
struct HybridIndex {
    parts: usize,
    b_ids: Vec<u64>,
    b_parts: Vec<u64>,
    a_mins: Vec<u64>,
    a_maxs: Vec<u64>,
    a_lo: Vec<u64>,
    a_hi: Vec<u64>,
}

impl HybridIndex {
    fn build(b: &Community, a: &Community, eps: u32, parts: usize) -> Self {
        let bounds = part_bounds(b.d(), parts);
        let mut b_ids = Vec::with_capacity(b.len());
        let mut b_parts = Vec::with_capacity(b.len() * parts);
        for i in 0..b.len() {
            b_ids.push(encode_vector_b(b.vector(i), &bounds, &mut b_parts));
        }
        let mut a_mins = Vec::with_capacity(a.len());
        let mut a_maxs = Vec::with_capacity(a.len());
        let mut a_lo = Vec::with_capacity(a.len() * parts);
        let mut a_hi = Vec::with_capacity(a.len() * parts);
        for j in 0..a.len() {
            let (min, max) = encode_vector_a(a.vector(j), eps, &bounds, &mut a_lo, &mut a_hi);
            a_mins.push(min);
            a_maxs.push(max);
        }
        Self {
            parts,
            b_ids,
            b_parts,
            a_mins,
            a_maxs,
            a_lo,
            a_hi,
        }
    }

    /// Both encoding filters for `(b_user, a_user)` community indices.
    #[inline]
    fn passes_filters(&self, bi: usize, aj: usize) -> bool {
        let id = self.b_ids[bi];
        if id < self.a_mins[aj] || id > self.a_maxs[aj] {
            return false;
        }
        let p = self.parts;
        let bp = &self.b_parts[bi * p..(bi + 1) * p];
        let lo = &self.a_lo[aj * p..(aj + 1) * p];
        let hi = &self.a_hi[aj * p..(aj + 1) * p];
        bp.iter()
            .zip(lo.iter().zip(hi.iter()))
            .all(|(&s, (&l, &h))| s >= l && s <= h)
    }
}

/// Build the integer-domain EGO point sets (cell width = eps).
fn prepare(b: &Community, a: &Community, eps: u32) -> (PointSet<u32>, PointSet<u32>) {
    let width = eps.max(1);
    let ps_b = PointSet::build(b.d(), width, b.raw_data().to_vec(), None);
    let ps_a = PointSet::build(a.d(), width, a.raw_data().to_vec(), None);
    (ps_b, ps_a)
}

/// The leaf judgement shared by both hybrid modes: encoding filters in
/// front of each full comparison (run on the pair's resolved
/// [`LaneView`]). Positions here are EGO point-set positions, translated
/// to community indices via the point ids.
fn hybrid_judgement(
    index: &HybridIndex,
    view: &LaneView,
    ps_b: &PointSet<u32>,
    ps_a: &PointSet<u32>,
    i: usize,
    j: usize,
) -> Judgement {
    let bi = ps_b.id(i) as usize;
    let aj = ps_a.id(j) as usize;
    if !index.passes_filters(bi, aj) {
        return Judgement::NoOverlap;
    }
    if view.matches(bi, aj) {
        Judgement::Match
    } else {
        Judgement::NoMatch
    }
}

/// Quantized side tables for the leaf comparisons (`Off` skips them).
fn quantize(
    b: &Community,
    a: &Community,
    opts: &CsjOptions,
) -> Option<(QuantizedCommunity, QuantizedCommunity)> {
    opts.quant
        .enabled()
        .then(|| (QuantizedCommunity::build(b), QuantizedCommunity::build(a)))
}

/// Approximate hybrid: EGO recursion × greedy sink with the encoding
/// filters in front of each comparison.
pub fn ap_hybrid(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let (ps_b, ps_a) = prepare(b, a, opts.eps);
    let index = HybridIndex::build(b, a, opts.eps, opts.encoding.effective_parts(b.d()));
    let quant = quantize(b, a, opts);
    let view = LaneView::select(
        opts.quant,
        b,
        a,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts.eps,
    );
    let setup = setup.elapsed();
    let params = SuperEgoParams { t: opts.superego.t };
    let mut stats = EgoStats::default();
    let mut out = RawJoin::default();
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    ctx.telemetry.lane_bits = view.lane_bits();
    let mut sink = GreedySink::new(b.len(), a.len());
    drive_ego(
        &ps_b,
        &ps_a,
        params,
        &mut stats,
        &mut |i, j| hybrid_judgement(&index, &view, &ps_b, &ps_a, i, j),
        &mut ctx,
        &mut sink,
    );
    ctx.cancelled |= opts.is_cancelled();
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.timings.setup = setup;
    out.ego = Some(stats);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

/// Exact hybrid: EGO recursion × collect sink, one matcher call.
pub fn ex_hybrid(b: &Community, a: &Community, opts: &CsjOptions) -> RawJoin {
    let setup = std::time::Instant::now();
    let (ps_b, ps_a) = prepare(b, a, opts.eps);
    let index = HybridIndex::build(b, a, opts.eps, opts.encoding.effective_parts(b.d()));
    let quant = quantize(b, a, opts);
    let view = LaneView::select(
        opts.quant,
        b,
        a,
        quant.as_ref().map(|q| &q.0),
        quant.as_ref().map(|q| &q.1),
        opts.eps,
    );
    let setup = setup.elapsed();
    let params = SuperEgoParams { t: opts.superego.t };
    let mut stats = EgoStats::default();
    let mut out = RawJoin::default();
    let mut ctx = DriveCtx::new(opts.cancel.as_ref());
    ctx.telemetry.lane_bits = view.lane_bits();
    // Honour cancellation before paying for the matcher: the empty
    // matching is trivially valid and the flag tells the caller why.
    let mut sink = CollectSink::whole(b.len(), a.len(), opts.matcher, false);
    drive_ego(
        &ps_b,
        &ps_a,
        params,
        &mut stats,
        &mut |i, j| hybrid_judgement(&index, &view, &ps_b, &ps_a, i, j),
        &mut ctx,
        &mut sink,
    );
    ctx.cancelled |= opts.is_cancelled();
    out.pairs = sink.finish(&mut ctx);
    out.timings = ctx.phase_timings();
    out.timings.setup = setup;
    out.ego = Some(stats);
    out.cancelled = ctx.cancelled;
    out.telemetry = ctx.telemetry;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::baseline::ex_baseline;
    use crate::algorithms::minmax::ex_minmax;
    use crate::algorithms::CsjOptions;
    use crate::vectors_match;

    fn community(name: &str, rows: &[Vec<u32>]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64 + 1, r).unwrap();
        }
        c
    }

    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    #[test]
    fn section3_example() {
        let b = community("B", &[vec![3, 4, 2], vec![2, 2, 3]]);
        let a = community("A", &[vec![2, 3, 5], vec![2, 3, 1], vec![3, 3, 3]]);
        let opts = CsjOptions::new(1).with_parts(3);
        assert_eq!(ex_hybrid(&b, &a, &opts).pairs.len(), 2);
        assert!(!ap_hybrid(&b, &a, &opts).pairs.is_empty());
    }

    #[test]
    fn exact_hybrid_is_lossless_even_on_huge_counters() {
        // Counters beyond f32's 24-bit mantissa — the regime where the
        // normalised SuperEGO loses accuracy. The integer-domain hybrid
        // must agree with Ex-Baseline exactly.
        let big = 1u32 << 25;
        let rows_b: Vec<Vec<u32>> = (0..10).map(|i| vec![big + i, big - i]).collect();
        let rows_a: Vec<Vec<u32>> = (0..12).map(|i| vec![big + i + 1, big - i]).collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let opts = CsjOptions::new(1).with_parts(2);
        assert_eq!(
            ex_hybrid(&b, &a, &opts).pairs.len(),
            ex_baseline(&b, &a, &opts).pairs.len()
        );
    }

    #[test]
    fn agrees_with_exact_minmax_on_random_data() {
        let mut rng = lcg(2024);
        for (d, eps) in [(4usize, 1u32), (6, 2), (5, 0)] {
            let rows_b: Vec<Vec<u32>> = (0..80)
                .map(|_| (0..d).map(|_| rng() % 15).collect())
                .collect();
            let rows_a: Vec<Vec<u32>> = (0..100)
                .map(|_| (0..d).map(|_| rng() % 15).collect())
                .collect();
            let b = community("B", &rows_b);
            let a = community("A", &rows_a);
            let mut opts = CsjOptions::new(eps).with_parts(2);
            opts.superego.t = 8;
            assert_eq!(
                ex_hybrid(&b, &a, &opts).pairs.len(),
                ex_minmax(&b, &a, &opts).pairs.len(),
                "d={d} eps={eps}"
            );
        }
    }

    #[test]
    fn filters_reject_before_comparing() {
        // Two clusters whose encoded IDs are far apart: all leaf checks
        // must be settled by the filters or pruned outright.
        let rows_b: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i]).collect();
        let rows_a: Vec<Vec<u32>> = (0..8).map(|i| vec![1000 + i, 1000 + i]).collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let opts = CsjOptions::new(1).with_parts(2);
        let out = ex_hybrid(&b, &a, &opts);
        assert!(out.pairs.is_empty());
        assert_eq!(out.telemetry.events.full_comparisons(), 0);
        let stats = out.ego.unwrap();
        assert!(stats.prunes >= 1, "EGO should prune the separated clusters");
    }

    #[test]
    fn approximate_is_subset_of_exact() {
        let mut rng = lcg(321);
        let d = 4;
        let rows_b: Vec<Vec<u32>> = (0..70)
            .map(|_| (0..d).map(|_| rng() % 10).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..90)
            .map(|_| (0..d).map(|_| rng() % 10).collect())
            .collect();
        let b = community("B", &rows_b);
        let a = community("A", &rows_a);
        let opts = CsjOptions::new(1).with_parts(2);
        let ap = ap_hybrid(&b, &a, &opts);
        let ex = ex_hybrid(&b, &a, &opts);
        assert!(ap.pairs.len() <= ex.pairs.len());
        for &(x, y) in &ap.pairs {
            assert!(vectors_match(b.vector(x as usize), a.vector(y as usize), 1));
        }
    }
}
