//! The CSJ join methods and their shared driver.
//!
//! Six paper methods (approximate/exact × Baseline/MinMax/SuperEGO) plus
//! the hybrid MinMax–SuperEGO pair sketched in the paper's Section 6.2
//! discussion. All are invoked through [`run`], which validates the
//! problem instance, dispatches, times the execution and assembles a
//! [`JoinOutcome`].

mod baseline;
mod hybrid;
pub(crate) mod kernel;
pub(crate) mod minmax;
mod superego;

pub use baseline::{ap_baseline, ex_baseline};
pub use hybrid::{ap_hybrid, ex_hybrid};
pub use minmax::{ap_minmax, ex_minmax};
pub use superego::{ap_superego, ex_superego};

use std::time::{Duration, Instant};

use csj_ego::EgoStats;
use csj_matching::MatcherKind;

use crate::cancel::CancelToken;
use crate::community::Community;
use crate::encoding::EncodingParams;
use crate::error::CsjError;
use crate::events::EventCounters;
use crate::quant::QuantMode;
use crate::similarity::Similarity;
use crate::telemetry::JoinTelemetry;
use crate::validate_sizes;

/// The CSJ method to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsjMethod {
    /// Approximate nested-loop join (Section 5.1).
    ApBaseline,
    /// Exact nested-loop join + one CSF call (Section 5.1).
    ExBaseline,
    /// Approximate MinMax (Algorithm Ap-MinMax, Section 4.1).
    ApMinMax,
    /// Exact MinMax (Algorithm Ex-MinMax, Section 4.2).
    ExMinMax,
    /// Approximate SuperEGO adaptation (Section 5.2).
    ApSuperEgo,
    /// Exact SuperEGO adaptation (Section 5.2).
    ExSuperEgo,
    /// Approximate MinMax–SuperEGO hybrid (Section 6.2 discussion):
    /// SuperEGO recursion on raw integers with the encoded greedy leaf.
    ApHybrid,
    /// Exact MinMax–SuperEGO hybrid: integer recursion, encoded all-pairs
    /// leaf, one matcher call.
    ExHybrid,
    /// Delegate method selection to the cost-based planner (the paper's
    /// §6.2 "combined algorithm"): [`run`] resolves this to the cheapest
    /// concrete method for the instance via [`crate::plan::CostTable`],
    /// and engine callers resolve it through their calibrated planner.
    /// Never appears in [`CsjMethod::ALL`] — every plan produces one of
    /// the eight concrete methods above.
    Auto,
}

impl CsjMethod {
    /// The six methods evaluated in the paper, in table column order.
    pub const PAPER: [CsjMethod; 6] = [
        CsjMethod::ApBaseline,
        CsjMethod::ApMinMax,
        CsjMethod::ApSuperEgo,
        CsjMethod::ExBaseline,
        CsjMethod::ExMinMax,
        CsjMethod::ExSuperEgo,
    ];

    /// All methods, including the hybrid extensions.
    pub const ALL: [CsjMethod; 8] = [
        CsjMethod::ApBaseline,
        CsjMethod::ApMinMax,
        CsjMethod::ApSuperEgo,
        CsjMethod::ApHybrid,
        CsjMethod::ExBaseline,
        CsjMethod::ExMinMax,
        CsjMethod::ExSuperEgo,
        CsjMethod::ExHybrid,
    ];

    /// Whether the method is exact (gathers all candidates and matches
    /// one-to-one optimally w.r.t. its matcher). [`CsjMethod::Auto`] is
    /// not exact: the planner may legally resolve it to an approximate
    /// method, so callers that *require* exactness must not rely on it.
    pub fn is_exact(self) -> bool {
        match self {
            CsjMethod::ExBaseline
            | CsjMethod::ExMinMax
            | CsjMethod::ExSuperEgo
            | CsjMethod::ExHybrid => true,
            CsjMethod::ApBaseline
            | CsjMethod::ApMinMax
            | CsjMethod::ApSuperEgo
            | CsjMethod::ApHybrid
            | CsjMethod::Auto => false,
        }
    }

    /// The approximate counterpart of this method: each Ex-* variant
    /// maps to the Ap-* variant of the same family (Section 5's ladder);
    /// Ap-* methods map to themselves, and [`CsjMethod::Auto`] stays
    /// delegated. Because approximate CSJ never over-counts and greedy
    /// maximal matchings reach at least half the maximum, the
    /// counterpart's score is a lower bound on the exact score and is
    /// within a factor of two of it — the property that makes
    /// exact→approximate degradation sound.
    pub fn approximate_counterpart(self) -> CsjMethod {
        match self {
            CsjMethod::ExBaseline => CsjMethod::ApBaseline,
            CsjMethod::ExMinMax => CsjMethod::ApMinMax,
            CsjMethod::ExSuperEgo => CsjMethod::ApSuperEgo,
            CsjMethod::ExHybrid => CsjMethod::ApHybrid,
            CsjMethod::ApBaseline => CsjMethod::ApBaseline,
            CsjMethod::ApMinMax => CsjMethod::ApMinMax,
            CsjMethod::ApSuperEgo => CsjMethod::ApSuperEgo,
            CsjMethod::ApHybrid => CsjMethod::ApHybrid,
            CsjMethod::Auto => CsjMethod::Auto,
        }
    }

    /// Stable name used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            CsjMethod::ApBaseline => "ap-baseline",
            CsjMethod::ExBaseline => "ex-baseline",
            CsjMethod::ApMinMax => "ap-minmax",
            CsjMethod::ExMinMax => "ex-minmax",
            CsjMethod::ApSuperEgo => "ap-superego",
            CsjMethod::ExSuperEgo => "ex-superego",
            CsjMethod::ApHybrid => "ap-hybrid",
            CsjMethod::ExHybrid => "ex-hybrid",
            CsjMethod::Auto => "auto",
        }
    }
}

impl std::str::FromStr for CsjMethod {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(CsjMethod::Auto);
        }
        CsjMethod::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| format!("unknown CSJ method: {s:?}"))
    }
}

impl std::fmt::Display for CsjMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning of the SuperEGO-based methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuperEgoConfig {
    /// Leaf threshold `t` of the recursion (paper's parameter `t`).
    pub t: usize,
    /// Apply Super-EGO dimension reordering before sorting.
    pub reorder: bool,
    /// Worker threads for the exact pair enumeration (1 = serial; the
    /// paper runs SuperEGO single-threaded for fair comparison).
    pub threads: usize,
    /// Normalisation divisor. `None` uses the larger of the two
    /// communities' maxima; the paper uses the dataset-wide maximum
    /// (152 532 for VK, 500 000 for Synthetic).
    pub max_value: Option<u32>,
    /// Use the aggregate-L1 predicate instead of the per-dimension one
    /// (ablation only; overestimates CSJ similarity — see `csj_ego`).
    pub l1_predicate: bool,
}

impl Default for SuperEgoConfig {
    fn default() -> Self {
        Self {
            t: 32,
            reorder: true,
            threads: 1,
            max_value: None,
            l1_predicate: false,
        }
    }
}

/// Options shared by all CSJ methods.
#[derive(Debug, Clone, PartialEq)]
pub struct CsjOptions {
    /// The per-dimension absolute-difference threshold.
    pub eps: u32,
    /// MinMax encoding parameters (part count).
    pub encoding: EncodingParams,
    /// One-to-one matcher used by the exact methods (paper: CSF).
    pub matcher: MatcherKind,
    /// SuperEGO tuning.
    pub superego: SuperEgoConfig,
    /// Enforce `ceil(|A|/2) <= |B| <= |A|`. The paper always enforces it;
    /// disabling is useful for diagnostics on arbitrary community pairs.
    pub enforce_sizes: bool,
    /// Enable the `skip`/`offset` prefix pruning of the Baseline and
    /// MinMax loops (Section 4.1). On by default; disabling exists for
    /// the `ablation_skip` bench that quantifies its contribution.
    pub offset_pruning: bool,
    /// Worker threads for the exact methods' candidate enumeration
    /// (Ex-Baseline partitions `B`; Ex-SuperEGO uses its own
    /// `superego.threads`). 1 = serial, the paper's setting.
    pub threads: usize,
    /// Cooperative cancellation hook. When set, the join loops poll the
    /// token at per-row granularity and stop early once it trips; the
    /// truncated result is reported via [`JoinOutcome::cancelled`].
    /// `None` (the default) runs to completion.
    pub cancel: Option<CancelToken>,
    /// Quantized fast-path control: `Auto`/`On` let the integer-domain
    /// kernels run on the narrowest lossless lane (`u8`/`u16`/`u32`)
    /// with cache-blocked tiling where the scan order permits; `Off`
    /// forces the pre-quantization scalar kernels. Results are
    /// identical in every mode (see `crate::quant`).
    pub quant: QuantMode,
}

impl CsjOptions {
    /// Defaults from the paper: 4 encoding parts, CSF matcher, size
    /// constraint enforced.
    pub fn new(eps: u32) -> Self {
        Self {
            eps,
            encoding: EncodingParams::default(),
            matcher: MatcherKind::Csf,
            superego: SuperEgoConfig::default(),
            enforce_sizes: true,
            offset_pruning: true,
            threads: 1,
            cancel: None,
            quant: QuantMode::default(),
        }
    }

    /// Builder-style: set the matcher.
    pub fn with_matcher(mut self, matcher: MatcherKind) -> Self {
        self.matcher = matcher;
        self
    }

    /// Builder-style: set the encoding part count.
    pub fn with_parts(mut self, parts: usize) -> Self {
        self.encoding = EncodingParams { parts };
        self
    }

    /// Builder-style: attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Builder-style: set the quantized fast-path mode.
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }

    /// Whether the attached token (if any) has been tripped.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// Wall-clock breakdown of one join's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Input preparation: encoding (MinMax), normalisation + dimension
    /// reordering + EGO sort (SuperEGO/hybrid). Zero for Baseline.
    pub setup: Duration,
    /// The pairing loop / recursion, including filter checks and full
    /// comparisons.
    pub pairing: Duration,
    /// One-to-one matcher time (CSF flushes in Ex-MinMax, the single
    /// final matcher call elsewhere). Zero for approximate methods.
    pub matching: Duration,
}

impl PhaseTimings {
    /// Total across the three phases.
    pub fn total(&self) -> Duration {
        self.setup + self.pairing + self.matching
    }
}

/// Intermediate result of one algorithm before [`run`] packages it into a
/// [`JoinOutcome`]. Exposed because the individual algorithm functions
/// (`ap_minmax`, `ex_baseline`, ...) are part of the public API for
/// benchmarking without the driver's validation overhead.
#[derive(Debug, Clone, Default)]
pub struct RawJoin {
    /// Matched pairs as `(b_index, a_index)` into the two communities.
    pub pairs: Vec<(u32, u32)>,
    /// Kernel telemetry of the drive (event counters, stream depths,
    /// prune histograms, matcher flushes, cancel polls).
    pub telemetry: JoinTelemetry,
    /// Recursion statistics for the EGO-based methods.
    pub ego: Option<EgoStats>,
    /// Per-phase wall-clock breakdown.
    pub timings: PhaseTimings,
    /// The join stopped early because [`CsjOptions::cancel`] tripped; the
    /// pairs above are a valid but possibly incomplete matching.
    pub cancelled: bool,
}

/// The full result of a CSJ join.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The method that produced this outcome.
    pub method: CsjMethod,
    /// The similarity score (Equation 1).
    pub similarity: Similarity,
    /// Matched pairs as `(b_index, a_index)` into the two communities.
    pub pairs: Vec<(u32, u32)>,
    /// Pairing-process event counters (a copy of `telemetry.events`,
    /// kept as a first-class field for reporting convenience).
    pub events: EventCounters,
    /// Kernel telemetry of the join (per-row candidate-stream depth,
    /// prune histograms, matcher flush counts, cancel polls).
    pub telemetry: JoinTelemetry,
    /// Recursion statistics (EGO-based methods only).
    pub ego_stats: Option<EgoStats>,
    /// Wall-clock execution time (excludes input validation).
    pub elapsed: Duration,
    /// Per-phase breakdown (setup / pairing / matching).
    pub timings: PhaseTimings,
    /// The join was cancelled mid-flight (see [`CsjOptions::cancel`]);
    /// `similarity` and `pairs` reflect only the work done before the
    /// token tripped and may under-count.
    pub cancelled: bool,
}

impl JoinOutcome {
    /// Resolve the matched pairs into external [`crate::UserId`]s.
    pub fn pairs_as_user_ids(&self, b: &Community, a: &Community) -> Vec<(u64, u64)> {
        self.pairs
            .iter()
            .map(|&(i, j)| (b.user_id(i as usize), a.user_id(j as usize)))
            .collect()
    }
}

/// Orient two communities for CSJ: returns `(smaller, larger)` — the paper
/// depicts "the less-followed community by B and the more-followed
/// community by A". Ties keep the argument order.
pub fn orient<'c>(x: &'c Community, y: &'c Community) -> (&'c Community, &'c Community) {
    if x.len() <= y.len() {
        (x, y)
    } else {
        (y, x)
    }
}

/// Validate inputs and execute `method` on communities `b` (smaller) and
/// `a` (larger).
///
/// Returns [`CsjError::DimensionMismatch`] when the communities disagree
/// on `d`, [`CsjError::SizeConstraint`] when
/// `ceil(|A|/2) <= |B| <= |A|` fails (unless
/// [`CsjOptions::enforce_sizes`] is off) and [`CsjError::InvalidOptions`]
/// for bad tuning values.
pub fn run(
    method: CsjMethod,
    b: &Community,
    a: &Community,
    opts: &CsjOptions,
) -> Result<JoinOutcome, CsjError> {
    if b.d() != a.d() {
        return Err(CsjError::DimensionMismatch {
            b_d: b.d(),
            a_d: a.d(),
        });
    }
    if opts.enforce_sizes {
        validate_sizes(b.len(), a.len())?;
    }
    opts.encoding.validate(b.d())?;
    if opts.superego.t < 2 {
        return Err(CsjError::InvalidOptions(format!(
            "SuperEGO leaf threshold t must be >= 2, got {}",
            opts.superego.t
        )));
    }
    if opts.superego.threads == 0 || opts.threads == 0 {
        return Err(CsjError::InvalidOptions(
            "thread counts must be >= 1".into(),
        ));
    }

    // Resolve delegated selection before dispatch so JoinOutcome::method
    // is always a concrete method. Standalone `run` has no latency
    // history, so the seeded table decides; engine callers resolve Auto
    // through their calibrated planner before reaching this point.
    let method = if method == CsjMethod::Auto {
        let input = crate::plan::PlanInput::new(
            b.len(),
            a.len(),
            b.d(),
            opts.eps,
            crate::plan::Exactness::Any,
        );
        crate::plan::CostTable::seeded().plan(&input).chosen
    } else {
        method
    };

    let start = Instant::now();
    let raw = match method {
        CsjMethod::ApBaseline => ap_baseline(b, a, opts),
        CsjMethod::ExBaseline => ex_baseline(b, a, opts),
        CsjMethod::ApMinMax => ap_minmax(b, a, opts),
        CsjMethod::ExMinMax => ex_minmax(b, a, opts),
        CsjMethod::ApSuperEgo => ap_superego(b, a, opts),
        CsjMethod::ExSuperEgo => ex_superego(b, a, opts),
        CsjMethod::ApHybrid => ap_hybrid(b, a, opts),
        CsjMethod::ExHybrid => ex_hybrid(b, a, opts),
        CsjMethod::Auto => unreachable!("Auto resolved above"),
    };
    let elapsed = start.elapsed();

    debug_assert!(raw.pairs.len() <= b.len());
    Ok(JoinOutcome {
        method,
        similarity: Similarity::new(raw.pairs.len(), b.len()),
        pairs: raw.pairs,
        events: raw.telemetry.events,
        telemetry: raw.telemetry,
        ego_stats: raw.ego,
        elapsed,
        timings: raw.timings,
        cancelled: raw.cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str, rows: &[&[u32]]) -> Community {
        let mut c = Community::new(name, rows[0].len());
        for (i, r) in rows.iter().enumerate() {
            c.push(i as u64, r).unwrap();
        }
        c
    }

    #[test]
    fn method_name_roundtrip() {
        for m in CsjMethod::ALL {
            let parsed: CsjMethod = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert_eq!("auto".parse::<CsjMethod>().unwrap(), CsjMethod::Auto);
        assert_eq!(CsjMethod::Auto.name(), "auto");
        assert!("bogus".parse::<CsjMethod>().is_err());
    }

    #[test]
    fn exactness_flags() {
        assert!(!CsjMethod::ApBaseline.is_exact());
        assert!(CsjMethod::ExBaseline.is_exact());
        assert!(CsjMethod::ExHybrid.is_exact());
        assert!(!CsjMethod::ApHybrid.is_exact());
        // Auto may resolve to an approximate method, so it must never
        // count as exact (breaker gating, refine caching rely on this).
        assert!(!CsjMethod::Auto.is_exact());
    }

    #[test]
    fn approximate_counterpart_is_exhaustive() {
        use CsjMethod::*;
        let expected = [
            (ApBaseline, ApBaseline),
            (ApMinMax, ApMinMax),
            (ApSuperEgo, ApSuperEgo),
            (ApHybrid, ApHybrid),
            (ExBaseline, ApBaseline),
            (ExMinMax, ApMinMax),
            (ExSuperEgo, ApSuperEgo),
            (ExHybrid, ApHybrid),
            (Auto, Auto),
        ];
        for (m, want) in expected {
            assert_eq!(m.approximate_counterpart(), want, "{m}");
        }
        // Every concrete counterpart is approximate and idempotent.
        for m in CsjMethod::ALL {
            let ap = m.approximate_counterpart();
            assert!(!ap.is_exact(), "{m}");
            assert_eq!(ap.approximate_counterpart(), ap, "{m}");
        }
    }

    #[test]
    fn auto_is_not_listed_but_resolves_to_a_concrete_method() {
        assert!(!CsjMethod::ALL.contains(&CsjMethod::Auto));
        assert!(!CsjMethod::PAPER.contains(&CsjMethod::Auto));
        let b = tiny("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = tiny("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let out = run(CsjMethod::Auto, &b, &a, &CsjOptions::new(1).with_parts(3)).unwrap();
        assert_ne!(out.method, CsjMethod::Auto);
        assert!(CsjMethod::ALL.contains(&out.method));
        assert!(out.similarity.matched >= 1);
    }

    #[test]
    fn orient_puts_smaller_first() {
        let small = tiny("s", &[&[1, 1]]);
        let large = tiny("l", &[&[1, 1], &[2, 2]]);
        let (b, a) = orient(&large, &small);
        assert_eq!(b.name(), "s");
        assert_eq!(a.name(), "l");
        let (b, a) = orient(&small, &large);
        assert_eq!((b.name(), a.name()), ("s", "l"));
    }

    #[test]
    fn run_rejects_dimension_mismatch() {
        let b = tiny("b", &[&[1, 2]]);
        let a = tiny("a", &[&[1, 2, 3]]);
        let err = run(CsjMethod::ApBaseline, &b, &a, &CsjOptions::new(1)).unwrap_err();
        assert!(matches!(err, CsjError::DimensionMismatch { .. }));
    }

    #[test]
    fn run_enforces_size_constraint() {
        let b = tiny("b", &[&[1, 2]]);
        let a = tiny("a", &[&[1, 2], &[3, 4], &[5, 6]]);
        let err = run(
            CsjMethod::ApBaseline,
            &b,
            &a,
            &CsjOptions::new(1).with_parts(2),
        )
        .unwrap_err();
        assert!(matches!(err, CsjError::SizeConstraint { nb: 1, na: 3 }));
        let mut opts = CsjOptions::new(1).with_parts(2);
        opts.enforce_sizes = false;
        assert!(run(CsjMethod::ApBaseline, &b, &a, &opts).is_ok());
    }

    #[test]
    fn run_rejects_bad_options() {
        let b = tiny("b", &[&[1, 2]]);
        let a = tiny("a", &[&[1, 2]]);
        let opts = CsjOptions::new(1).with_parts(0); // zero parts
        assert!(matches!(
            run(CsjMethod::ApMinMax, &b, &a, &opts).unwrap_err(),
            CsjError::InvalidOptions(_)
        ));
        let mut opts = CsjOptions::new(1);
        opts.superego.t = 1;
        assert!(run(CsjMethod::ApSuperEgo, &b, &a, &opts).is_err());
        let mut opts = CsjOptions::new(1);
        opts.superego.threads = 0;
        assert!(run(CsjMethod::ExSuperEgo, &b, &a, &opts).is_err());
    }

    #[test]
    fn phase_timings_are_populated() {
        let rows: Vec<Vec<u32>> = (0..60u32).map(|i| vec![i % 9, i % 7, i % 5]).collect();
        let refs: Vec<(u64, Vec<u32>)> = rows
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect();
        let b = Community::from_rows("B", 3, refs.clone()).unwrap();
        let a = Community::from_rows("A", 3, refs).unwrap();
        let opts = CsjOptions::new(1).with_parts(3);
        for m in CsjMethod::ALL {
            let out = run(m, &b, &a, &opts).unwrap();
            let t = out.timings;
            assert!(
                t.total() <= out.elapsed + std::time::Duration::from_millis(5),
                "{m}: phases exceed elapsed"
            );
            assert!(
                t.pairing > std::time::Duration::ZERO,
                "{m}: pairing phase untimed"
            );
            if matches!(
                m,
                CsjMethod::ExBaseline | CsjMethod::ExSuperEgo | CsjMethod::ExHybrid
            ) {
                // These run exactly one matcher call over a non-empty graph.
                assert!(
                    t.matching > std::time::Duration::ZERO,
                    "{m}: matching untimed"
                );
            }
            if matches!(
                m,
                CsjMethod::ApMinMax
                    | CsjMethod::ExMinMax
                    | CsjMethod::ApSuperEgo
                    | CsjMethod::ExSuperEgo
            ) {
                assert!(t.setup > std::time::Duration::ZERO, "{m}: setup untimed");
            }
        }
    }

    #[test]
    fn paper_section3_example_all_methods() {
        // b1={3,4,2}, b2={2,2,3}; a1={2,3,5}, a2={2,3,1}, a3={3,3,3}.
        // Integer-domain exact methods: similarity 100%. Approximate:
        // >= 50%. The SuperEGO pair works on normalised f32 data where
        // every candidate here is a boundary pair, so it may under-count
        // (the accuracy loss the paper reports) but never over-count.
        let b = tiny("B", &[&[3, 4, 2], &[2, 2, 3]]);
        let a = tiny("A", &[&[2, 3, 5], &[2, 3, 1], &[3, 3, 3]]);
        let opts = CsjOptions::new(1).with_parts(3);
        for m in CsjMethod::ALL {
            let out = run(m, &b, &a, &opts).unwrap();
            let float_domain = matches!(m, CsjMethod::ApSuperEgo | CsjMethod::ExSuperEgo);
            if float_domain {
                assert!(out.similarity.matched <= 2, "{m} over-counted");
            } else if m.is_exact() {
                assert_eq!(out.similarity.matched, 2, "{m} must find both pairs");
            } else {
                assert!(
                    out.similarity.matched >= 1,
                    "{m} must find at least one pair"
                );
            }
        }
    }
}
