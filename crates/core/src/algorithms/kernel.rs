//! The substrate × sink join kernel.
//!
//! Every CSJ method is the product of a pairing **substrate** (how
//! candidate `(b, a)` pairs are generated: Baseline's nested loop,
//! MinMax's encoded sort-merge scan, the two EGO recursions) and a
//! **sink** (how candidates are consumed: [`GreedySink`] takes the first
//! match and consumes both users, [`CollectSink`] gathers every edge for
//! a one-to-one matcher). Each substrate is written once as a generic
//! `drive` function; the eight public entry points are thin
//! `substrate × sink` instantiations.
//!
//! Cross-cutting concerns live here instead of being copy-pasted into
//! each method: the cancel poll site, [`JoinTelemetry`] recording, the
//! `skip`/`offset` contiguous-prefix pruning ([`PrefixPruner`]) and the
//! matcher flush bookkeeping (including Ex-MinMax's `maxV` segment
//! flushing). The [`Tape`] hook replays ordered event traces for the
//! paper-figure tests without any production overhead beyond a
//! predictable `Option` check.

use std::ops::Range;
use std::time::{Duration, Instant};

use csj_ego::{super_ego_join, EgoStats, PointSet, Scalar, SuperEgoParams};
use csj_matching::{run_matcher, GraphBuilder, MatchGraph, MatcherKind};

use crate::cancel::CancelToken;
use crate::events::Event;
use crate::quant::LaneView;
use crate::telemetry::JoinTelemetry;

/// Verdict of the substrate's filters plus (when they pass) the full
/// d-dimensional comparison for one candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Judgement {
    /// An encoding-level filter rejected the pair (NO OVERLAP).
    NoOverlap,
    /// Full comparison executed and failed (NO MATCH).
    NoMatch,
    /// Full comparison executed and succeeded (MATCH).
    Match,
}

impl Judgement {
    /// The event a judgement records.
    pub(crate) fn event(self) -> Event {
        match self {
            Judgement::NoOverlap => Event::NoOverlap,
            Judgement::NoMatch => Event::NoMatch,
            Judgement::Match => Event::Match,
        }
    }
}

/// Observes the ordered pairing process — the unit tests replaying the
/// paper's Figures 2 and 3 install one; production paths leave it unset.
pub(crate) trait Tape {
    fn event(&mut self, ev: Event, b_pos: usize, a_pos: usize);
    fn flush(&mut self, edges: &[(u32, u32)]);
}

/// Shared per-drive state: telemetry, the single cancel poll site and
/// matcher timing. Constructed once per join and threaded through the
/// substrate driver and the sink.
pub(crate) struct DriveCtx<'t> {
    /// Telemetry of the drive so far.
    pub telemetry: JoinTelemetry,
    /// The drive stopped early because the token tripped.
    pub cancelled: bool,
    /// Accumulated one-to-one matcher wall-clock (segment flushes plus
    /// the final call).
    pub matcher_time: Duration,
    /// When the context was created — the drive's phase clock.
    started: Instant,
    cancel: Option<&'t CancelToken>,
    tape: Option<&'t mut dyn Tape>,
    row_candidates: u64,
    row_prunes: u64,
}

impl<'t> DriveCtx<'t> {
    pub(crate) fn new(cancel: Option<&'t CancelToken>) -> Self {
        Self {
            telemetry: JoinTelemetry::default(),
            cancelled: false,
            matcher_time: Duration::ZERO,
            started: Instant::now(),
            cancel,
            tape: None,
            row_candidates: 0,
            row_prunes: 0,
        }
    }

    /// Phase timings of the drive: `pairing` is the wall-clock since
    /// the context was created minus time spent inside the one-to-one
    /// matcher, `matching` is the matcher time, and `setup` is zero
    /// (encoding/index builds happen before the context exists, so
    /// entry points overwrite it). Call after the sink's `finish` so
    /// the matcher time is final — this is the one place the
    /// `pairing`/`matching` split is computed for all eight methods.
    pub(crate) fn phase_timings(&self) -> crate::algorithms::PhaseTimings {
        crate::algorithms::PhaseTimings {
            setup: Duration::ZERO,
            pairing: self.started.elapsed().saturating_sub(self.matcher_time),
            matching: self.matcher_time,
        }
    }

    /// Attach an ordered-trace observer (figure tests only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn with_tape(cancel: Option<&'t CancelToken>, tape: &'t mut dyn Tape) -> Self {
        let mut ctx = Self::new(cancel);
        ctx.tape = Some(tape);
        ctx
    }

    /// The kernel's one cancellation poll site. Returns `true` once the
    /// token has tripped (and latches [`DriveCtx::cancelled`]).
    #[inline]
    pub(crate) fn poll_cancel(&mut self) -> bool {
        if self.cancelled {
            return true;
        }
        self.telemetry.cancel_polls += 1;
        if self.cancel.is_some_and(CancelToken::is_cancelled) {
            self.cancelled = true;
        }
        self.cancelled
    }

    /// Record one pairing event (counter, per-row depth, trace tape).
    #[inline]
    pub(crate) fn event(&mut self, ev: Event, b_pos: usize, a_pos: usize) {
        self.telemetry.events.record(ev);
        if matches!(ev, Event::MinPrune | Event::MaxPrune) {
            self.row_prunes += 1;
        }
        if let Some(tape) = self.tape.as_deref_mut() {
            tape.event(ev, b_pos, a_pos);
        }
    }

    /// A `B` row entered the pairing loop.
    #[inline]
    pub(crate) fn begin_row(&mut self) {
        self.telemetry.rows_driven += 1;
        self.row_candidates = 0;
        self.row_prunes = 0;
    }

    /// A candidate pair survived the cheap filters and is being judged.
    #[inline]
    pub(crate) fn candidate(&mut self) {
        self.telemetry.candidates_streamed += 1;
        self.row_candidates += 1;
    }

    /// The current `B` row's scan finished.
    #[inline]
    pub(crate) fn end_row(&mut self) {
        self.telemetry.stream_depth_hist.record(self.row_candidates);
        self.telemetry.prune_depth_hist.record(self.row_prunes);
        if self.row_candidates > self.telemetry.peak_stream_depth {
            self.telemetry.peak_stream_depth = self.row_candidates;
        }
    }

    /// Account one matcher invocation over `edges` edges.
    fn record_flush(&mut self, edges: u64, elapsed: Duration) {
        self.telemetry.matcher_flushes += 1;
        self.telemetry.matcher_edges += edges;
        if edges > self.telemetry.largest_flush_edges {
            self.telemetry.largest_flush_edges = edges;
        }
        self.matcher_time += elapsed;
    }

    fn tape_flush(&mut self, edges: &[(u32, u32)]) {
        if let Some(tape) = self.tape.as_deref_mut() {
            tape.flush(edges);
        }
    }

    /// Bulk bookkeeping for one fully-scanned row of the unconditional
    /// all-pairs scan: `candidates` pairs judged, `matched` of them
    /// matches. Produces exactly the counters the per-pair
    /// `begin_row`/`candidate`/`event`/`end_row` sequence would, in
    /// O(1) instead of O(candidates).
    #[inline]
    pub(crate) fn bulk_row(&mut self, candidates: u64, matched: u64) {
        self.begin_row();
        self.telemetry.candidates_streamed += candidates;
        self.row_candidates = candidates;
        self.telemetry.events.matches += matched;
        self.telemetry.events.no_match += candidates - matched;
        self.end_row();
    }
}

/// The `skip`/`offset` contiguous-prefix pruning shared by the Baseline
/// and MinMax scans (Section 4.1 / 5.1): a contiguous prefix of `A`
/// entries that are consumed (or MAX-pruned) is folded into a global
/// `offset` so later rows never rescan it. The fold is only sound while
/// the scan has seen nothing but that prefix, which the per-row `skip`
/// flag tracks.
#[derive(Debug)]
pub(crate) struct PrefixPruner {
    enabled: bool,
    offset: usize,
    skip: bool,
}

impl PrefixPruner {
    pub(crate) fn new(enabled: bool) -> Self {
        Self {
            enabled,
            offset: 0,
            skip: true,
        }
    }

    /// Start scanning a new `B` row; returns the first `A` index to
    /// visit.
    #[inline]
    pub(crate) fn begin_row(&mut self) -> usize {
        self.skip = true;
        self.offset
    }

    /// The scan hit a consumed/flushed entry at `j`; fold it into the
    /// offset while still inside the untouched prefix.
    #[inline]
    pub(crate) fn on_dead(&mut self, j: usize) {
        if self.enabled && self.skip && j == self.offset {
            self.offset += 1;
        }
    }

    /// A live candidate was inspected: the contiguous prefix is broken
    /// for the rest of this row.
    #[inline]
    pub(crate) fn touch(&mut self) {
        self.skip = false;
    }

    /// MAX PRUNE at the scan head: the current `a` can never match any
    /// later `b`, so the offset may swallow it permanently. Returns
    /// whether the offset advanced (i.e. whether the event counts).
    #[inline]
    pub(crate) fn on_max_prune(&mut self) -> bool {
        if self.enabled && self.skip {
            self.offset += 1;
            true
        } else {
            false
        }
    }

    #[cfg(test)]
    pub(crate) fn offset(&self) -> usize {
        self.offset
    }
}

/// Consumes the candidate stream a substrate drives. Implementations own
/// all consumption bookkeeping (greedy `consumed` flags, edge buffers,
/// segment flushing); substrates stay consumption-agnostic.
pub(crate) trait PairSink {
    /// Whether `B` row `bi` still needs pairing (greedy sinks drop rows
    /// already consumed by an earlier leaf visit).
    fn wants_b(&self, bi: u32) -> bool;

    /// Whether `A` column `aj` is still available.
    fn wants_a(&self, aj: u32) -> bool;

    /// Record a matched pair. `a_bound` is the substrate's encoded upper
    /// bound for the `A` column (Ex-MinMax `maxV` bookkeeping; 0 where
    /// the substrate has none). Returns `true` when the current `B` row
    /// is consumed and its scan must stop.
    fn on_match(&mut self, ctx: &mut DriveCtx, bi: u32, aj: u32, a_bound: u64) -> bool;

    /// End of a `B` row. `next_watermark` carries the next row's encoded
    /// ID (the Ex-MinMax segment flush trigger); `None` means the input
    /// is exhausted.
    fn row_end(&mut self, ctx: &mut DriveCtx, next_watermark: Option<u64>);

    /// Finalise into matched pairs (exact sinks run their matcher here).
    fn finish(self, ctx: &mut DriveCtx) -> Vec<(u32, u32)>;
}

/// The approximate consumption mode: the first MATCH consumes both
/// users; the pair list is the matching.
pub(crate) struct GreedySink {
    consumed_b: Vec<bool>,
    consumed_a: Vec<bool>,
    pairs: Vec<(u32, u32)>,
}

impl GreedySink {
    pub(crate) fn new(nb: usize, na: usize) -> Self {
        Self {
            consumed_b: vec![false; nb],
            consumed_a: vec![false; na],
            pairs: Vec::new(),
        }
    }
}

impl PairSink for GreedySink {
    #[inline]
    fn wants_b(&self, bi: u32) -> bool {
        !self.consumed_b[bi as usize]
    }

    #[inline]
    fn wants_a(&self, aj: u32) -> bool {
        !self.consumed_a[aj as usize]
    }

    #[inline]
    fn on_match(&mut self, _ctx: &mut DriveCtx, bi: u32, aj: u32, _a_bound: u64) -> bool {
        self.consumed_b[bi as usize] = true;
        self.consumed_a[aj as usize] = true;
        self.pairs.push((bi, aj));
        true
    }

    fn row_end(&mut self, _ctx: &mut DriveCtx, _next_watermark: Option<u64>) {}

    fn finish(self, _ctx: &mut DriveCtx) -> Vec<(u32, u32)> {
        self.pairs
    }
}

enum CollectMode {
    /// Gather every edge, run the matcher once in `finish`.
    Whole {
        builder: GraphBuilder,
        edge_count: u64,
        /// Whether the final matcher call still runs after cancellation
        /// (Ex-Baseline matches what was gathered; the EGO methods skip
        /// the matcher so cancellation stays prompt).
        matcher_on_cancel: bool,
    },
    /// Ex-MinMax: buffer the running segment's edges and flush through
    /// the matcher whenever the next row's encoded ID exceeds `maxv`.
    Segmented {
        seg_edges: Vec<(u32, u32)>,
        flushed: Vec<bool>,
        maxv: u64,
    },
}

/// The exact consumption mode: accumulate the admissible-pair graph and
/// resolve it with a one-to-one matcher.
pub(crate) struct CollectSink {
    matcher: MatcherKind,
    mode: CollectMode,
    pairs: Vec<(u32, u32)>,
}

impl CollectSink {
    /// Whole-graph mode (Ex-Baseline, Ex-SuperEGO, Ex-Hybrid).
    pub(crate) fn whole(
        nb: usize,
        na: usize,
        matcher: MatcherKind,
        matcher_on_cancel: bool,
    ) -> Self {
        Self {
            matcher,
            mode: CollectMode::Whole {
                builder: GraphBuilder::new(nb as u32, na as u32),
                edge_count: 0,
                matcher_on_cancel,
            },
            pairs: Vec::new(),
        }
    }

    /// Segment-flushing mode (Ex-MinMax over `na` encoded `A` entries).
    pub(crate) fn segmented(na: usize, matcher: MatcherKind) -> Self {
        Self {
            matcher,
            mode: CollectMode::Segmented {
                seg_edges: Vec::new(),
                flushed: vec![false; na],
                maxv: 0,
            },
            pairs: Vec::new(),
        }
    }

    /// Merge edges gathered by a parallel worker (whole mode only; the
    /// workers stream into [`EdgeListSink`]s and the ranges concatenate
    /// in row order, so the result equals the serial drive).
    pub(crate) fn absorb_edges(&mut self, edges: &[(u32, u32)]) {
        match &mut self.mode {
            CollectMode::Whole {
                builder,
                edge_count,
                ..
            } => {
                for &(bi, aj) in edges {
                    builder.add_edge(bi, aj);
                    *edge_count += 1;
                }
            }
            CollectMode::Segmented { .. } => {
                unreachable!("segmented sinks have no parallel drive")
            }
        }
    }

    /// Run the matcher on the closed segment, translate its compact
    /// numbering back and mark the segment's `A` entries flushed.
    fn flush_segment(
        ctx: &mut DriveCtx,
        matcher: MatcherKind,
        seg_edges: &mut Vec<(u32, u32)>,
        flushed: &mut [bool],
        pairs: &mut Vec<(u32, u32)>,
    ) {
        ctx.tape_flush(seg_edges);
        let t = Instant::now();
        let mut b_nodes: Vec<u32> = seg_edges.iter().map(|&(b, _)| b).collect();
        b_nodes.sort_unstable();
        b_nodes.dedup();
        let mut a_nodes: Vec<u32> = seg_edges.iter().map(|&(_, a)| a).collect();
        a_nodes.sort_unstable();
        a_nodes.dedup();
        let remapped: Vec<(u32, u32)> = seg_edges
            .iter()
            .map(|&(b, a)| {
                let bi = b_nodes.binary_search(&b).expect("node present") as u32;
                let ai = a_nodes.binary_search(&a).expect("node present") as u32;
                (bi, ai)
            })
            .collect();
        let graph = MatchGraph::from_edges(b_nodes.len() as u32, a_nodes.len() as u32, remapped);
        let matching = run_matcher(&graph, matcher);
        for &(bi, ai) in matching.pairs() {
            pairs.push((b_nodes[bi as usize], a_nodes[ai as usize]));
        }
        for &(_, a) in seg_edges.iter() {
            flushed[a as usize] = true;
        }
        let edges = seg_edges.len() as u64;
        seg_edges.clear();
        ctx.record_flush(edges, t.elapsed());
    }
}

impl PairSink for CollectSink {
    #[inline]
    fn wants_b(&self, _bi: u32) -> bool {
        true
    }

    #[inline]
    fn wants_a(&self, aj: u32) -> bool {
        match &self.mode {
            CollectMode::Whole { .. } => true,
            CollectMode::Segmented { flushed, .. } => !flushed[aj as usize],
        }
    }

    #[inline]
    fn on_match(&mut self, _ctx: &mut DriveCtx, bi: u32, aj: u32, a_bound: u64) -> bool {
        match &mut self.mode {
            CollectMode::Whole {
                builder,
                edge_count,
                ..
            } => {
                builder.add_edge(bi, aj);
                *edge_count += 1;
            }
            CollectMode::Segmented {
                seg_edges, maxv, ..
            } => {
                seg_edges.push((bi, aj));
                if a_bound > *maxv {
                    *maxv = a_bound;
                }
            }
        }
        false
    }

    fn row_end(&mut self, ctx: &mut DriveCtx, next_watermark: Option<u64>) {
        if let CollectMode::Segmented {
            seg_edges,
            flushed,
            maxv,
        } = &mut self.mode
        {
            // Segment boundary: if every future b's encoded ID exceeds
            // maxV, no future b can reach any matched a of the running
            // segment (their encoded Max values are all <= maxV), so it
            // is safe to flush now.
            let closes_segment = match next_watermark {
                Some(next_id) => next_id > *maxv,
                None => true,
            };
            if closes_segment {
                if !seg_edges.is_empty() {
                    Self::flush_segment(ctx, self.matcher, seg_edges, flushed, &mut self.pairs);
                }
                *maxv = 0;
            }
        }
    }

    fn finish(mut self, ctx: &mut DriveCtx) -> Vec<(u32, u32)> {
        match self.mode {
            CollectMode::Whole {
                builder,
                edge_count,
                matcher_on_cancel,
            } => {
                if ctx.cancelled && !matcher_on_cancel {
                    // Prompt cancellation: the empty matching is valid.
                    return self.pairs;
                }
                let t = Instant::now();
                let graph = builder.build();
                self.pairs = run_matcher(&graph, self.matcher).into_pairs();
                ctx.record_flush(edge_count, t.elapsed());
                self.pairs
            }
            // A cancelled drive leaves the open segment unmatched (its
            // edges are dropped so cancellation stays prompt); the loop
            // itself flushes the final segment on normal exit.
            CollectMode::Segmented { .. } => self.pairs,
        }
    }
}

/// Edge recorder used by parallel whole-graph workers; the main thread
/// absorbs the edges into the real [`CollectSink`] in row order.
pub(crate) struct EdgeListSink {
    edges: Vec<(u32, u32)>,
}

impl EdgeListSink {
    pub(crate) fn new() -> Self {
        Self { edges: Vec::new() }
    }

    pub(crate) fn into_edges(self) -> Vec<(u32, u32)> {
        self.edges
    }
}

impl PairSink for EdgeListSink {
    #[inline]
    fn wants_b(&self, _bi: u32) -> bool {
        true
    }

    #[inline]
    fn wants_a(&self, _aj: u32) -> bool {
        true
    }

    #[inline]
    fn on_match(&mut self, _ctx: &mut DriveCtx, bi: u32, aj: u32, _a_bound: u64) -> bool {
        self.edges.push((bi, aj));
        false
    }

    fn row_end(&mut self, _ctx: &mut DriveCtx, _next_watermark: Option<u64>) {}

    fn finish(self, _ctx: &mut DriveCtx) -> Vec<(u32, u32)> {
        self.edges
    }
}

/// Join a scoped worker, re-raising a panic with its **original**
/// payload instead of masking it behind a generic `expect` message, so
/// the engine's `catch_unwind` isolation reports the real panic text.
pub(crate) fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Drive the Baseline substrate: scan `A` for each `B` row in `rows`.
/// The one nested loop behind both Ap- and Ex-Baseline (and their
/// parallel row-range workers). The full d-dimensional comparison goes
/// through the pair's resolved [`LaneView`], so the scan order —
/// and with it every consumption/pruning decision — is untouched by
/// the compact encodings.
pub(crate) fn drive_baseline<S: PairSink>(
    view: &LaneView,
    rows: Range<usize>,
    na: usize,
    pruner: &mut PrefixPruner,
    ctx: &mut DriveCtx,
    sink: &mut S,
) {
    ctx.telemetry.lane_bits = ctx.telemetry.lane_bits.max(view.lane_bits());
    for i in rows {
        if ctx.poll_cancel() {
            break;
        }
        if !sink.wants_b(i as u32) {
            continue;
        }
        ctx.begin_row();
        let mut j = pruner.begin_row();
        while j < na {
            if !sink.wants_a(j as u32) {
                pruner.on_dead(j);
                j += 1;
                continue;
            }
            pruner.touch();
            ctx.candidate();
            if view.matches(i, j) {
                ctx.event(Event::Match, i, j);
                if sink.on_match(ctx, i as u32, j as u32, 0) {
                    break;
                }
            } else {
                ctx.event(Event::NoMatch, i, j);
            }
            j += 1;
        }
        ctx.end_row();
        sink.row_end(ctx, None);
    }
}

/// Cache-blocked drive of the **unconditional** all-pairs scan: the
/// Ex-Baseline fast path, where the sink wants every row and column,
/// nothing is consumed mid-scan and no tape is attached.
///
/// The scan processes a block of `B` rows against one `A` tile at a
/// time (tile sized by [`crate::quant::tile_geometry`] so its columns
/// stay resident in L1), buffering matches per row and re-emitting them
/// row-major — so the edge list, every telemetry counter and the
/// uncancelled cancel-poll count (one per row) are identical to
/// [`drive_baseline`] over an [`EdgeListSink`]. Cancellation is polled
/// once per row at block granularity: a tripped token aborts before the
/// block is scanned, exactly like the serial scan aborts before a row.
pub(crate) fn drive_baseline_blocked(
    view: &LaneView,
    rows: Range<usize>,
    na: usize,
    ctx: &mut DriveCtx,
    edges: &mut Vec<(u32, u32)>,
) {
    /// `B` rows per block: enough to amortise each `A` tile sweep,
    /// small enough that the block's rows stay cache-resident too.
    const B_BLOCK: usize = 8;
    let (tile_rows, tile_count) = crate::quant::tile_geometry(na, view.d(), view.lane_bytes());
    ctx.telemetry.lane_bits = ctx.telemetry.lane_bits.max(view.lane_bits());
    ctx.telemetry.a_tiles = ctx.telemetry.a_tiles.max(tile_count as u64);
    let mut row_hits: Vec<Vec<u32>> = vec![Vec::new(); B_BLOCK];
    let mut block = rows.start;
    while block < rows.end {
        let block_rows = (rows.end - block).min(B_BLOCK);
        // One poll per row keeps the uncancelled poll count identical
        // to the serial scan's row-granular polling.
        let mut tripped = false;
        for _ in 0..block_rows {
            if ctx.poll_cancel() {
                tripped = true;
                break;
            }
        }
        if tripped {
            break;
        }
        for buf in row_hits.iter_mut().take(block_rows) {
            buf.clear();
        }
        let mut tile = 0usize;
        while tile < na {
            let tile_end = (tile + tile_rows).min(na);
            for (bi, buf) in row_hits.iter_mut().enumerate().take(block_rows) {
                let i = block + bi;
                for j in tile..tile_end {
                    if view.matches(i, j) {
                        buf.push(j as u32);
                    }
                }
            }
            tile = tile_end;
        }
        for (bi, buf) in row_hits.iter().enumerate().take(block_rows) {
            let i = block + bi;
            ctx.bulk_row(na as u64, buf.len() as u64);
            edges.extend(buf.iter().map(|&j| (i as u32, j)));
        }
        block += block_rows;
    }
}

/// Drive an EGO-recursion substrate (SuperEGO on normalised floats, the
/// hybrid on raw integers): `judge` settles each candidate pair by leaf
/// position, the sink consumes by point id (= community index).
pub(crate) fn drive_ego<Sc, J, S>(
    ps_b: &PointSet<Sc>,
    ps_a: &PointSet<Sc>,
    params: SuperEgoParams,
    stats: &mut EgoStats,
    judge: &mut J,
    ctx: &mut DriveCtx,
    sink: &mut S,
) where
    Sc: Scalar,
    J: FnMut(usize, usize) -> Judgement,
    S: PairSink,
{
    super_ego_join(ps_b, ps_a, params, stats, &mut |bs, br, as_, ar, stats| {
        // Leaf-granular cancellation: the recursion lives in csj_ego and
        // stays oblivious to tokens, so tripped drives fall through the
        // remaining leaves without doing work.
        if ctx.poll_cancel() {
            return;
        }
        for i in br {
            let bi = bs.id(i);
            if !sink.wants_b(bi) {
                continue;
            }
            ctx.begin_row();
            for j in ar.clone() {
                let aj = as_.id(j);
                if !sink.wants_a(aj) {
                    continue;
                }
                stats.pairs_checked += 1;
                ctx.candidate();
                let judgement = judge(i, j);
                ctx.event(judgement.event(), bi as usize, aj as usize);
                if judgement == Judgement::Match && sink.on_match(ctx, bi, aj, 0) {
                    break;
                }
            }
            ctx.end_row();
            sink.row_end(ctx, None);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared helper folds consumed entries into the offset only
    /// while the scan is still inside the untouched prefix.
    #[test]
    fn pruner_folds_contiguous_prefix_only() {
        let mut p = PrefixPruner::new(true);
        assert_eq!(p.begin_row(), 0);
        p.on_dead(0); // consumed at the head: folded
        assert_eq!(p.offset(), 1);
        p.touch(); // live comparison at 1
        p.on_dead(2); // consumed past the break: NOT folded
        assert_eq!(p.offset(), 1);
        // Next row starts at the folded offset with a fresh skip flag.
        assert_eq!(p.begin_row(), 1);
        p.on_dead(1);
        assert_eq!(p.offset(), 2);
    }

    #[test]
    fn pruner_max_prune_advances_only_at_scan_head() {
        let mut p = PrefixPruner::new(true);
        p.begin_row();
        assert!(p.on_max_prune(), "head prune must advance and count");
        assert_eq!(p.offset(), 1);
        p.touch();
        assert!(!p.on_max_prune(), "prune after a live entry is silent");
        assert_eq!(p.offset(), 1);
    }

    #[test]
    fn disabled_pruner_never_moves() {
        let mut p = PrefixPruner::new(false);
        assert_eq!(p.begin_row(), 0);
        p.on_dead(0);
        assert!(!p.on_max_prune());
        assert_eq!(p.offset(), 0);
        assert_eq!(p.begin_row(), 0);
    }

    #[test]
    fn pruner_ignores_dead_entries_beyond_the_head() {
        let mut p = PrefixPruner::new(true);
        p.begin_row();
        // The invariant j == offset while skip holds means a dead entry
        // at a later index must not advance the offset.
        p.on_dead(5);
        assert_eq!(p.offset(), 0);
    }

    #[test]
    fn greedy_sink_consumes_both_sides() {
        let mut ctx = DriveCtx::new(None);
        let mut sink = GreedySink::new(2, 3);
        assert!(sink.wants_b(0) && sink.wants_a(1));
        assert!(sink.on_match(&mut ctx, 0, 1, 0), "greedy stops the row");
        assert!(!sink.wants_b(0), "b consumed");
        assert!(!sink.wants_a(1), "a consumed");
        assert!(sink.wants_a(2));
        assert_eq!(sink.finish(&mut ctx), vec![(0, 1)]);
    }

    #[test]
    fn collect_whole_runs_matcher_once() {
        let mut ctx = DriveCtx::new(None);
        let mut sink = CollectSink::whole(2, 2, MatcherKind::HopcroftKarp, true);
        assert!(!sink.on_match(&mut ctx, 0, 0, 0), "collect keeps scanning");
        sink.on_match(&mut ctx, 0, 1, 0);
        sink.on_match(&mut ctx, 1, 0, 0);
        let mut pairs = sink.finish(&mut ctx);
        pairs.sort_unstable();
        assert_eq!(pairs.len(), 2, "maximum matching covers both rows");
        assert_eq!(ctx.telemetry.matcher_flushes, 1);
        assert_eq!(ctx.telemetry.matcher_edges, 3);
        assert_eq!(ctx.telemetry.largest_flush_edges, 3);
    }

    #[test]
    fn collect_segmented_flushes_on_watermark() {
        let mut ctx = DriveCtx::new(None);
        let mut sink = CollectSink::segmented(4, MatcherKind::Csf);
        sink.on_match(&mut ctx, 0, 0, 55);
        sink.row_end(&mut ctx, Some(40)); // 40 <= 55: segment stays open
        assert_eq!(ctx.telemetry.matcher_flushes, 0);
        assert!(sink.wants_a(0), "open segment keeps its columns live");
        sink.on_match(&mut ctx, 1, 1, 60);
        sink.row_end(&mut ctx, Some(61)); // 61 > 60: flush
        assert_eq!(ctx.telemetry.matcher_flushes, 1);
        assert_eq!(ctx.telemetry.matcher_edges, 2);
        assert!(!sink.wants_a(0) && !sink.wants_a(1), "flushed columns die");
        assert!(sink.wants_a(2));
        let mut pairs = sink.finish(&mut ctx);
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn cancelled_whole_sink_skips_matcher_when_prompt() {
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = DriveCtx::new(Some(&token));
        assert!(ctx.poll_cancel());
        let mut sink = CollectSink::whole(1, 1, MatcherKind::Csf, false);
        sink.on_match(&mut ctx, 0, 0, 0);
        assert!(sink.finish(&mut ctx).is_empty(), "prompt mode drops edges");
        assert_eq!(ctx.telemetry.matcher_flushes, 0);
    }

    #[test]
    fn ctx_tracks_stream_depth_per_row() {
        let mut ctx = DriveCtx::new(None);
        ctx.begin_row();
        ctx.candidate();
        ctx.candidate();
        ctx.end_row();
        ctx.begin_row();
        ctx.candidate();
        ctx.end_row();
        assert_eq!(ctx.telemetry.rows_driven, 2);
        assert_eq!(ctx.telemetry.candidates_streamed, 3);
        assert_eq!(ctx.telemetry.peak_stream_depth, 2);
        assert_eq!(ctx.telemetry.stream_depth_hist.count(), 2);
    }

    #[test]
    fn worker_panic_payload_survives_join() {
        let caught = std::panic::catch_unwind(|| {
            std::thread::scope(|scope| {
                let h = scope.spawn(|| -> u32 { panic!("kernel worker exploded") });
                join_worker(h)
            })
        })
        .unwrap_err();
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "kernel worker exploded", "payload must survive");
    }

    #[test]
    fn poll_latches_after_trip() {
        let token = CancelToken::new();
        let mut ctx = DriveCtx::new(Some(&token));
        assert!(!ctx.poll_cancel());
        token.cancel();
        assert!(ctx.poll_cancel());
        let polls = ctx.telemetry.cancel_polls;
        assert!(ctx.poll_cancel(), "stays tripped");
        assert_eq!(ctx.telemetry.cancel_polls, polls, "latched polls are free");
    }
}
