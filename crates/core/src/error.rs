//! Error types of the CSJ core.

/// Errors returned by the public CSJ API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsjError {
    /// The two communities have different dimensionality.
    DimensionMismatch { b_d: usize, a_d: usize },
    /// A pushed user vector has the wrong number of dimensions.
    VectorLength { expected: usize, got: usize },
    /// A user id was added twice to the same community.
    DuplicateUser(u64),
    /// The CSJ admissibility constraint `ceil(|A|/2) <= |B| <= |A|` fails.
    SizeConstraint { nb: usize, na: usize },
    /// Invalid tuning options (message describes the field).
    InvalidOptions(String),
}

impl std::fmt::Display for CsjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsjError::DimensionMismatch { b_d, a_d } => {
                write!(
                    f,
                    "communities disagree on dimensionality: B has d={b_d}, A has d={a_d}"
                )
            }
            CsjError::VectorLength { expected, got } => {
                write!(
                    f,
                    "user vector has {got} dimensions, community expects {expected}"
                )
            }
            CsjError::DuplicateUser(id) => write!(f, "user id {id} already in community"),
            CsjError::SizeConstraint { nb, na } => write!(
                f,
                "CSJ requires ceil(|A|/2) <= |B| <= |A|; got |B|={nb}, |A|={na}"
            ),
            CsjError::InvalidOptions(msg) => write!(f, "invalid CSJ options: {msg}"),
        }
    }
}

impl std::error::Error for CsjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CsjError::SizeConstraint { nb: 1, na: 10 };
        let s = e.to_string();
        assert!(s.contains("|B|=1") && s.contains("|A|=10"));
        assert!(CsjError::DuplicateUser(5).to_string().contains('5'));
        assert!(CsjError::DimensionMismatch { b_d: 2, a_d: 3 }
            .to_string()
            .contains("d=2"));
        assert!(CsjError::VectorLength {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains('4'));
        assert!(CsjError::InvalidOptions("parts".into())
            .to_string()
            .contains("parts"));
    }
}
