//! Frozen-reference parity suite for the substrate × sink join kernel.
//!
//! The kernel refactor rewrote every method's pairing loop on top of the
//! shared `drive_* × PairSink` kernel. This suite pins that refactor to
//! the exact pre-refactor semantics: each method in [`CsjMethod::ALL`] is
//! replayed against a frozen reference implementation — a faithful
//! transcription of the pre-kernel per-method loops, written against the
//! public API only — and must produce identical matched pairs, identical
//! similarity, and identical pairing event counters.
//!
//! Instances come from a seeded LCG sweep plus a proptest generator; the
//! paper's Section 3 worked example is pinned as a golden vector. (The
//! Figure 2/3 execution traces are golden-tested against the kernel in
//! `algorithms::minmax`, event by event.)

use csj_core::{run, Community, CsjMethod, CsjOptions, EventCounters};

/// What the pre-refactor implementations produced and the kernel must
/// reproduce bit-for-bit: matched pairs in emission order plus the
/// pairing-loop event counters.
struct RefJoin {
    pairs: Vec<(u32, u32)>,
    events: EventCounters,
}

/// The frozen pre-refactor implementations. Do not "improve" these to
/// track the kernel: their whole value is that they do NOT share code
/// with `csj_core::algorithms`.
mod reference {
    use super::RefJoin;
    use csj_core::csj_ego::{
        collect_pairs, super_ego_join, EgoStats, JoinPredicate, PointSet, SuperEgoParams,
    };
    use csj_core::csj_matching::{run_matcher, GraphBuilder, MatchGraph, MatcherKind};
    use csj_core::encoding::{encode_vector_a, encode_vector_b};
    use csj_core::{
        encode_a, encode_b, part_bounds, vectors_match, Community, CsjMethod, CsjOptions, EncodedA,
        EncodedB, Event, EventCounters,
    };

    pub fn dispatch(method: CsjMethod, b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        match method {
            CsjMethod::ApBaseline => ap_baseline(b, a, opts),
            CsjMethod::ExBaseline => ex_baseline(b, a, opts),
            CsjMethod::ApMinMax => ap_minmax(b, a, opts),
            CsjMethod::ExMinMax => ex_minmax(b, a, opts),
            CsjMethod::ApSuperEgo => ap_superego(b, a, opts),
            CsjMethod::ExSuperEgo => ex_superego(b, a, opts),
            CsjMethod::ApHybrid => ap_hybrid(b, a, opts),
            CsjMethod::ExHybrid => ex_hybrid(b, a, opts),
            // The parity suite pins the eight concrete kernels; Auto is
            // planner sugar that resolves to one of them before dispatch.
            CsjMethod::Auto => unreachable!("parity runs concrete methods only"),
        }
    }

    fn ap_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let na = a.len();
        let mut events = EventCounters::default();
        let mut pairs = Vec::new();
        let mut consumed = vec![false; na];
        let mut offset = 0usize;
        for i in 0..b.len() {
            let bv = b.vector(i);
            let mut skip = true;
            let mut j = offset;
            while j < na {
                if consumed[j] {
                    if opts.offset_pruning && skip && j == offset {
                        offset += 1;
                    }
                    j += 1;
                    continue;
                }
                skip = false;
                if vectors_match(bv, a.vector(j), opts.eps) {
                    events.record(Event::Match);
                    pairs.push((i as u32, j as u32));
                    consumed[j] = true;
                    break;
                }
                events.record(Event::NoMatch);
                j += 1;
            }
        }
        RefJoin { pairs, events }
    }

    fn ex_baseline(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let mut events = EventCounters::default();
        let mut builder = GraphBuilder::new(b.len() as u32, a.len() as u32);
        for i in 0..b.len() {
            let bv = b.vector(i);
            for j in 0..a.len() {
                if vectors_match(bv, a.vector(j), opts.eps) {
                    events.record(Event::Match);
                    builder.add_edge(i as u32, j as u32);
                } else {
                    events.record(Event::NoMatch);
                }
            }
        }
        let pairs = run_matcher(&builder.build(), opts.matcher).into_pairs();
        RefJoin { pairs, events }
    }

    /// The encoded-ID window plus part/range filter plus full comparison,
    /// shared by both MinMax loops below (the old `RealOracle`).
    fn minmax_judge(
        b: &Community,
        a: &Community,
        eb: &EncodedB,
        ea: &EncodedA,
        eps: u32,
        b_pos: usize,
        a_pos: usize,
    ) -> Event {
        if !ea.parts_overlap(a_pos, eb.parts_of(b_pos)) {
            return Event::NoOverlap;
        }
        let bv = b.vector(eb.user_idx[b_pos] as usize);
        let av = a.vector(ea.user_idx[a_pos] as usize);
        if vectors_match(bv, av, eps) {
            Event::Match
        } else {
            Event::NoMatch
        }
    }

    fn map_positions(pos_pairs: &[(u32, u32)], eb: &EncodedB, ea: &EncodedA) -> Vec<(u32, u32)> {
        pos_pairs
            .iter()
            .map(|&(i, j)| (eb.user_idx[i as usize], ea.user_idx[j as usize]))
            .collect()
    }

    fn ap_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let eb = encode_b(b, opts.encoding);
        let ea = encode_a(a, opts.eps, opts.encoding);
        let na = ea.len();
        let mut events = EventCounters::default();
        let mut consumed = vec![false; na];
        let mut offset = 0usize;
        let mut pos_pairs = Vec::new();
        for (i, &id) in eb.encd_ids.iter().enumerate() {
            let mut skip = true;
            let mut j = offset;
            while j < na {
                if consumed[j] {
                    if opts.offset_pruning && skip && j == offset {
                        offset += 1;
                    }
                    j += 1;
                    continue;
                }
                if id < ea.encd_mins[j] {
                    events.record(Event::MinPrune);
                    break;
                } else if id <= ea.encd_maxs[j] {
                    let verdict = minmax_judge(b, a, &eb, &ea, opts.eps, i, j);
                    events.record(verdict);
                    if verdict == Event::Match {
                        pos_pairs.push((i as u32, j as u32));
                        consumed[j] = true;
                        break;
                    }
                    skip = false;
                    j += 1;
                } else {
                    if opts.offset_pruning && skip {
                        offset += 1;
                        events.record(Event::MaxPrune);
                    }
                    j += 1;
                }
            }
        }
        RefJoin {
            pairs: map_positions(&pos_pairs, &eb, &ea),
            events,
        }
    }

    fn ex_minmax(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let eb = encode_b(b, opts.encoding);
        let ea = encode_a(a, opts.eps, opts.encoding);
        let na = ea.len();
        let mut events = EventCounters::default();
        let mut flushed = vec![false; na];
        let mut offset = 0usize;
        let mut maxv = 0u64;
        let mut seg_edges: Vec<(u32, u32)> = Vec::new();
        let mut pos_pairs = Vec::new();
        for (i, &id) in eb.encd_ids.iter().enumerate() {
            let mut skip = true;
            let mut j = offset;
            while j < na {
                if flushed[j] {
                    if opts.offset_pruning && skip && j == offset {
                        offset += 1;
                    }
                    j += 1;
                    continue;
                }
                if id < ea.encd_mins[j] {
                    events.record(Event::MinPrune);
                    break;
                } else if id <= ea.encd_maxs[j] {
                    let verdict = minmax_judge(b, a, &eb, &ea, opts.eps, i, j);
                    events.record(verdict);
                    if verdict == Event::Match {
                        seg_edges.push((i as u32, j as u32));
                        if ea.encd_maxs[j] > maxv {
                            maxv = ea.encd_maxs[j];
                        }
                    }
                    skip = false;
                    j += 1;
                } else {
                    if opts.offset_pruning && skip {
                        offset += 1;
                        events.record(Event::MaxPrune);
                    }
                    j += 1;
                }
            }
            let closes_segment = match eb.encd_ids.get(i + 1) {
                Some(&next_id) => next_id > maxv,
                None => true,
            };
            if closes_segment {
                if !seg_edges.is_empty() {
                    flush_segment(&mut seg_edges, &mut flushed, opts.matcher, &mut pos_pairs);
                }
                maxv = 0;
            }
        }
        RefJoin {
            pairs: map_positions(&pos_pairs, &eb, &ea),
            events,
        }
    }

    fn flush_segment(
        seg_edges: &mut Vec<(u32, u32)>,
        flushed: &mut [bool],
        matcher: MatcherKind,
        pairs: &mut Vec<(u32, u32)>,
    ) {
        let mut b_nodes: Vec<u32> = seg_edges.iter().map(|&(b, _)| b).collect();
        b_nodes.sort_unstable();
        b_nodes.dedup();
        let mut a_nodes: Vec<u32> = seg_edges.iter().map(|&(_, a)| a).collect();
        a_nodes.sort_unstable();
        a_nodes.dedup();
        let remapped: Vec<(u32, u32)> = seg_edges
            .iter()
            .map(|&(b, a)| {
                let bi = b_nodes.binary_search(&b).expect("node present") as u32;
                let ai = a_nodes.binary_search(&a).expect("node present") as u32;
                (bi, ai)
            })
            .collect();
        let graph = MatchGraph::from_edges(b_nodes.len() as u32, a_nodes.len() as u32, remapped);
        let matching = run_matcher(&graph, matcher);
        for &(bi, ai) in matching.pairs() {
            pairs.push((b_nodes[bi as usize], a_nodes[ai as usize]));
        }
        for &(_, a) in seg_edges.iter() {
            flushed[a as usize] = true;
        }
        seg_edges.clear();
    }

    /// The old SuperEGO `prepare`: normalise, optionally reorder
    /// dimensions, EGO-sort, derive the per-dimension predicate.
    fn ego_prepare(
        b: &Community,
        a: &Community,
        opts: &CsjOptions,
    ) -> (PointSet<f32>, PointSet<f32>, JoinPredicate<f32>) {
        let d = b.d();
        let max_value = opts
            .superego
            .max_value
            .unwrap_or_else(|| b.max_counter().max(a.max_counter()))
            .max(1);
        let eps_norm = (opts.eps as f64 / max_value as f64) as f32;
        let width = if eps_norm > 0.0 { eps_norm } else { 1.0e-6 };
        let mut data_b = normalize(b.raw_data(), max_value);
        let mut data_a = normalize(a.raw_data(), max_value);
        if opts.superego.reorder {
            let order = csj_core::csj_ego::dimension_order(d, &data_b, &data_a, width, 10_000);
            data_b = csj_core::csj_ego::permute_dimensions(&data_b, d, &order);
            data_a = csj_core::csj_ego::permute_dimensions(&data_a, d, &order);
        }
        let ps_b = PointSet::build(d, width, data_b, None);
        let ps_a = PointSet::build(d, width, data_a, None);
        let pred = if opts.superego.l1_predicate {
            JoinPredicate::L1 {
                eps_sum: d as f64 * eps_norm as f64,
            }
        } else {
            JoinPredicate::PerDim { eps: eps_norm }
        };
        (ps_b, ps_a, pred)
    }

    fn normalize(data: &[u32], max_value: u32) -> Vec<f32> {
        csj_core::csj_ego::normalize_counters(data, max_value)
    }

    fn ap_superego(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let (ps_b, ps_a, pred) = ego_prepare(b, a, opts);
        let params = SuperEgoParams { t: opts.superego.t };
        let mut stats = EgoStats::default();
        let mut matched_b = vec![false; ps_b.len()];
        let mut matched_a = vec![false; ps_a.len()];
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut events = EventCounters::default();
        super_ego_join(
            &ps_b,
            &ps_a,
            params,
            &mut stats,
            &mut |bs, br, as_, ar, stats| {
                for i in br {
                    if matched_b[i] {
                        continue;
                    }
                    let bp = bs.point(i);
                    for j in ar.clone() {
                        if matched_a[j] {
                            continue;
                        }
                        stats.pairs_checked += 1;
                        if pred.matches(bp, as_.point(j)) {
                            events.record(Event::Match);
                            matched_b[i] = true;
                            matched_a[j] = true;
                            pairs.push((bs.id(i), as_.id(j)));
                            break;
                        }
                        events.record(Event::NoMatch);
                    }
                }
            },
        );
        RefJoin { pairs, events }
    }

    fn ex_superego(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let (ps_b, ps_a, pred) = ego_prepare(b, a, opts);
        let params = SuperEgoParams { t: opts.superego.t };
        let mut stats = EgoStats::default();
        let edges = collect_pairs(&ps_b, &ps_a, pred, params, &mut stats);
        let events = EventCounters {
            matches: edges.len() as u64,
            no_match: stats.pairs_checked - edges.len() as u64,
            ..Default::default()
        };
        let graph = MatchGraph::from_edges(b.len() as u32, a.len() as u32, edges);
        let pairs = run_matcher(&graph, opts.matcher).into_pairs();
        RefJoin { pairs, events }
    }

    /// Per-user encodings addressable by community index (the old
    /// `HybridIndex`).
    struct HybridIndex {
        parts: usize,
        b_ids: Vec<u64>,
        b_parts: Vec<u64>,
        a_mins: Vec<u64>,
        a_maxs: Vec<u64>,
        a_lo: Vec<u64>,
        a_hi: Vec<u64>,
    }

    impl HybridIndex {
        fn build(b: &Community, a: &Community, eps: u32, parts: usize) -> Self {
            let bounds = part_bounds(b.d(), parts);
            let mut b_ids = Vec::with_capacity(b.len());
            let mut b_parts = Vec::with_capacity(b.len() * parts);
            for i in 0..b.len() {
                b_ids.push(encode_vector_b(b.vector(i), &bounds, &mut b_parts));
            }
            let mut a_mins = Vec::with_capacity(a.len());
            let mut a_maxs = Vec::with_capacity(a.len());
            let mut a_lo = Vec::with_capacity(a.len() * parts);
            let mut a_hi = Vec::with_capacity(a.len() * parts);
            for j in 0..a.len() {
                let (min, max) = encode_vector_a(a.vector(j), eps, &bounds, &mut a_lo, &mut a_hi);
                a_mins.push(min);
                a_maxs.push(max);
            }
            Self {
                parts,
                b_ids,
                b_parts,
                a_mins,
                a_maxs,
                a_lo,
                a_hi,
            }
        }

        fn passes_filters(&self, bi: usize, aj: usize) -> bool {
            let id = self.b_ids[bi];
            if id < self.a_mins[aj] || id > self.a_maxs[aj] {
                return false;
            }
            let p = self.parts;
            let bp = &self.b_parts[bi * p..(bi + 1) * p];
            let lo = &self.a_lo[aj * p..(aj + 1) * p];
            let hi = &self.a_hi[aj * p..(aj + 1) * p];
            bp.iter()
                .zip(lo.iter().zip(hi.iter()))
                .all(|(&s, (&l, &h))| s >= l && s <= h)
        }
    }

    fn hybrid_prepare(b: &Community, a: &Community, eps: u32) -> (PointSet<u32>, PointSet<u32>) {
        let width = eps.max(1);
        let ps_b = PointSet::build(b.d(), width, b.raw_data().to_vec(), None);
        let ps_a = PointSet::build(a.d(), width, a.raw_data().to_vec(), None);
        (ps_b, ps_a)
    }

    fn ap_hybrid(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let (ps_b, ps_a) = hybrid_prepare(b, a, opts.eps);
        let index = HybridIndex::build(b, a, opts.eps, opts.encoding.effective_parts(b.d()));
        let params = SuperEgoParams { t: opts.superego.t };
        let mut stats = EgoStats::default();
        let mut events = EventCounters::default();
        let mut matched_b = vec![false; b.len()];
        let mut matched_a = vec![false; a.len()];
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let eps = opts.eps;
        super_ego_join(
            &ps_b,
            &ps_a,
            params,
            &mut stats,
            &mut |bs, br, as_, ar, stats| {
                for i in br {
                    let bi = bs.id(i) as usize;
                    if matched_b[bi] {
                        continue;
                    }
                    for j in ar.clone() {
                        let aj = as_.id(j) as usize;
                        if matched_a[aj] {
                            continue;
                        }
                        stats.pairs_checked += 1;
                        if !index.passes_filters(bi, aj) {
                            events.record(Event::NoOverlap);
                            continue;
                        }
                        if vectors_match(b.vector(bi), a.vector(aj), eps) {
                            events.record(Event::Match);
                            matched_b[bi] = true;
                            matched_a[aj] = true;
                            pairs.push((bi as u32, aj as u32));
                            break;
                        }
                        events.record(Event::NoMatch);
                    }
                }
            },
        );
        RefJoin { pairs, events }
    }

    fn ex_hybrid(b: &Community, a: &Community, opts: &CsjOptions) -> RefJoin {
        let (ps_b, ps_a) = hybrid_prepare(b, a, opts.eps);
        let index = HybridIndex::build(b, a, opts.eps, opts.encoding.effective_parts(b.d()));
        let params = SuperEgoParams { t: opts.superego.t };
        let mut stats = EgoStats::default();
        let mut events = EventCounters::default();
        let mut builder = GraphBuilder::new(b.len() as u32, a.len() as u32);
        let eps = opts.eps;
        super_ego_join(
            &ps_b,
            &ps_a,
            params,
            &mut stats,
            &mut |bs, br, as_, ar, stats| {
                for i in br {
                    let bi = bs.id(i) as usize;
                    for j in ar.clone() {
                        let aj = as_.id(j) as usize;
                        stats.pairs_checked += 1;
                        if !index.passes_filters(bi, aj) {
                            events.record(Event::NoOverlap);
                            continue;
                        }
                        if vectors_match(b.vector(bi), a.vector(aj), eps) {
                            events.record(Event::Match);
                            builder.add_edge(bi as u32, aj as u32);
                        } else {
                            events.record(Event::NoMatch);
                        }
                    }
                }
            },
        );
        let pairs = run_matcher(&builder.build(), opts.matcher).into_pairs();
        RefJoin { pairs, events }
    }
}

/// Run every method through the kernel and the frozen reference and
/// demand bit-identical pairs, similarity and event counters.
fn assert_parity(b: &Community, a: &Community, opts: &CsjOptions) {
    for method in CsjMethod::ALL {
        let outcome = run(method, b, a, opts).expect("valid parity instance");
        let frozen = reference::dispatch(method, b, a, opts);
        assert_eq!(
            outcome.pairs, frozen.pairs,
            "{method}: kernel pairs diverged from frozen reference\nB = {b:?}\nA = {a:?}"
        );
        assert_eq!(
            outcome.events, frozen.events,
            "{method}: kernel event counters diverged from frozen reference\nB = {b:?}\nA = {a:?}"
        );
        assert_eq!(outcome.similarity.matched, frozen.pairs.len());
        // The outcome's convenience copy must agree with the telemetry.
        assert_eq!(outcome.events, outcome.telemetry.events);
    }
}

fn lcg(seed: u64) -> impl FnMut() -> u32 {
    let mut state = seed;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    }
}

/// Random size-admissible community pair: `ceil(|A|/2) <= |B| <= |A|`,
/// counters in `0..hi` so matches are neither trivial nor absent.
fn random_pair(seed: u64, d: usize, na: usize, hi: u32) -> (Community, Community) {
    let mut rng = lcg(seed);
    let lower = na.div_ceil(2);
    let nb = lower + (rng() as usize) % (na - lower + 1);
    let rows = |rng: &mut dyn FnMut() -> u32, n: usize| -> Vec<(u64, Vec<u32>)> {
        (0..n)
            .map(|i| (i as u64, (0..d).map(|_| rng() % hi).collect()))
            .collect()
    };
    let b = Community::from_rows("B", d, rows(&mut rng, nb)).expect("well-formed");
    let a = Community::from_rows("A", d, rows(&mut rng, na)).expect("well-formed");
    (b, a)
}

#[test]
fn lcg_sweep_all_methods() {
    for seed in 0..40u64 {
        let d = 1 + (seed % 4) as usize;
        let na = 2 + (seed % 17) as usize;
        let eps = (seed % 3) as u32;
        let parts = 1 + (seed % 5) as usize;
        let (b, a) = random_pair(seed.wrapping_mul(0x9E37), d, na, 10);
        let opts = CsjOptions::new(eps).with_parts(parts);
        assert_parity(&b, &a, &opts);
    }
}

#[test]
fn parity_holds_with_pruning_disabled() {
    for seed in 0..10u64 {
        let (b, a) = random_pair(seed, 3, 12, 8);
        let mut opts = CsjOptions::new(1).with_parts(2);
        opts.offset_pruning = false;
        assert_parity(&b, &a, &opts);
    }
}

#[test]
fn parity_holds_for_every_matcher() {
    use csj_core::MatcherKind;
    for matcher in [
        MatcherKind::Csf,
        MatcherKind::Greedy,
        MatcherKind::HopcroftKarp,
    ] {
        for seed in 40..48u64 {
            let (b, a) = random_pair(seed, 2, 10, 6);
            let opts = CsjOptions::new(1).with_matcher(matcher);
            assert_parity(&b, &a, &opts);
        }
    }
}

#[test]
fn parity_on_sparse_and_dense_extremes() {
    // Dense: everything matches everything (hi=1 ⇒ all-zero counters).
    for seed in [1u64, 2, 3] {
        let (b, a) = random_pair(seed, 2, 9, 1);
        assert_parity(&b, &a, &CsjOptions::new(0));
    }
    // Sparse: wide counter range with eps 0 ⇒ matches are rare.
    for seed in [4u64, 5, 6] {
        let (b, a) = random_pair(seed, 2, 9, 1000);
        assert_parity(&b, &a, &CsjOptions::new(0));
    }
}

/// Run one method under every quantization mode and demand bit-identical
/// pairs and event counters: the narrow-lane fast path is an *encoding*
/// of the same booleans, never a semantic change. (Telemetry's
/// `lane_bits`/`a_tiles` fields legitimately differ between modes — they
/// describe the encoding — so this compares results, not the whole
/// telemetry block.)
fn assert_quant_parity(b: &Community, a: &Community, opts: &CsjOptions) {
    use csj_core::QuantMode;
    for method in CsjMethod::ALL {
        let off = run(method, b, a, &opts.clone().with_quant(QuantMode::Off))
            .expect("valid parity instance");
        for mode in [QuantMode::On, QuantMode::Auto] {
            let fast = run(method, b, a, &opts.clone().with_quant(mode)).expect("valid instance");
            assert_eq!(
                off.pairs, fast.pairs,
                "{method} under {mode:?}: quantized pairs diverged from scalar\nB = {b:?}\nA = {a:?}"
            );
            assert_eq!(
                off.events, fast.events,
                "{method} under {mode:?}: quantized events diverged from scalar\nB = {b:?}\nA = {a:?}"
            );
            assert_eq!(off.similarity, fast.similarity, "{method} under {mode:?}");
        }
    }
}

#[test]
fn quantization_modes_are_bit_identical_on_u8_data() {
    // Counters < 10 with small eps: every pair runs on u8 lanes.
    for seed in 100..110u64 {
        let (b, a) = random_pair(seed, 3, 11, 10);
        assert_quant_parity(&b, &a, &CsjOptions::new((seed % 3) as u32).with_parts(2));
    }
}

#[test]
fn quantization_modes_are_bit_identical_on_u16_data() {
    // Counters up to 40_000: u8 overflows, u16 lanes carry the pair.
    for seed in 110..116u64 {
        let (b, a) = random_pair(seed, 2, 9, 40_000);
        assert_quant_parity(&b, &a, &CsjOptions::new(500).with_parts(2));
    }
}

#[test]
fn quantization_modes_are_bit_identical_on_u32_data() {
    // Counters past u16::MAX force the validated widening fallback: the
    // "quantized" path must degrade to chunked u32 and still agree.
    for seed in 116..122u64 {
        let (b, a) = random_pair(seed, 2, 9, 1_000_000);
        assert_quant_parity(&b, &a, &CsjOptions::new(75_000).with_parts(2));
    }
}

#[test]
fn quantization_modes_agree_with_the_frozen_reference() {
    // The scalar reference from the pre-kernel era must match the
    // quantized kernel too, not just the Off path.
    for seed in 0..8u64 {
        let (b, a) = random_pair(seed.wrapping_mul(0x51D), 3, 10, 12);
        let opts = CsjOptions::new(1).with_parts(2);
        assert_parity(&b, &a, &opts); // default = Auto
        assert_quant_parity(&b, &a, &opts);
    }
}

/// Golden vector: the paper's Section 3 worked example.
///
/// `B = {(3,4,2), (2,2,3)}`, `A = {(2,3,5), (2,3,1), (3,3,3)}`, eps 1.
/// Admissible pairs are (b0,a1), (b0,a2), (b1,a2); the exact similarity
/// is 100% (both B users matched), which every exact method must report.
#[test]
fn section3_worked_example_golden() {
    let b =
        Community::from_rows("B", 3, vec![(1u64, vec![3u32, 4, 2]), (2, vec![2, 2, 3])]).unwrap();
    let a = Community::from_rows(
        "A",
        3,
        vec![
            (10u64, vec![2u32, 3, 5]),
            (11, vec![2, 3, 1]),
            (12, vec![3, 3, 3]),
        ],
    )
    .unwrap();
    let opts = CsjOptions::new(1);
    assert_parity(&b, &a, &opts);

    // Every exact method recovers the full matching.
    for method in [
        CsjMethod::ExBaseline,
        CsjMethod::ExMinMax,
        CsjMethod::ExHybrid,
    ] {
        let out = run(method, &b, &a, &opts).unwrap();
        assert_eq!(out.similarity.matched, 2, "{method}");
        let mut pairs = out.pairs.clone();
        pairs.sort_unstable();
        assert!(
            pairs == vec![(0, 1), (1, 2)] || pairs == vec![(0, 2), (1, 2)],
            "{method}: unexpected matching {pairs:?}"
        );
    }
    // The greedy baseline happens to find both pairs in scan order, and
    // its event tape is fully determined: b0 rejects a0 then takes a1;
    // b1 rejects a0 then takes a2 (a1 is consumed but not yet foldable).
    let ap = run(CsjMethod::ApBaseline, &b, &a, &opts).unwrap();
    assert_eq!(ap.pairs, vec![(0, 1), (1, 2)]);
    assert_eq!(ap.events.matches, 2);
    assert_eq!(ap.events.no_match, 2);
    // Ex-Baseline compares all six pairs: three matches, three misses.
    let ex = run(CsjMethod::ExBaseline, &b, &a, &opts).unwrap();
    assert_eq!(ex.events.matches, 3);
    assert_eq!(ex.events.no_match, 3);
    assert_eq!(ex.events.full_comparisons(), 6);
}

mod prop {
    use super::{assert_parity, Community, CsjOptions};
    use proptest::prelude::*;

    /// Random size-admissible instances: `ceil(|A|/2) <= |B| <= |A|`
    /// (what [`csj_core::run`] enforces), small enough to shrink well.
    fn instances() -> impl Strategy<Value = (Community, Community, u32, usize)> {
        (1usize..=3, 0u32..=2, 1usize..=5, 2usize..=14).prop_flat_map(|(d, eps, parts, na)| {
            let lower = na.div_ceil(2);
            (lower..=na, Just(d), Just(eps), Just(parts), Just(na)).prop_flat_map(
                |(nb, d, eps, parts, na)| {
                    let rows = |n: usize| {
                        proptest::collection::vec(proptest::collection::vec(0u32..10, d), n..=n)
                    };
                    (rows(nb), rows(na), Just(d), Just(eps), Just(parts)).prop_map(
                        |(rb, ra, d, eps, parts)| {
                            let b = Community::from_rows(
                                "B",
                                d,
                                rb.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
                            )
                            .expect("well-formed");
                            let a = Community::from_rows(
                                "A",
                                d,
                                ra.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
                            )
                            .expect("well-formed");
                            (b, a, eps, parts)
                        },
                    )
                },
            )
        })
    }

    proptest! {
        /// Shrinking counterexample search over random admissible
        /// instances: every method through the kernel must reproduce the
        /// frozen reference's pairs, similarity and event counters.
        #[test]
        fn kernel_matches_frozen_reference((b, a, eps, parts) in instances()) {
            let opts = CsjOptions::new(eps).with_parts(parts);
            assert_parity(&b, &a, &opts);
        }

        /// The widening fallback triggers *exactly* when a counter or
        /// `eps` exceeds the narrow lane's range: the selected lane is
        /// the narrowest integer type that holds both sides' maximum
        /// counter and the threshold, never narrower (lossy) and never
        /// needlessly wider (slow).
        #[test]
        fn widening_triggers_exactly_on_range_overflow(
            max_b in 0u32..200_000,
            max_a in 0u32..200_000,
            eps in 0u32..200_000,
        ) {
            use csj_core::{pair_lane, LaneKind, QuantizedCommunity};
            let one_row = |name: &str, top: u32| {
                Community::from_rows(name, 2, vec![(1u64, vec![top, top / 2])])
                    .expect("well-formed")
            };
            let qb = QuantizedCommunity::build(&one_row("B", max_b));
            let qa = QuantizedCommunity::build(&one_row("A", max_a));
            let limit = max_b.max(max_a).max(eps);
            let expected = if limit <= u32::from(u8::MAX) {
                LaneKind::U8
            } else if limit <= u32::from(u16::MAX) {
                LaneKind::U16
            } else {
                LaneKind::U32
            };
            prop_assert_eq!(pair_lane(&qb, &qa, eps), expected);
            // The narrow side tables exist exactly when the counters fit.
            prop_assert_eq!(qb.fits(LaneKind::U8), max_b <= u32::from(u8::MAX));
            prop_assert_eq!(qb.fits(LaneKind::U16), max_b <= u32::from(u16::MAX));
        }
    }
}
