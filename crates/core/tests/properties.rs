//! Property-based tests of the encoding scheme and the event machinery.

use csj_core::{encode_a, encode_b, validate_sizes, vectors_match, Community, EncodingParams};
use proptest::prelude::*;

fn communities() -> impl Strategy<Value = (Community, Community, u32, usize)> {
    (1usize..=8, 0u32..=4, 1usize..=8).prop_flat_map(|(d, eps, parts)| {
        let rows = |n| proptest::collection::vec(proptest::collection::vec(0u32..50, d), 1..n);
        (rows(30), rows(30), Just(d), Just(eps), Just(parts)).prop_map(|(rb, ra, d, eps, parts)| {
            let b = Community::from_rows(
                "B",
                d,
                rb.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .expect("well-formed");
            let a = Community::from_rows(
                "A",
                d,
                ra.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
            )
            .expect("well-formed");
            (b, a, eps, parts)
        })
    })
}

proptest! {
    /// The no-false-miss invariant of the encoding (Section 4 / Fig. 1):
    /// every per-dimension matching pair passes the encoded-ID window and
    /// the part/range overlap filter.
    #[test]
    fn encoding_never_causes_false_misses((b, a, eps, parts) in communities()) {
        let params = EncodingParams { parts };
        let eb = encode_b(&b, params);
        let ea = encode_a(&a, eps, params);
        for i in 0..eb.len() {
            let bv = b.vector(eb.user_idx[i] as usize);
            for j in 0..ea.len() {
                let av = a.vector(ea.user_idx[j] as usize);
                if vectors_match(bv, av, eps) {
                    prop_assert!(eb.encd_ids[i] >= ea.encd_mins[j]);
                    prop_assert!(eb.encd_ids[i] <= ea.encd_maxs[j]);
                    prop_assert!(ea.parts_overlap(j, eb.parts_of(i)));
                }
            }
        }
    }

    /// Buffers are sorted as the paper requires and are permutations of
    /// the input users.
    #[test]
    fn encoded_buffers_are_sorted_permutations((b, a, eps, parts) in communities()) {
        let params = EncodingParams { parts };
        let eb = encode_b(&b, params);
        prop_assert!(eb.encd_ids.windows(2).all(|w| w[0] <= w[1]));
        let mut idx = eb.user_idx.clone();
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..b.len() as u32).collect::<Vec<_>>());

        let ea = encode_a(&a, eps, params);
        prop_assert!(ea.encd_mins.windows(2).all(|w| w[0] <= w[1]));
        // Min <= Max always; width is exactly 2 * d * eps.
        for j in 0..ea.len() {
            prop_assert!(ea.encd_mins[j] <= ea.encd_maxs[j]);
            let v = a.vector(ea.user_idx[j] as usize);
            let clipped: u64 = v
                .iter()
                .map(|&x| (x as u64).min(eps as u64))
                .sum();
            let width = ea.encd_maxs[j] - ea.encd_mins[j];
            // Width = sum over dims of (eps + min(v, eps)).
            prop_assert_eq!(width, a.d() as u64 * eps as u64 + clipped);
        }
    }

    /// The encoded ID equals the plain counter sum regardless of the part
    /// segmentation.
    #[test]
    fn encoded_id_is_partition_invariant((b, _a, _eps, parts) in communities()) {
        let one = encode_b(&b, EncodingParams { parts: 1 });
        let many = encode_b(&b, EncodingParams { parts });
        prop_assert_eq!(one.encd_ids, many.encd_ids);
        prop_assert_eq!(one.user_idx, many.user_idx);
    }

    /// Size validation accepts exactly the paper's admissible range.
    #[test]
    fn size_validation_matches_definition(nb in 0usize..2000, na in 0usize..2000) {
        let admissible = nb >= na.div_ceil(2) && nb <= na;
        prop_assert_eq!(validate_sizes(nb, na).is_ok(), admissible);
    }
}
