//! Thin binary wrapper over `csj_cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match csj_cli::parse(&args).and_then(csj_cli::execute) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}
