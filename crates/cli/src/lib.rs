//! # csj-cli — command-line interface for CSJ
//!
//! ```text
//! csj couples                                   list the paper's 20 couples
//! csj generate --dataset vk --cid 1 --scale 64 \
//!              --out-b b.csjb --out-a a.csjb    materialise a couple to files
//! csj info b.csjb                               community statistics
//! csj join --b b.csjb --a a.csjb --eps 1 \
//!          --method ex-minmax [--json]          run one CSJ method
//! csj explain --b b.csjb --a a.csjb --eps 1 \
//!             --method auto                     join + plan + kernel telemetry
//! csj plan --show --nb 400 --na 4000            what would the planner pick?
//! csj plan --calibrate --out cost-table.txt     measure this machine's method
//!                                               costs, write a cost table
//! csj truth --b b.csjb --a a.csjb --eps 1       brute-force ground truth
//! csj serve-sim --qps 200 --duration-ms 2000    open-loop overload soak against
//!                                               the admission-controlled service
//! ```
//!
//! Files ending in `.csv` use the text format, anything else the compact
//! binary format (`csj_data::io`). The argument parser and the command
//! executor are library functions so the whole surface is unit-testable;
//! `main.rs` is a thin wrapper.

use std::path::{Path, PathBuf};

use csj_core::prepared::{ap_minmax_between, ex_minmax_between};
use csj_core::{run, Community, CsjMethod, CsjOptions, MatcherKind, PreparedCommunity};
use csj_data::io::{
    read_binary, read_binary_quarantine, read_csv, read_csv_quarantine, read_prepared,
    write_binary, write_csv, write_prepared,
};
use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_data::spec::COUPLES;
use csj_data::stats::summarize;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the paper's couple specifications.
    Couples,
    /// Generate one couple to a pair of files.
    Generate {
        dataset: Dataset,
        cid: u8,
        scale: u32,
        seed: u64,
        out_b: PathBuf,
        out_a: PathBuf,
    },
    /// Print statistics of one community file.
    Info { path: PathBuf },
    /// Precompute and persist the MinMax encodings of a community
    /// (writes a `.csjp` index file that `join` loads without
    /// re-encoding).
    Prepare {
        input: PathBuf,
        eps: u32,
        parts: usize,
        out: PathBuf,
    },
    /// Join two community files with one method.
    Join {
        b: PathBuf,
        a: PathBuf,
        eps: u32,
        method: CsjMethod,
        matcher: MatcherKind,
        parts: usize,
        json: bool,
        /// Print the closest N matched user pairs.
        pairs: usize,
    },
    /// Join two community files and print the kernel telemetry report
    /// (per-phase timings, prune histograms, candidate-stream depth,
    /// matcher flush counts) plus the cost-based plan for the pair
    /// (chosen method, estimated vs actual cost, rejected
    /// alternatives) instead of the result summary.
    Explain {
        b: PathBuf,
        a: PathBuf,
        eps: u32,
        method: CsjMethod,
        matcher: MatcherKind,
        parts: usize,
        /// Plan against a calibrated `csj-cost-table` file instead of
        /// the built-in seeded coefficients.
        cost_table: Option<PathBuf>,
    },
    /// Calibrate the planner's cost model on this machine: measure
    /// every method over generated couple shapes, fit the cost table
    /// and write it atomically.
    PlanCalibrate {
        /// Couple-size divisor for the calibration shapes (as in
        /// `generate --scale`: larger divisor, smaller communities).
        scale: u32,
        seed: u64,
        /// Best-of rounds per (shape, method) measurement.
        rounds: u32,
        out: PathBuf,
    },
    /// Resolve the cost-based plan for a hypothetical instance without
    /// running a join.
    PlanShow {
        nb: usize,
        na: usize,
        d: usize,
        eps: u32,
        exactness: csj_core::Exactness,
        /// Plan against a calibrated cost table (default: seeded).
        cost_table: Option<PathBuf>,
    },
    /// Rank candidate community files against an anchor (two-phase
    /// screen-then-refine pipeline).
    TopK {
        anchor: PathBuf,
        candidates: Vec<PathBuf>,
        eps: u32,
        k: usize,
        /// Wall-clock budget for the whole query; on exhaustion the
        /// ranking covers whatever was scored in time.
        deadline_ms: Option<u64>,
        /// Cap on joins executed by the query.
        max_joins: Option<u64>,
        /// Route the query through the fault-isolated sharded execution
        /// layer, over this many skew-aware shards; prints the shard
        /// layout and the typed coverage report.
        shards: Option<usize>,
    },
    /// Run a broadcast sweep over community files, then print the
    /// engine's `csj_*` metrics in the requested exposition format.
    Stats {
        communities: Vec<PathBuf>,
        eps: u32,
        /// Similarity threshold for the sweep that feeds the metrics.
        threshold: f64,
        format: StatsFormat,
        /// Route the sweep through the overload-safe service and merge
        /// its `csj_service_*` series into the output.
        via_service: bool,
        /// Load community files in quarantine mode: malformed records
        /// are skipped and counted in `csj_data_quarantined_total`.
        quarantine: bool,
    },
    /// Run a top-k query over community files (first file is the
    /// anchor) and dump the flight recorder's span traces.
    Trace {
        communities: Vec<PathBuf>,
        eps: u32,
        k: usize,
        deadline_ms: Option<u64>,
        max_joins: Option<u64>,
        /// How many of the most recent traces to print.
        last: usize,
        json: bool,
        /// Route the query through the overload-safe service and print
        /// its request traces (fate, retries, degradation attributes)
        /// instead of the engine's query spans.
        via_service: bool,
        /// Load community files in quarantine mode (see `stats`).
        quarantine: bool,
        /// Export the traces for external tooling instead of dumping
        /// them: `chrome` (Chrome `trace_event` JSON, loadable in
        /// `chrome://tracing` and Perfetto) or `jsonl` (one JSON trace
        /// per line).
        export: Option<String>,
        /// Write the export atomically to this file instead of stdout.
        out: Option<PathBuf>,
    },
    /// Run a budgeted top-k query over community files (first file is
    /// the anchor) and print the engine's slow-query forensic log:
    /// every captured record carries the query's full artifact set —
    /// plan provenance, rolled-up join telemetry, budget state and the
    /// whole span tree — so a pathological query can be reconstructed
    /// after the fact.
    Slow {
        communities: Vec<PathBuf>,
        eps: u32,
        k: usize,
        deadline_ms: Option<u64>,
        max_joins: Option<u64>,
        /// Capture threshold in microseconds: completed queries slower
        /// than this (and every non-completed query) are captured.
        /// 0 captures everything the workload produces.
        slow_threshold_us: u64,
        /// How many of the most recent forensic records to print.
        last: usize,
        json: bool,
        /// Also persist the rendered records atomically to this file.
        out: Option<PathBuf>,
        /// Load community files in quarantine mode (see `stats`).
        quarantine: bool,
    },
    /// Run a broadcast sweep plus a budgeted top-k over community
    /// files, then evaluate the engine's declarative SLOs — multi-window
    /// burn rates computed from the `csj_*` series — and print the
    /// per-(objective, window) verdicts.
    Slo {
        communities: Vec<PathBuf>,
        eps: u32,
        /// Similarity threshold for the sweep that feeds the metrics.
        threshold: f64,
        deadline_ms: Option<u64>,
        max_joins: Option<u64>,
        json: bool,
        /// Load community files in quarantine mode (see `stats`).
        quarantine: bool,
    },
    /// Brute-force ground truth of a pair.
    Truth { b: PathBuf, a: PathBuf, eps: u32 },
    /// Open-loop load soak against the overload-safe service: submit a
    /// mixed query stream over synthetic communities at a fixed rate,
    /// then report admission/shed/degrade/breaker behaviour, latency
    /// quantiles and the service invariants. Exits non-zero when an
    /// invariant is violated.
    ServeSim {
        /// Target submission rate, requests per second.
        qps: u64,
        /// Load-generation window, milliseconds.
        duration_ms: u64,
        workers: usize,
        /// Admission queue capacity (the shed point).
        queue: usize,
        /// Number of synthetic communities to register.
        communities: usize,
        /// Users per synthetic community.
        scale: u32,
        eps: u32,
        seed: u64,
        /// Per-request deadline; 0 disables deadlines (and with them
        /// the deadline-triggered degradation rung).
        deadline_ms: u64,
        /// Inject faults (a healing panic burst plus one pathologically
        /// slow community); needs the `chaos` cargo feature.
        chaos: bool,
        /// Targeted chaos mode: `shard-kill`, `shard-stall` or
        /// `shard-panic` route multi-pair requests through the sharded
        /// execution layer and attack one shard; `None` is the classic
        /// community-level fault mix. Implies `chaos`.
        chaos_mode: Option<String>,
        /// Write the final merged Prometheus exposition here.
        metrics_out: Option<PathBuf>,
        /// Run the ingest phase through the crash-consistent registry
        /// (WAL + snapshots) and assert replay convergence before the
        /// query soak.
        durable: bool,
        /// Directory for the WAL and snapshots; a scratch directory
        /// when omitted.
        durable_dir: Option<PathBuf>,
        /// Kill the durable ingest after this many WAL bytes (torn
        /// write at the budget boundary), then recover and assert the
        /// recovered state equals the acked prefix. Needs the `chaos`
        /// cargo feature.
        crash_after: Option<u64>,
        /// WAL fsync policy for the durable ingest.
        fsync: csj_durability::FsyncPolicy,
        /// Evaluate the service SLOs (multi-window burn rates) after
        /// the soak and self-check every verdict against the fate
        /// counters; a breach the fate counters cannot back is an
        /// invariant violation (exit 2).
        slo: bool,
    },
    /// Write a checksummed snapshot of a durable registry directory and
    /// truncate its WAL.
    Snapshot { dir: PathBuf },
    /// Rebuild a registry from a durable directory (read-only) and
    /// print the typed recovery report. With `verify`, re-run recovery
    /// and check registry invariants, exiting non-zero on any breach.
    Recover { dir: PathBuf, verify: bool },
}

/// Output format of `csj stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition format 0.0.4.
    Prometheus,
    /// One JSON object per metric sample.
    Json,
    /// Human-readable summary ([`csj_engine::EngineStats`] display).
    Text,
}

impl std::str::FromStr for StatsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "prom" | "prometheus" => Ok(StatsFormat::Prometheus),
            "json" => Ok(StatsFormat::Json),
            "text" => Ok(StatsFormat::Text),
            other => Err(format!("--format expects prom|json|text, got {other:?}")),
        }
    }
}

/// CLI errors (bad arguments, I/O, join rejections).
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed; the message is user-facing usage help.
    Usage(String),
    /// File I/O or format failure.
    Io(String),
    /// The join itself was rejected.
    Csj(csj_core::CsjError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "i/o error: {msg}"),
            CliError::Csj(e) => write!(f, "join rejected: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage banner.
pub const USAGE: &str = "\
usage:
  csj couples
  csj generate --dataset <vk|synthetic> --cid <1..20> [--scale N] [--seed S] --out-b FILE --out-a FILE
  csj info <FILE>
  csj prepare --input FILE --eps E [--parts P] --out FILE.csjp
  csj join --b FILE --a FILE --eps E [--method M] [--matcher K] [--parts P] [--json] [--pairs N]
  csj explain --b FILE --a FILE --eps E [--method M|auto] [--matcher K] [--parts P] [--cost-table FILE]
  csj plan --show --nb N --na N [--d D] [--eps E] [--exact|--approx] [--cost-table FILE]
  csj plan --calibrate [--scale N] [--seed S] [--rounds R] [--out FILE]
  csj topk --anchor FILE --candidates F1,F2,... --eps E [--k K] [--deadline-ms MS] [--max-joins N] [--shards N]
  csj stats --communities F1,F2,... --eps E [--threshold T] [--format prom|json|text] [--via-service] [--quarantine]
  csj trace --communities F1,F2,... --eps E [--k K] [--deadline-ms MS] [--max-joins N] [--last N] [--json] [--via-service] [--quarantine]
            [--export chrome|jsonl] [--out FILE]
  csj slow --communities F1,F2,... --eps E [--k K] [--deadline-ms MS] [--max-joins N] [--slow-threshold-us T] [--last N] [--json] [--out FILE] [--quarantine]
  csj slo --communities F1,F2,... --eps E [--threshold T] [--deadline-ms MS] [--max-joins N] [--json] [--quarantine]
  csj truth --b FILE --a FILE --eps E
  csj serve-sim [--qps N] [--duration-ms MS] [--workers W] [--queue Q] [--communities M] [--scale U]
                [--eps E] [--seed S] [--deadline-ms MS] [--chaos [shard-kill|shard-stall|shard-panic]]
                [--metrics-out FILE] [--slo]
                [--durable] [--durable-dir DIR] [--crash-after BYTES] [--fsync always|interval:N]
  csj snapshot --dir DIR
  csj recover --dir DIR [--verify]
formats: *.csv is text, *.csjp is a prepared index, anything else the CSJB binary format";

fn parse_fsync(v: &str) -> Result<csj_durability::FsyncPolicy, CliError> {
    if v == "always" {
        return Ok(csj_durability::FsyncPolicy::Always);
    }
    if let Some(n) = v.strip_prefix("interval:") {
        let n: u32 = n
            .parse()
            .map_err(|_| CliError::Usage(format!("--fsync interval expects a count, got {v:?}")))?;
        return Ok(csj_durability::FsyncPolicy::Interval(n));
    }
    Err(CliError::Usage(format!(
        "--fsync expects always|interval:N, got {v:?}"
    )))
}

/// Parse raw arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str);
    let sub = it
        .next()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    let rest: Vec<&str> = it.collect();
    let get = |flag: &str| -> Option<&str> {
        rest.iter()
            .position(|&a| a == flag)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let has = |flag: &str| rest.contains(&flag);
    let require = |flag: &str| -> Result<&str, CliError> {
        get(flag).ok_or_else(|| CliError::Usage(format!("missing {flag}")))
    };
    let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("{flag} expects a number, got {v:?}")))
    };
    let community_list = || -> Result<Vec<PathBuf>, CliError> {
        let files: Vec<PathBuf> = require("--communities")?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
            .collect();
        if files.len() < 2 {
            return Err(CliError::Usage(
                "--communities expects at least two comma-separated files".into(),
            ));
        }
        Ok(files)
    };

    match sub {
        "couples" => Ok(Command::Couples),
        "generate" => {
            let dataset = match require("--dataset")? {
                "vk" => Dataset::VkLike,
                "synthetic" => Dataset::Uniform,
                other => {
                    return Err(CliError::Usage(format!(
                        "--dataset expects vk|synthetic, got {other:?}"
                    )))
                }
            };
            let cid = parse_num("--cid", require("--cid")?)? as u8;
            if !(1..=20).contains(&cid) {
                return Err(CliError::Usage("--cid must be 1..=20".into()));
            }
            let scale = get("--scale").map_or(Ok(64), |v| parse_num("--scale", v))? as u32;
            if scale == 0 {
                return Err(CliError::Usage("--scale must be >= 1".into()));
            }
            let seed = get("--seed").map_or(Ok(0xC5A0_2024), |v| parse_num("--seed", v))?;
            Ok(Command::Generate {
                dataset,
                cid,
                scale,
                seed,
                out_b: PathBuf::from(require("--out-b")?),
                out_a: PathBuf::from(require("--out-a")?),
            })
        }
        "prepare" => Ok(Command::Prepare {
            input: PathBuf::from(require("--input")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
            out: PathBuf::from(require("--out")?),
        }),
        "info" => {
            let path = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError::Usage("info expects a file path".into()))?;
            Ok(Command::Info {
                path: PathBuf::from(path),
            })
        }
        "join" => Ok(Command::Join {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            method: get("--method")
                .unwrap_or("ex-minmax")
                .parse()
                .map_err(CliError::Usage)?,
            matcher: get("--matcher")
                .unwrap_or("csf")
                .parse()
                .map_err(CliError::Usage)?,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
            json: has("--json"),
            pairs: get("--pairs").map_or(Ok(0), |v| parse_num("--pairs", v))? as usize,
        }),
        "explain" => Ok(Command::Explain {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            method: get("--method")
                .unwrap_or("ex-minmax")
                .parse()
                .map_err(CliError::Usage)?,
            matcher: get("--matcher")
                .unwrap_or("csf")
                .parse()
                .map_err(CliError::Usage)?,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
            cost_table: get("--cost-table").map(PathBuf::from),
        }),
        "plan" => {
            if has("--calibrate") {
                return Ok(Command::PlanCalibrate {
                    scale: get("--scale").map_or(Ok(1024), |v| parse_num("--scale", v))? as u32,
                    seed: get("--seed").map_or(Ok(0xC5A0_2024), |v| parse_num("--seed", v))?,
                    rounds: get("--rounds")
                        .map_or(Ok(2), |v| parse_num("--rounds", v))?
                        .max(1) as u32,
                    out: PathBuf::from(get("--out").unwrap_or("csj-cost-table.txt")),
                });
            }
            if !has("--show") {
                return Err(CliError::Usage("plan expects --show or --calibrate".into()));
            }
            if has("--exact") && has("--approx") {
                return Err(CliError::Usage(
                    "--exact and --approx are mutually exclusive".into(),
                ));
            }
            let exactness = if has("--exact") {
                csj_core::Exactness::Exact
            } else if has("--approx") {
                csj_core::Exactness::Approximate
            } else {
                csj_core::Exactness::Any
            };
            let nb = parse_num("--nb", require("--nb")?)? as usize;
            let na = parse_num("--na", require("--na")?)? as usize;
            if nb == 0 || na == 0 {
                return Err(CliError::Usage("--nb and --na must be >= 1".into()));
            }
            Ok(Command::PlanShow {
                nb,
                na,
                d: get("--d").map_or(Ok(2), |v| parse_num("--d", v))? as usize,
                eps: get("--eps").map_or(Ok(1), |v| parse_num("--eps", v))? as u32,
                exactness,
                cost_table: get("--cost-table").map(PathBuf::from),
            })
        }
        "topk" => {
            let anchor = PathBuf::from(require("--anchor")?);
            let candidates: Vec<PathBuf> = require("--candidates")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
                .collect();
            if candidates.is_empty() {
                return Err(CliError::Usage(
                    "--candidates expects a comma-separated list".into(),
                ));
            }
            Ok(Command::TopK {
                anchor,
                candidates,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                k: get("--k").map_or(Ok(3), |v| parse_num("--k", v))? as usize,
                deadline_ms: get("--deadline-ms")
                    .map(|v| parse_num("--deadline-ms", v))
                    .transpose()?,
                max_joins: get("--max-joins")
                    .map(|v| parse_num("--max-joins", v))
                    .transpose()?,
                shards: match get("--shards")
                    .map(|v| parse_num("--shards", v))
                    .transpose()?
                {
                    Some(0) => {
                        return Err(CliError::Usage("--shards must be >= 1".into()));
                    }
                    n => n.map(|n| n as usize),
                },
            })
        }
        "stats" => {
            let communities = community_list()?;
            let threshold = get("--threshold").map_or(Ok(0.15), |v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("--threshold expects a ratio, got {v:?}")))
            })?;
            Ok(Command::Stats {
                communities,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                threshold,
                format: get("--format")
                    .unwrap_or("prom")
                    .parse()
                    .map_err(CliError::Usage)?,
                via_service: has("--via-service"),
                quarantine: has("--quarantine"),
            })
        }
        "trace" => {
            let communities = community_list()?;
            let export = get("--export").map(str::to_string);
            if let Some(fmt) = &export {
                if fmt != "chrome" && fmt != "jsonl" {
                    return Err(CliError::Usage(format!(
                        "--export expects chrome|jsonl, got {fmt:?}"
                    )));
                }
            }
            let out = get("--out").map(PathBuf::from);
            if out.is_some() && export.is_none() {
                return Err(CliError::Usage("--out needs --export".into()));
            }
            Ok(Command::Trace {
                communities,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                k: get("--k").map_or(Ok(3), |v| parse_num("--k", v))? as usize,
                deadline_ms: get("--deadline-ms")
                    .map(|v| parse_num("--deadline-ms", v))
                    .transpose()?,
                max_joins: get("--max-joins")
                    .map(|v| parse_num("--max-joins", v))
                    .transpose()?,
                last: get("--last").map_or(Ok(1), |v| parse_num("--last", v))? as usize,
                json: has("--json"),
                via_service: has("--via-service"),
                quarantine: has("--quarantine"),
                export,
                out,
            })
        }
        "slow" => Ok(Command::Slow {
            communities: community_list()?,
            eps: parse_num("--eps", require("--eps")?)? as u32,
            k: get("--k").map_or(Ok(3), |v| parse_num("--k", v))? as usize,
            deadline_ms: get("--deadline-ms")
                .map(|v| parse_num("--deadline-ms", v))
                .transpose()?,
            max_joins: get("--max-joins")
                .map(|v| parse_num("--max-joins", v))
                .transpose()?,
            slow_threshold_us: get("--slow-threshold-us")
                .map_or(Ok(0), |v| parse_num("--slow-threshold-us", v))?,
            last: get("--last").map_or(Ok(8), |v| parse_num("--last", v))? as usize,
            json: has("--json"),
            out: get("--out").map(PathBuf::from),
            quarantine: has("--quarantine"),
        }),
        "slo" => {
            let communities = community_list()?;
            let threshold = get("--threshold").map_or(Ok(0.15), |v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("--threshold expects a ratio, got {v:?}")))
            })?;
            Ok(Command::Slo {
                communities,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                threshold,
                deadline_ms: get("--deadline-ms")
                    .map(|v| parse_num("--deadline-ms", v))
                    .transpose()?,
                max_joins: get("--max-joins")
                    .map(|v| parse_num("--max-joins", v))
                    .transpose()?,
                json: has("--json"),
                quarantine: has("--quarantine"),
            })
        }
        "truth" => Ok(Command::Truth {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
        }),
        "serve-sim" => {
            // `--chaos` takes an optional mode value: the next token,
            // unless it is another flag.
            let chaos_mode = rest
                .iter()
                .position(|&a| a == "--chaos")
                .and_then(|i| rest.get(i + 1).copied())
                .filter(|v| !v.starts_with("--"))
                .map(str::to_string);
            if let Some(mode) = &chaos_mode {
                if !matches!(mode.as_str(), "shard-kill" | "shard-stall" | "shard-panic") {
                    return Err(CliError::Usage(format!(
                        "--chaos takes no value or shard-kill|shard-stall|shard-panic, \
                         got {mode:?}"
                    )));
                }
            }
            let communities =
                get("--communities").map_or(Ok(6), |v| parse_num("--communities", v))? as usize;
            if communities < 2 {
                return Err(CliError::Usage("--communities must be >= 2".into()));
            }
            let qps = get("--qps").map_or(Ok(100), |v| parse_num("--qps", v))?;
            if qps == 0 {
                return Err(CliError::Usage("--qps must be >= 1".into()));
            }
            Ok(Command::ServeSim {
                qps,
                duration_ms: get("--duration-ms")
                    .map_or(Ok(2_000), |v| parse_num("--duration-ms", v))?,
                workers: get("--workers").map_or(Ok(2), |v| parse_num("--workers", v))? as usize,
                queue: get("--queue").map_or(Ok(8), |v| parse_num("--queue", v))? as usize,
                communities,
                scale: get("--scale").map_or(Ok(240), |v| parse_num("--scale", v))? as u32,
                eps: get("--eps").map_or(Ok(1), |v| parse_num("--eps", v))? as u32,
                seed: get("--seed").map_or(Ok(42), |v| parse_num("--seed", v))?,
                deadline_ms: get("--deadline-ms")
                    .map_or(Ok(100), |v| parse_num("--deadline-ms", v))?,
                chaos: has("--chaos"),
                chaos_mode,
                metrics_out: get("--metrics-out").map(PathBuf::from),
                durable: has("--durable") || has("--durable-dir") || has("--crash-after"),
                durable_dir: get("--durable-dir").map(PathBuf::from),
                crash_after: get("--crash-after")
                    .map(|v| parse_num("--crash-after", v))
                    .transpose()?,
                fsync: get("--fsync")
                    .map_or(Ok(csj_durability::FsyncPolicy::Always), parse_fsync)?,
                slo: has("--slo"),
            })
        }
        "snapshot" => Ok(Command::Snapshot {
            dir: PathBuf::from(require("--dir")?),
        }),
        "recover" => Ok(Command::Recover {
            dir: PathBuf::from(require("--dir")?),
            verify: has("--verify"),
        }),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

/// A community file, possibly carrying a persisted prepared index.
enum Loaded {
    Plain(Community),
    Prepared(Box<PreparedCommunity>),
}

impl Loaded {
    fn community(&self) -> &Community {
        match self {
            Loaded::Plain(c) => c,
            Loaded::Prepared(p) => p.community(),
        }
    }
}

fn load_any(path: &Path) -> Result<Loaded, CliError> {
    if path.extension().is_some_and(|e| e == "csjp") {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        let prepared =
            read_prepared(file).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        Ok(Loaded::Prepared(Box::new(prepared)))
    } else {
        load(path).map(Loaded::Plain)
    }
}

fn load(path: &Path) -> Result<Community, CliError> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    let is_csv = path.extension().is_some_and(|e| e == "csv");
    let parsed = if is_csv {
        read_csv(file)
    } else {
        read_binary(file)
    };
    parsed.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
}

/// Orient two loaded communities smaller-first (the CSJ convention:
/// `B` is the smaller side).
fn orient(lb: Loaded, la: Loaded) -> (Loaded, Loaded) {
    if lb.community().len() <= la.community().len() {
        (lb, la)
    } else {
        (la, lb)
    }
}

/// Load both sides, orient them smaller-first, and run `method` under
/// `opts` — through the persisted encodings when both sides carry a
/// compatible `.csjp` index and the method has a prepared fast path.
/// Shared by `join` and `explain`.
fn load_and_join(
    b: &Path,
    a: &Path,
    method: CsjMethod,
    opts: &CsjOptions,
) -> Result<(Loaded, Loaded, csj_core::JoinOutcome), CliError> {
    let (lb, la) = orient(load_any(b)?, load_any(a)?);
    join_loaded(lb, la, method, opts)
}

/// Join two already-loaded, already-oriented communities.
fn join_loaded(
    lb: Loaded,
    la: Loaded,
    method: CsjMethod,
    opts: &CsjOptions,
) -> Result<(Loaded, Loaded, csj_core::JoinOutcome), CliError> {
    let prepared_path = match (&lb, &la) {
        (Loaded::Prepared(pb), Loaded::Prepared(pa))
            if pb.eps() == opts.eps
                && pa.eps() == opts.eps
                && pb.params() == opts.encoding
                && pa.params() == opts.encoding =>
        {
            match method {
                CsjMethod::ApMinMax => Some(ap_minmax_between(pb, pa, opts)),
                CsjMethod::ExMinMax => Some(ex_minmax_between(pb, pa, opts)),
                _ => None,
            }
        }
        _ => None,
    };
    let outcome = match prepared_path {
        Some(raw) => {
            let start = std::time::Instant::now();
            let _ = &raw; // join already ran; timing below reports packaging only
            csj_core::JoinOutcome {
                method,
                similarity: csj_core::Similarity::new(raw.pairs.len(), lb.community().len()),
                pairs: raw.pairs,
                events: raw.telemetry.events,
                telemetry: raw.telemetry,
                ego_stats: raw.ego,
                elapsed: start.elapsed() + raw.timings.total(),
                timings: raw.timings,
                cancelled: raw.cancelled,
            }
        }
        None => run(method, lb.community(), la.community(), opts).map_err(CliError::Csj)?,
    };
    Ok((lb, la, outcome))
}

/// Load one community in quarantine mode: malformed records are skipped
/// and returned as a count instead of failing the whole load. Prepared
/// `.csjp` indexes have no record-level failure mode and load as-is.
fn load_quarantine(path: &Path) -> Result<(Community, u64), CliError> {
    if path.extension().is_some_and(|e| e == "csjp") {
        return load_any(path).map(|l| match l {
            Loaded::Plain(c) => (c, 0),
            Loaded::Prepared(p) => (p.into_community(), 0),
        });
    }
    let file =
        std::fs::File::open(path).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    let parsed = if path.extension().is_some_and(|e| e == "csv") {
        read_csv_quarantine(file)
    } else {
        read_binary_quarantine(file)
    };
    let (c, quarantined) = parsed.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    Ok((c, quarantined.len() as u64))
}

/// Load community files and register them all in one fresh engine; the
/// first file's dimensionality sets the engine's. Used by the
/// observability subcommands (`stats`, `trace`) and the service paths.
/// With `quarantine` set, malformed records are skipped and folded into
/// the engine's `csj_data_quarantined_total` metric.
fn load_engine(
    files: &[PathBuf],
    eps: u32,
    quarantine: bool,
    slow_threshold_us: Option<u64>,
) -> Result<(csj_engine::CsjEngine, Vec<csj_engine::CommunityHandle>), CliError> {
    use csj_engine::{CsjEngine, EngineConfig};
    let mut engine: Option<CsjEngine> = None;
    let mut handles = Vec::new();
    let mut quarantined_total = 0u64;
    for path in files {
        let c = if quarantine {
            let (c, quarantined) = load_quarantine(path)?;
            quarantined_total += quarantined;
            c
        } else {
            match load_any(path)? {
                Loaded::Plain(c) => c,
                Loaded::Prepared(p) => p.into_community(),
            }
        };
        let engine = engine.get_or_insert_with(|| {
            let mut config = EngineConfig::new(eps);
            if let Some(t) = slow_threshold_us {
                config.obs.slow_threshold_us = t;
            }
            CsjEngine::new(c.d(), config)
        });
        handles.push(
            engine
                .register(c)
                .map_err(|e| CliError::Io(e.to_string()))?,
        );
    }
    let engine = engine.ok_or_else(|| CliError::Usage("no community files given".into()))?;
    engine.note_quarantined(quarantined_total);
    Ok((engine, handles))
}

/// Nominal evaluation instant for one-shot CLI SLO evaluations. The
/// SLO engine runs on a caller-supplied clock; a CLI run brackets its
/// whole workload between `observe(0, ..)` and `observe(SLO_EVAL_US, ..)`,
/// so both default windows clip to the run's full span and the burn
/// rates describe exactly the traffic the command generated.
const SLO_EVAL_US: u64 = 60_000_000;

/// The engine-side SLO preset for `csj slo` and `csj stats`: burn
/// rates declared over the engine's own `csj_*` series, no extra
/// instrumentation.
///
/// * `join_latency` — ≤1% of joins slower than 100ms;
/// * `exhausted_fraction` — ≤5% of queries running out of budget.
fn engine_slos() -> Vec<csj_obs::Objective> {
    use csj_obs::{CounterSelector, Objective, SloSource};
    vec![
        Objective {
            name: "join_latency".into(),
            target: 0.01,
            source: SloSource::LatencyAbove {
                histogram: "csj_join_latency_seconds".into(),
                labels: vec![],
                threshold_us: 100_000,
            },
        },
        Objective {
            name: "exhausted_fraction".into(),
            target: 0.05,
            source: SloSource::CounterFraction {
                bad: CounterSelector::new("csj_budget_exhausted_total", &[]),
                total: CounterSelector::new("csj_queries_total", &[]),
            },
        },
    ]
}

/// Render SLO statuses as a JSON array (hand-rolled: the statuses are
/// flat and the field set is stable).
fn slo_statuses_json(statuses: &[csj_obs::SloStatus]) -> String {
    let items: Vec<String> = statuses
        .iter()
        .map(|s| {
            format!(
                "{{\"objective\":\"{}\",\"window\":\"{}\",\"target\":{},\"bad\":{},\
                 \"total\":{},\"bad_fraction\":{},\"burn_rate\":{},\"breached\":{}}}",
                s.objective,
                s.window,
                s.target,
                s.bad,
                s.total,
                s.bad_fraction,
                s.burn_rate,
                s.breached
            )
        })
        .collect();
    format!("[{}]\n", items.join(","))
}

/// Load a `csj-cost-table` file, or the built-in seeded coefficients
/// when no path is given.
fn load_cost_table(path: Option<&Path>) -> Result<csj_core::CostTable, CliError> {
    match path {
        None => Ok(csj_core::CostTable::seeded()),
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| CliError::Io(format!("{}: {e}", p.display())))?;
            csj_core::CostTable::from_text(&text)
                .map_err(|e| CliError::Io(format!("{}: {e}", p.display())))
        }
    }
}

/// Measure every method over a spread of generated couple shapes, fit
/// the cost model ([`csj_core::plan::fit`]) and write the table
/// atomically (tmp file + rename, so readers never see a torn table).
fn plan_calibrate(scale: u32, seed: u64, rounds: u32, out: &Path) -> Result<String, CliError> {
    use std::fmt::Write as _;
    // A spread of couple shapes (different |B|/|A| ratios) at two
    // scales, so the fit sees both sides of the method crossover. The
    // scale is a size *divisor*: `scale * 8` gives the small-instance
    // shapes, `scale` the large ones.
    let shapes: Vec<(u8, u32)> = [1u8, 8, 15]
        .iter()
        .flat_map(|&cid| [(cid, scale.saturating_mul(8)), (cid, scale)])
        .collect();
    let mut samples = Vec::new();
    let mut report = String::new();
    for &(cid, shape_scale) in &shapes {
        let spec = csj_data::spec::couple(cid);
        let pair = build_couple(
            spec,
            Dataset::Uniform,
            BuildOptions {
                scale: shape_scale,
                seed,
            },
        );
        let (b, a) = if pair.b.len() <= pair.a.len() {
            (&pair.b, &pair.a)
        } else {
            (&pair.a, &pair.b)
        };
        let opts = CsjOptions::new(pair.eps);
        let input =
            csj_core::PlanInput::new(b.len(), a.len(), b.d(), pair.eps, csj_core::Exactness::Any);
        for method in CsjMethod::ALL {
            let mut best = f64::INFINITY;
            for _ in 0..rounds {
                let outcome = run(method, b, a, &opts).map_err(CliError::Csj)?;
                best = best.min(outcome.timings.total().as_secs_f64() * 1e6);
            }
            samples.push(csj_core::CostSample {
                method,
                input,
                actual_us: best.max(1.0),
            });
        }
        let _ = writeln!(
            report,
            "  cid {cid} x{shape_scale}: |B| = {}, |A| = {}, eps = {}",
            b.len(),
            a.len(),
            pair.eps
        );
    }
    let fitted = csj_core::plan::fit(&samples, &csj_core::CostTable::seeded());
    let tmp = out.with_extension("tmp");
    std::fs::write(&tmp, fitted.to_text())
        .map_err(|e| CliError::Io(format!("{}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, out).map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
    Ok(format!(
        "calibrated over {} shapes ({} samples, best of {rounds}):\n{report}cost table written to {}\n",
        shapes.len(),
        samples.len(),
        out.display()
    ))
}

fn store(community: &Community, path: &Path) -> Result<(), CliError> {
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    let is_csv = path.extension().is_some_and(|e| e == "csv");
    let written = if is_csv {
        write_csv(community, file)
    } else {
        write_binary(community, file)
    };
    written.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
}

/// Execute a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    use std::fmt::Write as _;
    match cmd {
        Command::Couples => {
            let mut out =
                String::from("cID  categories (B | A)                          size_B   size_A\n");
            for c in &COUPLES {
                let _ = writeln!(
                    out,
                    "{:>3}  {:<43} {:>7}  {:>7}",
                    c.cid,
                    format!("{} | {}", c.cat_b, c.cat_a),
                    c.size_b,
                    c.size_a
                );
            }
            Ok(out)
        }
        Command::Generate {
            dataset,
            cid,
            scale,
            seed,
            out_b,
            out_a,
        } => {
            let spec = csj_data::spec::couple(cid);
            let pair = build_couple(spec, dataset, BuildOptions { scale, seed });
            store(&pair.b, &out_b)?;
            store(&pair.a, &out_a)?;
            Ok(format!(
                "wrote {} ({} users) and {} ({} users); join with --eps {}\n",
                out_b.display(),
                pair.b.len(),
                out_a.display(),
                pair.a.len(),
                pair.eps
            ))
        }
        Command::Info { path } => {
            let c = load(&path)?;
            let s = summarize(&c);
            Ok(format!(
                "community: {}\nusers: {}\ndimensions: {}\nmean counter: {:.2}\n\
                 median: {}\np99: {}\nmax: {}\nzero fraction: {:.1}%\n",
                c.name(),
                c.len(),
                c.d(),
                s.mean,
                s.p50,
                s.p99,
                s.max,
                s.zero_fraction * 100.0
            ))
        }
        Command::Prepare {
            input,
            eps,
            parts,
            out,
        } => {
            let community = load(&input)?;
            let opts = CsjOptions::new(eps).with_parts(parts);
            let prepared = PreparedCommunity::new(community, &opts);
            let file = std::fs::File::create(&out)
                .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
            write_prepared(&prepared, file)
                .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
            Ok(format!(
                "wrote {} ({} users, eps = {eps}, {} parts, {} KiB of encodings)\n",
                out.display(),
                prepared.len(),
                prepared.encoded_b().parts(),
                (prepared.encoded_b().memory_bytes() + prepared.encoded_a().memory_bytes()) / 1024
            ))
        }
        Command::Join {
            b,
            a,
            eps,
            method,
            matcher,
            parts,
            json,
            pairs,
        } => {
            let opts = CsjOptions::new(eps).with_matcher(matcher).with_parts(parts);
            let (lb, la, outcome) = load_and_join(&b, &a, method, &opts)?;
            let (cb, ca) = (lb.community(), la.community());
            let closest_pairs = if pairs > 0 {
                let mut scored: Vec<(u64, u64, u64)> = outcome
                    .pairs
                    .iter()
                    .map(|&(i, j)| {
                        let gap: u64 = cb
                            .vector(i as usize)
                            .iter()
                            .zip(ca.vector(j as usize))
                            .map(|(&x, &y)| x.abs_diff(y) as u64)
                            .sum();
                        (cb.user_id(i as usize), ca.user_id(j as usize), gap)
                    })
                    .collect();
                scored.sort_by_key(|&(b_id, a_id, gap)| (gap, b_id, a_id));
                scored.truncate(pairs);
                scored
            } else {
                Vec::new()
            };
            if json {
                let value = serde_json::json!({
                    "method": outcome.method.name(),
                    "eps": eps,
                    "matcher": matcher.name(),
                    "b": {"name": cb.name(), "size": cb.len()},
                    "a": {"name": ca.name(), "size": ca.len()},
                    "matched": outcome.similarity.matched,
                    "similarity_pct": outcome.similarity.percent(),
                    "seconds": outcome.elapsed.as_secs_f64(),
                    "events": outcome.events.to_string(),
                });
                Ok(format!(
                    "{}\n",
                    serde_json::to_string_pretty(&value).expect("serialises")
                ))
            } else {
                use std::fmt::Write as _;
                let mut out = format!(
                    "{} | {} vs {} | eps = {eps}\nsimilarity: {} ({} of {} B-users matched)\n\
                     time: {:.3} s\nevents: {}\n",
                    outcome.method.name(),
                    cb.name(),
                    ca.name(),
                    outcome.similarity,
                    outcome.similarity.matched,
                    cb.len(),
                    outcome.elapsed.as_secs_f64(),
                    outcome.events
                );
                if !closest_pairs.is_empty() {
                    let _ = writeln!(out, "closest matched pairs (B-user, A-user, L1 gap):");
                    for (bu, au, gap) in &closest_pairs {
                        let _ = writeln!(out, "  {bu} ~ {au} (gap {gap})");
                    }
                }
                Ok(out)
            }
        }
        Command::Explain {
            b,
            a,
            eps,
            method,
            matcher,
            parts,
            cost_table,
        } => {
            let opts = CsjOptions::new(eps).with_matcher(matcher).with_parts(parts);
            let table = load_cost_table(cost_table.as_deref())?;
            let (lb, la) = orient(load_any(&b)?, load_any(&a)?);
            let input = csj_core::PlanInput::new(
                lb.community().len(),
                la.community().len(),
                lb.community().d(),
                eps,
                csj_core::Exactness::Any,
            );
            let plan = table.plan(&input);
            let run_method = if method == CsjMethod::Auto {
                plan.chosen
            } else {
                method
            };
            let (lb, la, outcome) = join_loaded(lb, la, run_method, &opts)?;
            let t = outcome.timings;
            let plan_line = if method == CsjMethod::Auto {
                format!("requested auto -> chosen {}", plan.chosen.name())
            } else if method == plan.chosen {
                format!(
                    "requested {} (pinned; also the planner's choice)",
                    method.name()
                )
            } else {
                format!(
                    "requested {} (pinned; planner would pick {})",
                    method.name(),
                    plan.chosen.name()
                )
            };
            Ok(format!(
                "{} | {} vs {} | eps = {eps}\n\
                 similarity: {} ({} of {} B-users matched)\n\
                 phases: setup {:.3} s | pairing {:.3} s | matching {:.3} s (total {:.3} s)\n\
                 plan: {plan_line}\n\
                 plan cost: estimated {:.0} us, actual {:.0} us (cost table v{}, {})\n\
                 plan alternatives: {}\n{}",
                run_method.name(),
                lb.community().name(),
                la.community().name(),
                outcome.similarity,
                outcome.similarity.matched,
                lb.community().len(),
                t.setup.as_secs_f64(),
                t.pairing.as_secs_f64(),
                t.matching.as_secs_f64(),
                t.total().as_secs_f64(),
                table.estimate(run_method, &input),
                t.total().as_secs_f64() * 1e6,
                plan.table_version,
                plan.table_source,
                plan.rejected_summary(),
                outcome.telemetry,
            ))
        }
        Command::PlanCalibrate {
            scale,
            seed,
            rounds,
            out,
        } => plan_calibrate(scale, seed, rounds, &out),
        Command::PlanShow {
            nb,
            na,
            d,
            eps,
            exactness,
            cost_table,
        } => {
            let table = load_cost_table(cost_table.as_deref())?;
            let input = csj_core::PlanInput::new(nb, na, d, eps, exactness);
            let plan = table.plan(&input);
            Ok(format!(
                "plan for |B| = {nb}, |A| = {na}, d = {d}, eps = {eps} ({})\n\
                 cost table: v{} ({})\n\
                 chosen: {} (estimated {:.0} us)\n\
                 alternatives: {}\n",
                exactness.label(),
                plan.table_version,
                plan.table_source,
                plan.chosen.name(),
                plan.estimated_us,
                plan.rejected_summary(),
            ))
        }
        Command::TopK {
            anchor,
            candidates,
            eps,
            k,
            deadline_ms,
            max_joins,
            shards,
        } => {
            use csj_engine::{Budget, CsjEngine, EngineConfig};
            let anchor_c = match load_any(&anchor)? {
                Loaded::Plain(c) => c,
                Loaded::Prepared(p) => p.into_community(),
            };
            let d = anchor_c.d();
            let mut config = EngineConfig::new(eps);
            if let Some(n) = shards {
                config.shard.enabled = true;
                config.shard.shards = n;
            }
            let mut engine = CsjEngine::new(d, config);
            let anchor_h = engine
                .register(anchor_c)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let mut handles = Vec::new();
            for path in &candidates {
                let c = match load_any(path)? {
                    Loaded::Plain(c) => c,
                    Loaded::Prepared(p) => p.into_community(),
                };
                handles.push(
                    engine
                        .register(c)
                        .map_err(|e| CliError::Io(e.to_string()))?,
                );
            }
            let mut budget = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(max) = max_joins {
                budget = budget.with_max_joins(max);
            }
            let partial = if shards.is_some() {
                engine.screen_and_refine_sharded_with_budget(anchor_h, &handles, &budget)
            } else {
                engine.screen_and_refine_with_budget(anchor_h, &handles, &budget)
            }
            .map_err(|e| CliError::Io(e.to_string()))?;
            let exhausted = partial.exhausted;
            let coverage = partial.coverage;
            let mut ranked = partial.value;
            ranked.truncate(k);
            use std::fmt::Write as _;
            let mut out = format!(
                "top-{} of {} candidates vs {}:\n",
                k,
                candidates.len(),
                engine.community(anchor_h).expect("registered").name()
            );
            if shards.is_some() {
                let layout = engine
                    .shard_layout(&handles)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                let _ = writeln!(
                    out,
                    "  shard layout: {} shards, masses {:?}, imbalance {:.2}",
                    layout.shards.len(),
                    layout.masses,
                    layout.imbalance()
                );
            }
            if let Some(cov) = coverage {
                let _ = writeln!(out, "  shard coverage: {cov}");
                if cov.is_partial() {
                    let _ = writeln!(
                        out,
                        "  (coverage is partial — surviving results are exact, \
                         but unscreened candidates may be missing)"
                    );
                }
            }
            if let Some(marker) = exhausted {
                let _ = writeln!(
                    out,
                    "  (budget exhausted: {}; {} joins done, {} skipped — ranking is partial)",
                    marker.reason, marker.pairs_done, marker.pairs_skipped
                );
            }
            if ranked.is_empty() {
                let _ = writeln!(out, "  (no candidate cleared the screening threshold)");
            }
            for (rank, p) in ranked.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {} {}",
                    rank + 1,
                    engine.community(p.y).expect("registered").name(),
                    p.similarity
                );
            }
            Ok(out)
        }
        Command::Stats {
            communities,
            eps,
            threshold,
            format,
            via_service,
            quarantine,
        } => {
            use csj_obs::{default_windows, SloEngine};
            let (engine, _handles) = load_engine(&communities, eps, quarantine, None)?;
            if via_service {
                use csj_service::{service_slos, CsjService, Request, ServiceConfig};
                let slo = SloEngine::new(
                    engine_slos()
                        .into_iter()
                        .chain(service_slos(250_000))
                        .collect(),
                    default_windows(),
                );
                let service = CsjService::start(engine, ServiceConfig::default());
                slo.observe(0, &service.metrics_snapshot());
                service
                    .call(Request::PairsAbove { threshold })
                    .map_err(|e| CliError::Io(e.to_string()))?;
                let mut snap = service.metrics_snapshot();
                slo.observe(SLO_EVAL_US, &snap);
                slo.evaluate(SLO_EVAL_US);
                snap.metrics.extend(slo.snapshot().metrics);
                return Ok(match format {
                    StatsFormat::Prometheus => snap.to_prometheus(),
                    StatsFormat::Json => format!("{}\n", snap.to_json()),
                    StatsFormat::Text => {
                        let submitted = snap.counter_value("csj_service_submitted_total", &[]);
                        let shed = snap.counter_value("csj_service_shed_total", &[]);
                        let answered = snap.counter_value(
                            "csj_service_completed_total",
                            &[("outcome", "answered")],
                        );
                        let degraded = snap.counter_value(
                            "csj_service_completed_total",
                            &[("outcome", "degraded")],
                        );
                        let engine = service.shutdown();
                        format!(
                            "{}service: submitted={submitted} shed={shed} answered={answered} \
                             degraded={degraded}\n",
                            engine.stats()
                        )
                    }
                });
            }
            let slo = SloEngine::new(engine_slos(), default_windows());
            slo.observe(0, &engine.metrics_snapshot());
            engine
                .pairs_above(threshold)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let mut snap = engine.metrics_snapshot();
            slo.observe(SLO_EVAL_US, &snap);
            slo.evaluate(SLO_EVAL_US);
            snap.metrics.extend(slo.snapshot().metrics);
            Ok(match format {
                StatsFormat::Prometheus => snap.to_prometheus(),
                StatsFormat::Json => format!("{}\n", snap.to_json()),
                StatsFormat::Text => engine.stats().to_string(),
            })
        }
        Command::Trace {
            communities,
            eps,
            k,
            deadline_ms,
            max_joins,
            last,
            json,
            via_service,
            quarantine,
            export,
            out,
        } => {
            use csj_engine::Budget;
            let (engine, handles) = load_engine(&communities, eps, quarantine, None)?;
            let traces = if via_service {
                use csj_service::{CsjService, Request, ServiceConfig};
                if max_joins.is_some() {
                    return Err(CliError::Usage(
                        "--max-joins is not available with --via-service \
                         (the service budgets by deadline; use --deadline-ms)"
                            .into(),
                    ));
                }
                let config = ServiceConfig {
                    default_deadline: deadline_ms.map(std::time::Duration::from_millis),
                    ..ServiceConfig::default()
                };
                let service = CsjService::start(engine, config);
                service
                    .call(Request::TopK { x: handles[0], k })
                    .map_err(|e| CliError::Io(e.to_string()))?;
                service.service_traces(last)
            } else {
                let mut budget = Budget::unlimited();
                if let Some(ms) = deadline_ms {
                    budget = budget.with_deadline(std::time::Duration::from_millis(ms));
                }
                if let Some(max) = max_joins {
                    budget = budget.with_max_joins(max);
                }
                engine
                    .top_k_similar_with_budget(handles[0], k, &budget)
                    .map_err(|e| CliError::Io(e.to_string()))?;
                engine.traces(last)
            };
            if let Some(fmt) = export {
                let body = match fmt.as_str() {
                    "chrome" => csj_obs::traces_to_chrome(&traces),
                    _ => csj_obs::traces_to_jsonl(&traces),
                };
                return match out {
                    Some(path) => {
                        csj_durability::atomic::write_atomic(&path, body.as_bytes())
                            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
                        Ok(format!(
                            "exported {} traces ({fmt}) to {}\n",
                            traces.len(),
                            path.display()
                        ))
                    }
                    None => Ok(body),
                };
            }
            if json {
                let items: Vec<String> = traces.iter().map(|t| t.to_json()).collect();
                Ok(format!("[{}]\n", items.join(",")))
            } else {
                let mut out = String::new();
                for t in &traces {
                    out.push_str(&t.to_text());
                }
                Ok(out)
            }
        }
        Command::Slow {
            communities,
            eps,
            k,
            deadline_ms,
            max_joins,
            slow_threshold_us,
            last,
            json,
            out,
            quarantine,
        } => {
            use csj_engine::Budget;
            let (engine, handles) =
                load_engine(&communities, eps, quarantine, Some(slow_threshold_us))?;
            let mut budget = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(max) = max_joins {
                budget = budget.with_max_joins(max);
            }
            engine
                .top_k_similar_with_budget(handles[0], k, &budget)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let records = engine.slow_queries(last);
            let (offered, captured, threshold_us) = engine.slow_query_stats();
            let body = if json {
                let items: Vec<String> = records.iter().map(|r| r.to_json()).collect();
                format!("[{}]\n", items.join(","))
            } else {
                use std::fmt::Write as _;
                let mut s = format!(
                    "slow-query log: {} shown of {captured} captured \
                     ({offered} offered, threshold {threshold_us}us)\n",
                    records.len()
                );
                if records.is_empty() {
                    let _ = writeln!(
                        s,
                        "  (nothing captured; lower --slow-threshold-us or \
                         tighten --deadline-ms/--max-joins)"
                    );
                }
                for r in &records {
                    s.push_str(&r.to_text());
                }
                s
            };
            match out {
                Some(path) => {
                    // The persisted artifact is always the JSON records
                    // (machine-readable evidence); --json only switches
                    // the stdout rendering.
                    let items: Vec<String> = records.iter().map(|r| r.to_json()).collect();
                    let artifact = format!("[{}]\n", items.join(","));
                    csj_durability::atomic::write_atomic(&path, artifact.as_bytes())
                        .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
                    Ok(format!(
                        "wrote {} forensic records to {}\n",
                        records.len(),
                        path.display()
                    ))
                }
                None => Ok(body),
            }
        }
        Command::Slo {
            communities,
            eps,
            threshold,
            deadline_ms,
            max_joins,
            json,
            quarantine,
        } => {
            use csj_engine::Budget;
            use csj_obs::{default_windows, SloEngine};
            let (engine, handles) = load_engine(&communities, eps, quarantine, None)?;
            let slo = SloEngine::new(engine_slos(), default_windows());
            slo.observe(0, &engine.metrics_snapshot());
            let mut budget = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(max) = max_joins {
                budget = budget.with_max_joins(max);
            }
            engine
                .pairs_above(threshold)
                .map_err(|e| CliError::Io(e.to_string()))?;
            engine
                .top_k_similar_with_budget(handles[0], 3, &budget)
                .map_err(|e| CliError::Io(e.to_string()))?;
            slo.observe(SLO_EVAL_US, &engine.metrics_snapshot());
            let statuses = slo.evaluate(SLO_EVAL_US);
            if json {
                Ok(slo_statuses_json(&statuses))
            } else {
                use std::fmt::Write as _;
                let mut s = String::new();
                for status in &statuses {
                    let _ = writeln!(s, "slo {status}");
                }
                let breached = statuses.iter().filter(|st| st.breached).count();
                let _ = writeln!(
                    s,
                    "objectives={} windows={} breached={breached}",
                    statuses.len() / slo.windows().len().max(1),
                    slo.windows().len()
                );
                Ok(s)
            }
        }
        Command::ServeSim {
            qps,
            duration_ms,
            workers,
            queue,
            communities,
            scale,
            eps,
            seed,
            deadline_ms,
            chaos,
            chaos_mode,
            metrics_out,
            durable,
            durable_dir,
            crash_after,
            fsync,
            slo,
        } => serve_sim(SimArgs {
            qps,
            duration_ms,
            workers,
            queue,
            communities,
            scale,
            eps,
            seed,
            deadline_ms,
            chaos,
            chaos_mode,
            metrics_out,
            durable,
            durable_dir,
            crash_after,
            fsync,
            slo,
        }),
        Command::Snapshot { dir } => {
            use csj_durability::{DurabilityConfig, DurableEngine};
            let mut dur = DurableEngine::open(
                &dir,
                8,
                csj_engine::EngineConfig::new(1),
                DurabilityConfig::default(),
            )
            .map_err(|e| CliError::Io(format!("{}: {e}", dir.display())))?;
            let recovery = dur.report().summary();
            let entries = dur.engine().handles().count();
            let out = dur
                .snapshot()
                .map_err(|e| CliError::Io(format!("{}: {e}", dir.display())))?;
            Ok(format!(
                "recovery: {recovery}\nsnapshot: {} (seq {}, {entries} entries, {} pruned)\n\
                 wal truncated; appends continue at seq {}\n",
                out.path.display(),
                out.seq,
                out.pruned,
                out.seq + 1,
            ))
        }
        Command::Recover { dir, verify } => {
            use csj_durability::{fingerprint_engine, recover_dir};
            let (engine, report) = recover_dir(&dir, 8, csj_engine::EngineConfig::new(1))
                .map_err(|e| CliError::Io(format!("{}: {e}", dir.display())))?;
            let fp = fingerprint_engine(&engine);
            let users: usize = engine
                .handles()
                .map(|h| engine.community(h).map_or(0, |c| c.len()))
                .sum();
            use std::fmt::Write as _;
            let mut out = format!(
                "recovery: {}\ncommunities={} users={users} fingerprint={fp:#018x}\n",
                report.summary(),
                engine.handles().count(),
            );
            if verify {
                let mut breaches: Vec<String> = Vec::new();
                // Determinism: a second recovery over the same files
                // must rebuild the identical state.
                match recover_dir(&dir, 8, csj_engine::EngineConfig::new(1)) {
                    Ok((again, report2)) => {
                        if fingerprint_engine(&again) != fp {
                            breaches.push("second recovery diverged from the first".into());
                        }
                        if report2 != report {
                            breaches.push("second recovery report differs".into());
                        }
                    }
                    Err(e) => breaches.push(format!("second recovery failed: {e}")),
                }
                // Registry invariants over the recovered state.
                for h in engine.handles() {
                    match engine.community(h) {
                        Ok(c) => {
                            if c.d() != engine.d() {
                                breaches.push(format!(
                                    "community {:?} has d={} in a d={} engine",
                                    c.name(),
                                    c.d(),
                                    engine.d()
                                ));
                            }
                            if engine.find(c.name()) != Some(h) {
                                breaches.push(format!(
                                    "name {:?} does not resolve back to its handle",
                                    c.name()
                                ));
                            }
                        }
                        Err(e) => breaches.push(format!("dangling handle {}: {e}", h.0)),
                    }
                }
                // The WAL accounting must cover the file exactly.
                let wal_len = std::fs::metadata(dir.join(csj_durability::WAL_FILE))
                    .map(|m| m.len())
                    .unwrap_or(0);
                if report.wal_valid_bytes + report.bytes_discarded != wal_len {
                    breaches.push(format!(
                        "WAL accounting mismatch: {} valid + {} discarded != {} on disk",
                        report.wal_valid_bytes, report.bytes_discarded, wal_len
                    ));
                }
                if breaches.is_empty() {
                    let _ = writeln!(out, "verify: ok");
                } else {
                    for b in &breaches {
                        let _ = writeln!(out, "verify: BREACH: {b}");
                    }
                    return Err(CliError::Io(format!("recovery verification failed\n{out}")));
                }
            }
            Ok(out)
        }
        Command::Truth { b, a, eps } => {
            let cb = load(&b)?;
            let ca = load(&a)?;
            let (cb, ca) = if cb.len() <= ca.len() {
                (cb, ca)
            } else {
                (ca, cb)
            };
            let gt = csj_core::verify::ground_truth(&cb, &ca, eps);
            Ok(format!(
                "candidate pairs: {}\nmaximum matching: {}\nsimilarity: {}\n",
                gt.candidate_pairs.len(),
                gt.maximum_matching.len(),
                gt.similarity
            ))
        }
    }
}

/// Arguments of [`Command::ServeSim`], bundled so the driver stays one
/// call.
struct SimArgs {
    qps: u64,
    duration_ms: u64,
    workers: usize,
    queue: usize,
    communities: usize,
    scale: u32,
    eps: u32,
    seed: u64,
    deadline_ms: u64,
    chaos: bool,
    chaos_mode: Option<String>,
    metrics_out: Option<PathBuf>,
    durable: bool,
    durable_dir: Option<PathBuf>,
    crash_after: Option<u64>,
    fsync: csj_durability::FsyncPolicy,
    slo: bool,
}

/// One scripted ingest mutation of the durable serve-sim phase; the
/// script is deterministic in the sim arguments so a crashed run can
/// resume from the exact op that tore.
#[derive(Debug, Clone, Copy)]
enum SimOp {
    Register(usize),
    Upsert(usize, u64),
    Remove(usize, u64),
}

/// What the durable ingest phase concluded.
struct DurableOutcome {
    engine: csj_engine::CsjEngine,
    report_lines: String,
    converged: bool,
    metrics: csj_obs::MetricsSnapshot,
}

/// Apply one scripted op through the durable engine. Returns whether it
/// was acked (ops made redundant by an earlier run against the same
/// directory — an existing registration, an already-removed user — are
/// skipped, not errors).
fn apply_sim_op(
    dur: &mut csj_durability::DurableEngine,
    communities: &[Community],
    op: SimOp,
) -> Result<bool, csj_durability::DurabilityError> {
    let find = |dur: &csj_durability::DurableEngine, m: usize| {
        dur.engine()
            .find(communities[m].name())
            .expect("register op precedes every upsert/remove in the script")
    };
    match op {
        SimOp::Register(m) => {
            if dur.engine().find(communities[m].name()).is_some() {
                return Ok(false);
            }
            dur.register(communities[m].clone()).map(|_| true)
        }
        SimOp::Upsert(m, user) => {
            let h = find(dur, m);
            let d = communities[m].d();
            let vector: Vec<u32> = (0..d as u64)
                .map(|j| ((user * 31 + j * 7) % 97) as u32)
                .collect();
            dur.upsert_user(h, user, &vector).map(|_| true)
        }
        SimOp::Remove(m, user) => {
            let h = find(dur, m);
            match dur.remove_user(h, user) {
                Ok(_) => Ok(true),
                Err(csj_durability::DurabilityError::Engine(
                    csj_engine::EngineError::UnknownUser(_),
                )) => Ok(false),
                Err(e) => Err(e),
            }
        }
    }
}

/// The durable ingest phase of `csj serve-sim --durable`: run the
/// scripted mutations through the WAL-backed registry (optionally
/// tearing the log mid-write at `--crash-after` bytes), recover, assert
/// the recovered state is exactly the acked prefix, finish the script,
/// snapshot, re-verify, and hand the engine over for the query soak.
fn durable_ingest(args: &SimArgs, communities: &[Community]) -> Result<DurableOutcome, CliError> {
    use csj_durability::{
        fingerprint_engine, recover_dir, DurabilityConfig, DurabilityError, DurableEngine,
    };
    use csj_engine::EngineConfig;
    use std::fmt::Write as _;

    let dir = args.durable_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "csj-serve-sim-durable-{}-{}",
            std::process::id(),
            args.seed
        ))
    });
    let d = communities.first().map_or(8, |c| c.d());
    let config = DurabilityConfig {
        fsync: args.fsync,
        keep_snapshots: 2,
    };
    let io_err = |e: DurabilityError| CliError::Io(format!("{}: {e}", dir.display()));
    let open =
        |dir: &Path| DurableEngine::open(dir, d, EngineConfig::new(args.eps), config.clone());

    // The deterministic mutation script: register each community, then
    // churn a handful of extra users so the WAL sees all three ops.
    let mut script: Vec<SimOp> = Vec::new();
    for m in 0..communities.len() {
        script.push(SimOp::Register(m));
        let base = u64::from(args.scale) + 1;
        for u in 0..6 {
            script.push(SimOp::Upsert(m, base + u));
        }
        script.push(SimOp::Remove(m, base));
        script.push(SimOp::Remove(m, base + 1));
    }

    let mut dur = open(&dir).map_err(io_err)?;
    let mut lines = format!(
        "durable: dir={} fsync={} crash-after={}\n",
        dir.display(),
        args.fsync,
        args.crash_after
            .map(|n| n.to_string())
            .unwrap_or_else(|| "none".into()),
    );
    let _ = writeln!(lines, "durable-open-recovery: {}", dur.report().summary());

    #[cfg(feature = "chaos")]
    if let Some(budget) = args.crash_after {
        dur.inject_fs_faults(
            csj_durability::fault::FsFaultPlan::new().crash_after_wal_bytes(budget),
        );
    }

    let mut acked_fp = dur.fingerprint();
    let mut resume_from = script.len();
    let mut crashed = false;
    for (i, &op) in script.iter().enumerate() {
        match apply_sim_op(&mut dur, communities, op) {
            Ok(true) => acked_fp = dur.fingerprint(),
            Ok(false) => {}
            Err(DurabilityError::InjectedCrash) => {
                crashed = true;
                resume_from = i;
                break;
            }
            Err(e) => return Err(io_err(e)),
        }
    }
    if !crashed {
        // Interval fsync batches acks; make the tail durable before the
        // convergence check treats it as the contract.
        dur.sync().map_err(io_err)?;
        resume_from = script.len();
    }
    drop(dur);

    // Crash (or clean shutdown) happened here. Recover read-only and
    // check the core contract: recovered state == the acked prefix.
    let (recovered, rec_report) =
        recover_dir(&dir, d, EngineConfig::new(args.eps)).map_err(io_err)?;
    let converged = fingerprint_engine(&recovered) == acked_fp;
    if crashed {
        let _ = writeln!(
            lines,
            "durable-crash: injected mid-write at script op {resume_from}"
        );
    }
    let _ = writeln!(lines, "durable-recovery: {}", rec_report.summary());
    let _ = writeln!(
        lines,
        "durable-replayed={} durable-discarded-bytes={}",
        rec_report.records_replayed, rec_report.bytes_discarded
    );
    let _ = writeln!(
        lines,
        "durable-converged={}",
        if converged { "ok" } else { "VIOLATED" }
    );

    // Reopen read-write (repairing the torn tail), finish the script,
    // snapshot, and re-verify that snapshot + WAL still reproduce the
    // live state bit-identically.
    let mut dur = open(&dir).map_err(io_err)?;
    for &op in &script[resume_from..] {
        apply_sim_op(&mut dur, communities, op).map_err(io_err)?;
    }
    let snap_out = dur.snapshot().map_err(io_err)?;
    let _ = writeln!(
        lines,
        "durable-snapshot: seq={} ({} pruned)",
        snap_out.seq, snap_out.pruned
    );
    let live_fp = dur.fingerprint();
    let (reverified, _) = recover_dir(&dir, d, EngineConfig::new(args.eps)).map_err(io_err)?;
    let final_ok = fingerprint_engine(&reverified) == live_fp;
    let _ = writeln!(
        lines,
        "durable-final-recovery-converged={}",
        if final_ok { "ok" } else { "VIOLATED" }
    );
    let metrics = dur.durability_metrics();
    let engine = dur.into_engine().map_err(io_err)?;
    Ok(DurableOutcome {
        engine,
        report_lines: lines,
        converged: converged && final_ok,
        metrics,
    })
}

/// Upper bound (milliseconds) of the histogram bucket holding quantile
/// `q`; `None` with no observations, infinity in the overflow bucket.
fn quantile_bound_ms(bounds_us: &[u64], buckets: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return Some(
                bounds_us
                    .get(i)
                    .map_or(f64::INFINITY, |&b| b as f64 / 1000.0),
            );
        }
    }
    None
}

/// The open-loop soak behind `csj serve-sim`: register synthetic
/// communities, start the overload-safe service, submit a mixed query
/// stream at the target rate (never blocking on responses, so overload
/// actually sheds), then drain every ticket and reconcile the local
/// tallies against the `csj_service_*` metrics. Violated invariants
/// turn into a non-zero exit.
fn serve_sim(args: SimArgs) -> Result<String, CliError> {
    use std::fmt::Write as _;
    use std::time::{Duration, Instant};

    use csj_engine::{CsjEngine, EngineConfig};
    use csj_service::{BreakerConfig, CsjService, Request, ServiceConfig, ServiceError, Ticket};

    #[cfg(not(feature = "chaos"))]
    if args.chaos {
        return Err(CliError::Usage(
            "--chaos needs the fault-injection build: cargo run -p csj-cli --features chaos".into(),
        ));
    }
    #[cfg(not(feature = "chaos"))]
    if args.crash_after.is_some() {
        return Err(CliError::Usage(
            "--crash-after needs the fault-injection build: cargo run -p csj-cli --features chaos"
                .into(),
        ));
    }
    if args.crash_after.is_some() && !args.durable {
        return Err(CliError::Usage(
            "--crash-after only makes sense with --durable".into(),
        ));
    }
    // Shard chaos routes multi-pair requests through the sharded
    // execution layer, which needs the shard knobs set at engine
    // construction — the durable ingest path builds its own engine.
    let shard_chaos = args.chaos_mode.is_some();
    if shard_chaos && args.durable {
        return Err(CliError::Usage(
            "--chaos shard-* cannot be combined with --durable".into(),
        ));
    }

    // Synthetic communities: dense deterministic counter patterns so
    // exact joins do real matching work without any input files.
    const D: usize = 8;
    let mut communities = Vec::with_capacity(args.communities);
    for m in 0..args.communities {
        let salt = args.seed.wrapping_add(m as u64);
        let rows: Vec<(u64, Vec<u32>)> = (0..u64::from(args.scale.max(2)))
            .map(|i| {
                let counters = (0..D as u64)
                    .map(|j| ((i * (7 + j) + salt * 13) % 97) as u32)
                    .collect();
                (i + 1, counters)
            })
            .collect();
        communities.push(
            Community::from_rows(format!("sim-{m}"), D, rows)
                .map_err(|e| CliError::Io(format!("synthetic community: {e}")))?,
        );
    }

    // Ingest: directly into a fresh engine, or — with --durable —
    // through the WAL-backed registry with crash/recovery checking.
    let (mut engine, durable_outcome) = if args.durable {
        let outcome = durable_ingest(&args, &communities)?;
        (None, Some(outcome))
    } else {
        let mut config = EngineConfig::new(args.eps);
        if shard_chaos {
            // Enough shards that the hedging quantile has samples even
            // when the attacked shard never reports, and a low floor so
            // hedges fire well inside the per-request deadline. The
            // worker pool is forced wide enough that a stalled shard
            // cannot serialize its healthy siblings on a small host —
            // hedging needs peer completions to measure stragglers
            // against.
            config.shard.enabled = true;
            config.shard.shards = 4;
            config.shard.hedge_floor = Duration::from_millis(5);
            config.shard.hedge_min_samples = 2;
            config.threads = config.threads.max(4);
        }
        let mut engine = CsjEngine::new(D, config);
        for c in communities.drain(..) {
            engine
                .register(c)
                .map_err(|e| CliError::Io(e.to_string()))?;
        }
        (Some(engine), None)
    };
    let (durable_lines, durable_ok, durable_metrics) = match durable_outcome {
        Some(o) => {
            engine = Some(o.engine);
            (o.report_lines, o.converged, Some(o.metrics))
        }
        None => (String::new(), true, None),
    };
    let engine = engine.expect("one ingest path ran");
    // Registration order is deterministic, but a reused --durable-dir
    // may hold more than this run's communities: resolve by name.
    let handles: Vec<csj_engine::CommunityHandle> = (0..args.communities)
        .map(|m| {
            engine
                .find(&format!("sim-{m}"))
                .ok_or_else(|| CliError::Io(format!("sim-{m} missing after ingest")))
        })
        .collect::<Result<_, _>>()?;
    #[cfg_attr(not(feature = "chaos"), allow(unused_mut))]
    let mut engine = engine;
    #[cfg(feature = "chaos")]
    if args.chaos {
        use csj_engine::fault::FaultPlan;
        use csj_engine::ShardFaultPlan;
        match args.chaos_mode.as_deref() {
            // Shard 0 of every sharded request is attacked; the other
            // shards (and every non-sharded request) stay healthy, so
            // the blast radius of the fault is exactly one shard.
            Some("shard-kill") => {
                // The worker dies before the closure runs, every time:
                // the hedge dies too, the shard resolves failed, and the
                // response degrades with partial coverage.
                engine.inject_shard_faults(ShardFaultPlan::new().kill(0, u32::MAX));
            }
            Some("shard-stall") => {
                // One straggling primary attempt: the hedge fires off
                // the latency quantile, runs clean, and rescues the
                // shard — coverage stays complete.
                engine.inject_shard_faults(ShardFaultPlan::new().stall(
                    0,
                    Duration::from_millis(80),
                    1,
                ));
            }
            Some("shard-panic") => {
                // Both attempts panic inside the isolation boundary:
                // typed failure, no escape, partial coverage.
                engine.inject_shard_faults(ShardFaultPlan::new().panic_on(0, u32::MAX));
            }
            // Classic mode: one community panics three times then heals
            // (exactly the breaker's failure threshold below, so the
            // exact breaker trips and later recovers through half-open
            // probes), and one is pathologically slow (capacity
            // collapses, so admission control sheds and deadlines force
            // degradation).
            _ => engine.inject_faults(
                FaultPlan::new()
                    .panic_n_times(handles[0].0, 3)
                    .slow_on(handles[1].0, Duration::from_millis(25)),
            ),
        }
    }

    // Injected panics are caught by the engine's isolation boundary,
    // but the default panic hook would still spray backtraces over the
    // report; keep the soak output readable (restored after the drain).
    // Escapes are still visible as `panics-escaped` and the `failed`
    // tally.
    let previous_hook = args.chaos.then(|| {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        hook
    });
    let deadline = (args.deadline_ms > 0).then(|| Duration::from_millis(args.deadline_ms));
    let service = CsjService::start(
        engine,
        ServiceConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            default_deadline: deadline,
            breaker: BreakerConfig {
                window: 8,
                failure_threshold: 3,
                cooldown: Duration::from_millis(200),
                probes: 2,
            },
            flight_capacity: 256,
            ..ServiceConfig::default()
        },
    );
    // The SLO engine samples the same snapshots the report reconciles,
    // so its burn rates are definitionally traceable to fate counters;
    // the self-check below catches any drift in that plumbing.
    let slo = args.slo.then(|| {
        let threshold_us = if args.deadline_ms > 0 {
            args.deadline_ms.saturating_mul(1_000)
        } else {
            250_000
        };
        let engine = csj_obs::SloEngine::new(
            csj_service::service_slos(threshold_us),
            csj_obs::default_windows(),
        );
        engine.observe(0, &service.metrics_snapshot());
        engine
    });

    // Open-loop generation: each request has a fixed due time derived
    // from the rate; falling behind never slows submission down.
    let total = (args.qps * args.duration_ms / 1_000).max(1);
    let interval_ns = 1_000_000_000 / args.qps;
    let started = Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(total as usize);
    let mut shed_local = 0u64;
    for i in 0..total {
        let due = started + Duration::from_nanos(i * interval_ns);
        if let Some(ahead) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(ahead);
        }
        let request = match i % 5 {
            3 => Request::TopK {
                x: handles[i as usize % args.communities],
                k: 3,
            },
            4 => Request::PairsAbove { threshold: 0.2 },
            _ => Request::Similarity {
                x: handles[0],
                y: handles[1 + i as usize % (args.communities - 1)],
                method: Some(CsjMethod::ExMinMax),
            },
        };
        match service.submit(request) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded { .. }) => shed_local += 1,
            Err(e) => return Err(CliError::Io(format!("submit failed: {e}"))),
        }
    }

    // Drain: every admitted request must resolve to exactly one fate.
    let (mut answered, mut degraded, mut failed, mut panics_escaped) = (0u64, 0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Ok(r) if r.degraded => degraded += 1,
            Ok(_) => answered += 1,
            Err(ServiceError::Internal { .. }) => {
                failed += 1;
                panics_escaped += 1;
            }
            Err(_) => failed += 1,
        }
    }

    if let Some(hook) = previous_hook {
        std::panic::set_hook(hook);
    }

    let final_breaker = service.breaker_state(CsjMethod::ExMinMax);
    let mut snap = service.metrics_snapshot();
    if let Some(dm) = durable_metrics {
        snap.metrics.extend(dm.metrics);
    }
    let mut slo_lines = String::new();
    let mut slo_ok = true;
    if let Some(slo) = &slo {
        let elapsed_us = (started.elapsed().as_micros() as u64).max(1);
        slo.observe(elapsed_us, &snap);
        let statuses = slo.evaluate(elapsed_us);
        let shed_c = snap.counter_value("csj_service_shed_total", &[]);
        let submitted_c = snap.counter_value("csj_service_submitted_total", &[]);
        let degraded_c =
            snap.counter_value("csj_service_completed_total", &[("outcome", "degraded")]);
        let completed_c = degraded_c
            + snap.counter_value("csj_service_completed_total", &[("outcome", "answered")])
            + snap.counter_value("csj_service_completed_total", &[("outcome", "failed")]);
        for s in &statuses {
            let _ = writeln!(slo_lines, "slo {s}");
            // Every burn rate must be derivable from the same fate
            // counters the four-fates identities constrain: both soak
            // windows clip to the run's lifetime, so the window deltas
            // equal the final counter values exactly.
            let reconciled = match s.objective.as_str() {
                "shed_fraction" => s.bad as u64 == shed_c && s.total as u64 == submitted_c,
                "degraded_fraction" => s.bad as u64 == degraded_c && s.total as u64 == completed_c,
                "request_latency" => s.total as u64 == completed_c,
                _ => true,
            };
            // A breach without nonzero bad events (and, for the fate
            // fractions, a nonzero matching fate counter) means the SLO
            // plumbing invented traffic.
            let backed = !s.breached
                || (s.bad > 0.0
                    && match s.objective.as_str() {
                        "shed_fraction" => shed_c > 0,
                        "degraded_fraction" => degraded_c > 0,
                        _ => true,
                    });
            slo_ok &= reconciled && backed;
        }
        // The `csj_slo_*` gauges ride the same exposition as the fate
        // counters they summarise.
        snap.metrics.extend(slo.snapshot().metrics);
    }
    if let Some(path) = &args.metrics_out {
        // Crash-safe: the exposition appears atomically or not at all,
        // so a reader never sees a torn half-written file.
        csj_durability::atomic::write_atomic(path, snap.to_prometheus().as_bytes())
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    }
    let counter = |name: &str, labels: &[(&str, &str)]| snap.counter_value(name, labels);
    let submitted = counter("csj_service_submitted_total", &[]);
    let admitted = counter("csj_service_admitted_total", &[]);
    let shed = counter("csj_service_shed_total", &[]);
    let retries = counter("csj_service_retries_total", &[]);
    let deg_breaker = counter("csj_service_degraded_total", &[("trigger", "breaker")]);
    let deg_deadline = counter("csj_service_degraded_total", &[("trigger", "deadline")]);
    let deg_coverage = counter("csj_service_degraded_total", &[("trigger", "coverage")]);
    let breaker_to = |to: &str| {
        counter(
            "csj_service_breaker_transitions_total",
            &[("method", "ex-minmax"), ("to", to)],
        )
    };
    let (p50, p99) = match snap
        .find("csj_service_request_seconds", &[])
        .map(|s| &s.value)
    {
        Some(csj_obs::SampleValue::Histogram {
            bounds_us,
            buckets,
            count,
            ..
        }) => (
            quantile_bound_ms(bounds_us, buckets, *count, 0.50),
            quantile_bound_ms(bounds_us, buckets, *count, 0.99),
        ),
        _ => (None, None),
    };
    let fmt_ms = |q: Option<f64>| q.map_or("n/a".to_string(), |ms| format!("{ms}ms"));

    let identity_ok = submitted == total && submitted == admitted + shed && shed == shed_local;
    let resolution_ok = answered + degraded + failed == admitted
        && counter("csj_service_completed_total", &[("outcome", "answered")]) == answered
        && counter("csj_service_completed_total", &[("outcome", "degraded")]) == degraded
        && counter("csj_service_completed_total", &[("outcome", "failed")]) == failed;
    let verdict = |ok: bool| if ok { "ok" } else { "VIOLATED" };

    let mut out = format!(
        "serve-sim: qps={} duration-ms={} workers={} queue={} communities={} scale={} \
         eps={} deadline-ms={} chaos={} seed={}\n",
        args.qps,
        args.duration_ms,
        args.workers,
        args.queue,
        args.communities,
        args.scale,
        args.eps,
        args.deadline_ms,
        match &args.chaos_mode {
            Some(mode) => mode.as_str(),
            None if args.chaos => "on",
            None => "off",
        },
        args.seed
    );
    let _ = writeln!(out, "submitted={submitted} admitted={admitted} shed={shed}");
    let _ = writeln!(
        out,
        "answered={answered} degraded={degraded} failed={failed}"
    );
    let _ = writeln!(
        out,
        "degraded-by-trigger: breaker={deg_breaker} deadline={deg_deadline} \
         coverage={deg_coverage}"
    );
    let _ = writeln!(out, "retries={retries}");
    let _ = writeln!(
        out,
        "breaker ex-minmax transitions: open={} half_open={} closed={} (final={})",
        breaker_to("open"),
        breaker_to("half_open"),
        breaker_to("closed"),
        final_breaker.label()
    );
    let _ = writeln!(out, "latency: p50<={} p99<={}", fmt_ms(p50), fmt_ms(p99));
    let _ = writeln!(out, "panics-escaped={panics_escaped}");
    // Shard chaos only: reconcile the shard-fate counters. The identity
    // `dispatched == completed + failed + cancelled` is the sharded
    // layer's analogue of the service's four fates; a drift means a
    // shard was dropped or double-counted. (Printed only in shard modes
    // so the classic soak's `: ok` line count stays stable.)
    let mut shard_ok = true;
    if shard_chaos {
        let dispatched = counter("csj_shard_dispatched_total", &[]);
        let completed = counter("csj_shard_outcomes_total", &[("fate", "completed")]);
        let failed = counter("csj_shard_outcomes_total", &[("fate", "failed")]);
        let cancelled = counter("csj_shard_outcomes_total", &[("fate", "cancelled")]);
        let hedged = counter("csj_shard_hedged_total", &[]);
        let screened = counter("csj_shard_units_total", &[("fate", "screened")]);
        let skipped = counter("csj_shard_units_total", &[("fate", "skipped")]);
        let _ = writeln!(
            out,
            "shard-coverage: dispatched={dispatched} completed={completed} failed={failed} \
             cancelled={cancelled} hedged={hedged} units-screened={screened} \
             units-skipped={skipped}"
        );
        shard_ok = dispatched > 0 && dispatched == completed + failed + cancelled;
        let _ = writeln!(
            out,
            "invariant shard fates reconcile (dispatched == completed + failed + cancelled): {}",
            verdict(shard_ok)
        );
    }
    out.push_str(&durable_lines);
    out.push_str(&slo_lines);
    let _ = writeln!(
        out,
        "invariant submitted == admitted + shed: {}",
        verdict(identity_ok)
    );
    let _ = writeln!(
        out,
        "invariant every admitted request resolved exactly once: {}",
        verdict(resolution_ok)
    );
    if args.slo {
        let _ = writeln!(
            out,
            "invariant slo burn rates reconcile with fate counters: {}",
            verdict(slo_ok)
        );
    }
    if !(identity_ok && resolution_ok && durable_ok && slo_ok && shard_ok) {
        return Err(CliError::Io(format!("serve-sim invariant violated\n{out}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_couples() {
        assert_eq!(parse(&argv("couples")).unwrap(), Command::Couples);
    }

    #[test]
    fn parse_generate_with_defaults() {
        let cmd = parse(&argv(
            "generate --dataset vk --cid 3 --out-b /tmp/b.csjb --out-a /tmp/a.csjb",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                dataset,
                cid,
                scale,
                out_b,
                ..
            } => {
                assert_eq!(dataset, Dataset::VkLike);
                assert_eq!(cid, 3);
                assert_eq!(scale, 64);
                assert_eq!(out_b, PathBuf::from("/tmp/b.csjb"));
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_join_flags() {
        let cmd = parse(&argv(
            "join --b b.csv --a a.csv --eps 2 --method ap-minmax --matcher hk --parts 2 --json",
        ))
        .unwrap();
        match cmd {
            Command::Join {
                eps,
                method,
                matcher,
                parts,
                json,
                pairs,
                ..
            } => {
                assert_eq!(eps, 2);
                assert_eq!(method, CsjMethod::ApMinMax);
                assert_eq!(matcher, MatcherKind::HopcroftKarp);
                assert_eq!(parts, 2);
                assert!(json);
                assert_eq!(pairs, 0);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_explain_flags() {
        let cmd = parse(&argv(
            "explain --b b.csv --a a.csv --eps 2 --method ap-hybrid",
        ))
        .unwrap();
        match cmd {
            Command::Explain {
                eps,
                method,
                matcher,
                parts,
                ..
            } => {
                assert_eq!(eps, 2);
                assert_eq!(method, CsjMethod::ApHybrid);
                assert_eq!(matcher, MatcherKind::Csf);
                assert_eq!(parts, 4);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("explain --b b.csv --eps 2")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_plan_flags() {
        let cmd = parse(&argv("plan --show --nb 400 --na 4000 --d 27 --exact")).unwrap();
        match cmd {
            Command::PlanShow {
                nb,
                na,
                d,
                eps,
                exactness,
                cost_table,
            } => {
                assert_eq!((nb, na, d, eps), (400, 4000, 27, 1));
                assert_eq!(exactness, csj_core::Exactness::Exact);
                assert_eq!(cost_table, None);
            }
            other => panic!("parsed {other:?}"),
        }
        let cmd = parse(&argv(
            "plan --calibrate --scale 8 --rounds 3 --out /tmp/ct.txt",
        ))
        .unwrap();
        match cmd {
            Command::PlanCalibrate {
                scale, rounds, out, ..
            } => {
                assert_eq!((scale, rounds), (8, 3));
                assert_eq!(out, PathBuf::from("/tmp/ct.txt"));
            }
            other => panic!("parsed {other:?}"),
        }
        // --method auto reaches the join/explain commands.
        assert!(matches!(
            parse(&argv("join --b b.csv --a a.csv --eps 1 --method auto")).unwrap(),
            Command::Join {
                method: CsjMethod::Auto,
                ..
            }
        ));
        assert!(matches!(
            parse(&argv("plan --show --nb 0 --na 4")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("plan --show --nb 4 --na 4 --exact --approx")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&argv("plan")), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(parse(&argv("")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("generate --dataset mars --cid 1 --out-b x --out-a y")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("generate --dataset vk --cid 99 --out-b x --out-a y")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("join --b x --a y --eps lots")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("join --b x --a y --eps 1 --method warp")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn couples_lists_20_rows() {
        let out = execute(Command::Couples).unwrap();
        assert_eq!(out.lines().count(), 21); // header + 20
        assert!(out.contains("Restaurants | Food_recipes"));
    }

    #[test]
    fn generate_info_join_truth_end_to_end() {
        let dir = std::env::temp_dir().join("csj_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csv"); // mixed formats on purpose
        let msg = execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 1,
            scale: 1024,
            seed: 9,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        assert!(msg.contains("--eps 1"));

        let info = execute(Command::Info { path: b.clone() }).unwrap();
        assert!(info.contains("dimensions: 27"));

        let join = execute(Command::Join {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::HopcroftKarp,
            parts: 4,
            json: false,
            pairs: 2,
        })
        .unwrap();
        assert!(join.contains("similarity:"));

        let json_out = execute(Command::Join {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::HopcroftKarp,
            parts: 4,
            json: true,
            pairs: 0,
        })
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        let matched = parsed["matched"].as_u64().unwrap();

        let truth = execute(Command::Truth {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
        })
        .unwrap();
        assert!(truth.contains(&format!("maximum matching: {matched}")));
        assert!(join.contains("closest matched pairs"));

        let topk = execute(Command::TopK {
            anchor: b,
            candidates: vec![a],
            eps: 1,
            k: 2,
            deadline_ms: None,
            max_joins: None,
            shards: None,
        })
        .unwrap();
        assert!(topk.contains("#1"), "topk output was: {topk}");
    }

    #[test]
    fn prepare_then_join_uses_the_index() {
        let dir = std::env::temp_dir().join("csj_cli_prepare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 2,
            scale: 1024,
            seed: 3,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let bp = dir.join("b.csjp");
        let ap = dir.join("a.csjp");
        let msg = execute(Command::Prepare {
            input: b.clone(),
            eps: 1,
            parts: 4,
            out: bp.clone(),
        })
        .unwrap();
        assert!(msg.contains("KiB of encodings"));
        execute(Command::Prepare {
            input: a.clone(),
            eps: 1,
            parts: 4,
            out: ap.clone(),
        })
        .unwrap();

        let join = |x: PathBuf, y: PathBuf| {
            execute(Command::Join {
                b: x,
                a: y,
                eps: 1,
                method: CsjMethod::ExMinMax,
                matcher: MatcherKind::Csf,
                parts: 4,
                json: true,
                pairs: 0,
            })
            .unwrap()
        };
        let via_index = join(bp, ap);
        let via_plain = join(b, a);
        let parse_matched = |out: &str| {
            serde_json::from_str::<serde_json::Value>(out).unwrap()["matched"]
                .as_u64()
                .unwrap()
        };
        assert_eq!(parse_matched(&via_index), parse_matched(&via_plain));
    }

    #[test]
    fn explain_reports_kernel_telemetry() {
        let dir = std::env::temp_dir().join("csj_cli_explain_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 3,
            scale: 1024,
            seed: 11,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let out = execute(Command::Explain {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::Csf,
            parts: 4,
            cost_table: None,
        })
        .unwrap();
        assert!(out.contains("similarity:"), "explain output was: {out}");
        assert!(out.contains("phases: setup"), "explain output was: {out}");
        assert!(out.contains("rows driven:"), "explain output was: {out}");
        assert!(
            out.contains("stream depth per row:"),
            "explain output was: {out}"
        );
        assert!(out.contains("matcher:"), "explain output was: {out}");
        assert!(out.contains("cancel polls:"), "explain output was: {out}");
        // The quantized-kernel section: which counter lane the kernel
        // selected and how many L1 tiles the blocked scan walked.
        assert!(out.contains("encoding:"), "explain output was: {out}");
        assert!(out.contains("a-tiles"), "explain output was: {out}");
        // The plan section: requested vs chosen, estimated vs actual,
        // rejected alternatives and table provenance.
        assert!(
            out.contains("plan: requested ex-minmax (pinned"),
            "explain output was: {out}"
        );
        assert!(out.contains("plan cost: estimated"), "{out}");
        assert!(out.contains("cost table v2, seeded"), "{out}");
        assert!(out.contains("plan alternatives:"), "{out}");

        // `--method auto` resolves through the planner and reports it.
        let auto_out = execute(Command::Explain {
            b,
            a,
            eps: 1,
            method: CsjMethod::Auto,
            matcher: MatcherKind::Csf,
            parts: 4,
            cost_table: None,
        })
        .unwrap();
        assert!(
            auto_out.contains("plan: requested auto -> chosen "),
            "explain output was: {auto_out}"
        );
        assert!(!auto_out.starts_with("auto |"), "{auto_out}");
    }

    #[test]
    fn plan_show_ranks_methods_and_respects_exactness() {
        let out = execute(Command::PlanShow {
            nb: 400,
            na: 4000,
            d: 27,
            eps: 2,
            exactness: csj_core::Exactness::Exact,
            cost_table: None,
        })
        .unwrap();
        assert!(out.contains("chosen: ex-"), "plan output was: {out}");
        assert!(!out.contains("chosen: ap-"), "plan output was: {out}");
        assert!(out.contains("cost table: v2 (seeded)"), "{out}");
        assert!(out.contains("alternatives:"), "{out}");
    }

    #[test]
    fn plan_calibrate_writes_a_loadable_table() {
        let dir = std::env::temp_dir().join("csj_cli_plan_calibrate");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("cost-table.txt");
        let out = execute(Command::PlanCalibrate {
            scale: 4096,
            seed: 7,
            rounds: 1,
            out: out_path.clone(),
        })
        .unwrap();
        assert!(out.contains("cost table written"), "{out}");
        // The written table round-trips and plans with calibrated
        // provenance.
        let table =
            csj_core::CostTable::from_text(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(table.source, "calibrated");
        let show = execute(Command::PlanShow {
            nb: 64,
            na: 640,
            d: 2,
            eps: 1,
            exactness: csj_core::Exactness::Any,
            cost_table: Some(out_path),
        })
        .unwrap();
        assert!(show.contains("(calibrated)"), "{show}");
        // No torn tmp file left behind.
        assert!(!dir.join("cost-table.tmp").exists());
    }

    #[test]
    fn topk_accepts_prepared_files() {
        let dir = std::env::temp_dir().join("csj_cli_topk_csjp");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 4,
            scale: 1024,
            seed: 5,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let ap = dir.join("a.csjp");
        execute(Command::Prepare {
            input: a,
            eps: 1,
            parts: 4,
            out: ap.clone(),
        })
        .unwrap();
        let out = execute(Command::TopK {
            anchor: ap,
            candidates: vec![b],
            eps: 1,
            k: 1,
            deadline_ms: None,
            max_joins: None,
            shards: None,
        })
        .unwrap();
        assert!(out.contains("#1"), "topk must accept .csjp inputs: {out}");
    }

    #[test]
    fn parse_prepare() {
        let cmd = parse(&argv(
            "prepare --input x.csjb --eps 2 --parts 3 --out x.csjp",
        ))
        .unwrap();
        match cmd {
            Command::Prepare { eps, parts, .. } => {
                assert_eq!(eps, 2);
                assert_eq!(parts, 3);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("prepare --input x.csjb --out y")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_topk() {
        let cmd = parse(&argv(
            "topk --anchor x.csjb --candidates a.csjb,b.csjb --eps 1 --k 5",
        ))
        .unwrap();
        match cmd {
            Command::TopK {
                candidates, k, eps, ..
            } => {
                assert_eq!(candidates.len(), 2);
                assert_eq!(k, 5);
                assert_eq!(eps, 1);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("topk --anchor x --candidates , --eps 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_topk_budget_flags() {
        let cmd = parse(&argv(
            "topk --anchor x --candidates a,b --eps 1 --deadline-ms 250 --max-joins 10",
        ))
        .unwrap();
        match cmd {
            Command::TopK {
                deadline_ms,
                max_joins,
                ..
            } => {
                assert_eq!(deadline_ms, Some(250));
                assert_eq!(max_joins, Some(10));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("topk --anchor x --candidates a --eps 1")).unwrap() {
            Command::TopK {
                deadline_ms,
                max_joins,
                ..
            } => {
                assert_eq!(deadline_ms, None, "budget flags default to unlimited");
                assert_eq!(max_joins, None);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv(
                "topk --anchor x --candidates a --eps 1 --deadline-ms soon"
            )),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_topk_shards_flag() {
        match parse(&argv("topk --anchor x --candidates a,b --eps 1 --shards 4")).unwrap() {
            Command::TopK { shards, .. } => assert_eq!(shards, Some(4)),
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("topk --anchor x --candidates a,b --eps 1")).unwrap() {
            Command::TopK { shards, .. } => assert_eq!(shards, None, "flat path by default"),
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("topk --anchor x --candidates a,b --eps 1 --shards 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_chaos_mode() {
        match parse(&argv("serve-sim --chaos shard-kill")).unwrap() {
            Command::ServeSim {
                chaos, chaos_mode, ..
            } => {
                assert!(chaos, "a mode still implies --chaos");
                assert_eq!(chaos_mode.as_deref(), Some("shard-kill"));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("serve-sim --chaos --slo")).unwrap() {
            Command::ServeSim {
                chaos, chaos_mode, ..
            } => {
                assert!(chaos);
                assert_eq!(chaos_mode, None, "a following flag is not a mode");
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve-sim --chaos shard-nuke")),
            Err(CliError::Usage(_))
        ));
        // Shard chaos reconfigures the engine at construction; the
        // durable ingest path builds its own, so the combination is
        // rejected up front.
        assert!(matches!(
            execute(Command::ServeSim {
                qps: 10,
                duration_ms: 100,
                workers: 1,
                queue: 4,
                communities: 2,
                scale: 10,
                eps: 1,
                seed: 1,
                deadline_ms: 0,
                chaos: true,
                chaos_mode: Some("shard-kill".into()),
                metrics_out: None,
                durable: true,
                durable_dir: None,
                crash_after: None,
                fsync: csj_durability::FsyncPolicy::Always,
                slo: false,
            }),
            Err(CliError::Usage(_))
        ));
    }

    /// `--shards` must not change answers: the sharded pipeline merges
    /// back to the flat ranking bit for bit, and a fault-free run
    /// reports complete coverage.
    #[test]
    fn topk_sharded_matches_flat_and_reports_coverage() {
        let (b1, a1) = generated_pair("csj_cli_topk_shards_1", 6);
        let (b2, a2) = generated_pair("csj_cli_topk_shards_2", 7);
        let run = |shards: Option<usize>| {
            execute(Command::TopK {
                anchor: b1.clone(),
                candidates: vec![a1.clone(), b2.clone(), a2.clone()],
                eps: 1,
                k: 3,
                deadline_ms: None,
                max_joins: None,
                shards,
            })
            .unwrap()
        };
        let flat = run(None);
        let sharded = run(Some(2));
        assert!(sharded.contains("shard layout: 2 shards"), "{sharded}");
        assert!(sharded.contains("shard coverage:"), "{sharded}");
        assert!(
            !sharded.contains("coverage is partial"),
            "fault-free runs must be complete: {sharded}"
        );
        let ranks = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.trim_start().starts_with('#'))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            ranks(&flat),
            ranks(&sharded),
            "flat:\n{flat}\nsharded:\n{sharded}"
        );
        assert!(!ranks(&flat).is_empty(), "{flat}");
    }

    #[test]
    fn topk_reports_budget_exhaustion() {
        let dir = std::env::temp_dir().join("csj_cli_topk_budget");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 3,
            scale: 1024,
            seed: 11,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let out = execute(Command::TopK {
            anchor: b,
            candidates: vec![a],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: Some(0),
            shards: None,
        })
        .unwrap();
        assert!(out.contains("budget exhausted"), "output was: {out}");
        assert!(out.contains("max-joins"), "output was: {out}");
    }

    #[test]
    fn parse_stats_and_trace() {
        let cmd = parse(&argv(
            "stats --communities a.csjb,b.csjb --eps 1 --threshold 0.3 --format json",
        ))
        .unwrap();
        match cmd {
            Command::Stats {
                communities,
                eps,
                threshold,
                format,
                via_service,
                quarantine,
            } => {
                assert_eq!(communities.len(), 2);
                assert_eq!(eps, 1);
                assert!((threshold - 0.3).abs() < 1e-9);
                assert_eq!(format, StatsFormat::Json);
                assert!(!via_service, "--via-service defaults off");
                assert!(!quarantine, "--quarantine defaults off");
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("stats --communities a,b --eps 1")).unwrap() {
            Command::Stats {
                format, threshold, ..
            } => {
                assert_eq!(format, StatsFormat::Prometheus, "prom is the default");
                assert!((threshold - 0.15).abs() < 1e-9);
            }
            other => panic!("parsed {other:?}"),
        }
        let cmd = parse(&argv(
            "trace --communities a,b,c --eps 2 --k 4 --max-joins 0 --last 5 --json",
        ))
        .unwrap();
        match cmd {
            Command::Trace {
                communities,
                k,
                max_joins,
                last,
                json,
                ..
            } => {
                assert_eq!(communities.len(), 3);
                assert_eq!(k, 4);
                assert_eq!(max_joins, Some(0));
                assert_eq!(last, 5);
                assert!(json);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("stats --communities solo --eps 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("stats --communities a,b --eps 1 --format yaml")),
            Err(CliError::Usage(_))
        ));
    }

    /// Generate a couple into `dir` and return the two file paths.
    fn generated_pair(dir: &str, cid: u8) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid,
            scale: 1024,
            seed: 7,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        (b, a)
    }

    #[test]
    fn stats_emits_valid_prometheus_and_json() {
        let (b, a) = generated_pair("csj_cli_stats_test", 1);
        let prom = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: false,
            quarantine: false,
        })
        .unwrap();
        assert!(prom.contains("# TYPE csj_joins_total counter"), "{prom}");
        assert!(prom.contains("# TYPE csj_join_latency_seconds histogram"));
        assert!(prom.contains("csj_queries_total{kind=\"pairs_above\"} 1"));
        assert!(prom.contains("csj_communities 2"));
        assert!(prom.contains("le=\"+Inf\""));

        let json = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Json,
            via_service: false,
            quarantine: false,
        })
        .unwrap();
        let _parsed: serde_json::Value =
            serde_json::from_str(&json).expect("stats --format json emits valid JSON");

        let text = execute(Command::Stats {
            communities: vec![b, a],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Text,
            via_service: false,
            quarantine: false,
        })
        .unwrap();
        assert!(text.contains("communities:"), "{text}");
        assert!(text.contains("rows driven"), "{text}");
    }

    #[test]
    fn trace_reproduces_an_exhausted_query() {
        let (b, a) = generated_pair("csj_cli_trace_test", 2);
        let json = execute(Command::Trace {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: Some(0),
            last: 1,
            json: true,
            via_service: false,
            quarantine: false,
            export: None,
            out: None,
        })
        .unwrap();
        assert!(json.contains("\"kind\":\"top_k\""), "{json}");
        assert!(json.contains("exhausted:max-joins"), "{json}");
        let _parsed: serde_json::Value =
            serde_json::from_str(&json).expect("trace --json emits valid JSON");
        assert!(json.trim_end().starts_with('[') && json.trim_end().ends_with(']'));

        let text = execute(Command::Trace {
            communities: vec![b, a],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: None,
            last: 1,
            json: false,
            via_service: false,
            quarantine: false,
            export: None,
            out: None,
        })
        .unwrap();
        assert!(text.contains("top_k outcome=completed"), "{text}");
        assert!(text.contains("screen"), "{text}");
        assert!(text.contains("join"), "{text}");
    }

    #[test]
    fn load_reports_missing_file() {
        let err = execute(Command::Info {
            path: PathBuf::from("/nonexistent/x.csjb"),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn parse_serve_sim_defaults_and_flags() {
        match parse(&argv("serve-sim")).unwrap() {
            Command::ServeSim {
                qps,
                duration_ms,
                workers,
                queue,
                communities,
                deadline_ms,
                chaos,
                metrics_out,
                ..
            } => {
                assert_eq!(qps, 100);
                assert_eq!(duration_ms, 2_000);
                assert_eq!(workers, 2);
                assert_eq!(queue, 8);
                assert_eq!(communities, 6);
                assert_eq!(deadline_ms, 100);
                assert!(!chaos);
                assert_eq!(metrics_out, None);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "serve-sim --qps 300 --duration-ms 500 --workers 1 --queue 2 --communities 3 \
             --scale 50 --eps 2 --seed 9 --deadline-ms 0 --chaos --metrics-out /tmp/m.prom",
        ))
        .unwrap()
        {
            Command::ServeSim {
                qps,
                duration_ms,
                workers,
                queue,
                communities,
                scale,
                eps,
                seed,
                deadline_ms,
                chaos,
                chaos_mode,
                metrics_out,
                durable,
                durable_dir,
                crash_after,
                fsync,
                slo,
            } => {
                assert_eq!(qps, 300);
                assert_eq!(chaos_mode, None, "bare --chaos has no mode");
                assert!(!durable);
                assert!(!slo, "--slo defaults off");
                assert_eq!(durable_dir, None);
                assert_eq!(crash_after, None);
                assert_eq!(fsync, csj_durability::FsyncPolicy::Always);
                assert_eq!(duration_ms, 500);
                assert_eq!(workers, 1);
                assert_eq!(queue, 2);
                assert_eq!(communities, 3);
                assert_eq!(scale, 50);
                assert_eq!(eps, 2);
                assert_eq!(seed, 9);
                assert_eq!(deadline_ms, 0);
                assert!(chaos);
                assert_eq!(metrics_out, Some(PathBuf::from("/tmp/m.prom")));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve-sim --communities 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("serve-sim --qps 0")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_service_and_quarantine_flags() {
        match parse(&argv(
            "stats --communities a,b --eps 1 --via-service --quarantine",
        ))
        .unwrap()
        {
            Command::Stats {
                via_service,
                quarantine,
                ..
            } => {
                assert!(via_service);
                assert!(quarantine);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("trace --communities a,b --eps 1 --via-service")).unwrap() {
            Command::Trace {
                via_service,
                quarantine,
                ..
            } => {
                assert!(via_service);
                assert!(!quarantine);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    /// One token of the `key=value` soak report, parsed as a number.
    fn report_field(out: &str, key: &str) -> u64 {
        out.split_whitespace()
            .filter_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .find_map(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no numeric field {key}= in report:\n{out}"))
    }

    #[test]
    fn serve_sim_smoke_upholds_the_invariants() {
        let out = execute(Command::ServeSim {
            qps: 40,
            duration_ms: 500,
            workers: 2,
            queue: 16,
            communities: 3,
            scale: 60,
            eps: 1,
            seed: 7,
            deadline_ms: 250,
            chaos: false,
            chaos_mode: None,
            metrics_out: None,
            durable: false,
            durable_dir: None,
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert_eq!(report_field(&out, "submitted"), 20, "{out}");
        assert_eq!(report_field(&out, "panics-escaped"), 0, "{out}");
        assert!(
            out.contains("invariant submitted == admitted + shed: ok"),
            "{out}"
        );
        assert!(
            out.contains("invariant every admitted request resolved exactly once: ok"),
            "{out}"
        );
        assert_eq!(
            report_field(&out, "submitted"),
            report_field(&out, "admitted") + report_field(&out, "shed"),
            "{out}"
        );
    }

    #[test]
    fn parse_durable_flags() {
        match parse(&argv(
            "serve-sim --durable --durable-dir /tmp/d --fsync interval:8",
        ))
        .unwrap()
        {
            Command::ServeSim {
                durable,
                durable_dir,
                fsync,
                crash_after,
                ..
            } => {
                assert!(durable);
                assert_eq!(durable_dir, Some(PathBuf::from("/tmp/d")));
                assert_eq!(fsync, csj_durability::FsyncPolicy::Interval(8));
                assert_eq!(crash_after, None);
            }
            other => panic!("parsed {other:?}"),
        }
        // --durable-dir / --crash-after imply --durable.
        match parse(&argv("serve-sim --crash-after 4096")).unwrap() {
            Command::ServeSim {
                durable,
                crash_after,
                ..
            } => {
                assert!(durable);
                assert_eq!(crash_after, Some(4096));
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("serve-sim --fsync sometimes")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("serve-sim --fsync interval:x")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_snapshot_and_recover() {
        assert_eq!(
            parse(&argv("snapshot --dir /tmp/reg")).unwrap(),
            Command::Snapshot {
                dir: PathBuf::from("/tmp/reg")
            }
        );
        assert_eq!(
            parse(&argv("recover --dir /tmp/reg --verify")).unwrap(),
            Command::Recover {
                dir: PathBuf::from("/tmp/reg"),
                verify: true
            }
        );
        assert_eq!(
            parse(&argv("recover --dir /tmp/reg")).unwrap(),
            Command::Recover {
                dir: PathBuf::from("/tmp/reg"),
                verify: false
            }
        );
        assert!(matches!(parse(&argv("recover")), Err(CliError::Usage(_))));
        assert!(matches!(parse(&argv("snapshot")), Err(CliError::Usage(_))));
    }

    #[test]
    fn serve_sim_durable_converges_and_snapshot_recover_roundtrip() {
        let dir = std::env::temp_dir().join(format!("csj_cli_durable_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = execute(Command::ServeSim {
            qps: 40,
            duration_ms: 300,
            workers: 2,
            queue: 16,
            communities: 3,
            scale: 40,
            eps: 1,
            seed: 11,
            deadline_ms: 250,
            chaos: false,
            chaos_mode: None,
            metrics_out: Some(dir.join("metrics.prom")),
            durable: true,
            durable_dir: Some(dir.join("reg")),
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert!(out.contains("durable-converged=ok"), "{out}");
        assert!(out.contains("durable-final-recovery-converged=ok"), "{out}");
        assert!(out.contains("durable-snapshot: seq="), "{out}");
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("csj_wal_appends_total"), "{prom}");
        assert!(prom.contains("csj_recovery_replayed_total"), "{prom}");
        assert!(prom.contains("csj_service_submitted_total"), "{prom}");

        // The registry directory persists: snapshot + verified recovery
        // keep working against it.
        let snap_msg = execute(Command::Snapshot {
            dir: dir.join("reg"),
        })
        .unwrap();
        assert!(snap_msg.contains("snapshot:"), "{snap_msg}");
        let rec = execute(Command::Recover {
            dir: dir.join("reg"),
            verify: true,
        })
        .unwrap();
        assert!(rec.contains("verify: ok"), "{rec}");
        assert!(rec.contains("communities=3"), "{rec}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_on_empty_dir_reports_nothing_to_do() {
        let dir =
            std::env::temp_dir().join(format!("csj_cli_recover_empty_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let rec = execute(Command::Recover {
            dir: dir.clone(),
            verify: true,
        })
        .unwrap();
        assert!(rec.contains("snapshot-seq=none"), "{rec}");
        assert!(rec.contains("communities=0"), "{rec}");
        assert!(rec.contains("verify: ok"), "{rec}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn serve_sim_crash_after_still_converges() {
        let dir =
            std::env::temp_dir().join(format!("csj_cli_crash_after_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = execute(Command::ServeSim {
            qps: 40,
            duration_ms: 300,
            workers: 2,
            queue: 16,
            communities: 3,
            scale: 40,
            eps: 1,
            seed: 13,
            deadline_ms: 250,
            chaos: false,
            chaos_mode: None,
            metrics_out: None,
            durable: true,
            durable_dir: Some(dir.join("reg")),
            crash_after: Some(2_000),
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert!(out.contains("durable-crash: injected"), "{out}");
        assert!(out.contains("durable-converged=ok"), "{out}");
        assert!(out.contains("durable-final-recovery-converged=ok"), "{out}");
        let rec = execute(Command::Recover {
            dir: dir.join("reg"),
            verify: true,
        })
        .unwrap();
        assert!(rec.contains("verify: ok"), "{rec}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn crash_after_without_chaos_feature_is_an_error() {
        let err = execute(Command::ServeSim {
            qps: 10,
            duration_ms: 100,
            workers: 1,
            queue: 4,
            communities: 2,
            scale: 10,
            eps: 1,
            seed: 1,
            deadline_ms: 0,
            chaos: false,
            chaos_mode: None,
            metrics_out: None,
            durable: true,
            durable_dir: None,
            crash_after: Some(100),
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn stats_via_service_merges_engine_and_service_series() {
        let (b, a) = generated_pair("csj_cli_stats_service_test", 5);
        let prom = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: true,
            quarantine: false,
        })
        .unwrap();
        assert!(
            prom.contains("csj_queries_total{kind=\"pairs_above\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("csj_service_submitted_total 1"), "{prom}");
        assert!(
            prom.contains("# TYPE csj_service_request_seconds histogram"),
            "{prom}"
        );

        let text = execute(Command::Stats {
            communities: vec![b, a],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Text,
            via_service: true,
            quarantine: false,
        })
        .unwrap();
        assert!(text.contains("communities:"), "{text}");
        assert!(text.contains("service: submitted=1"), "{text}");
    }

    #[test]
    fn trace_via_service_surfaces_degradation_attributes() {
        let (b, a) = generated_pair("csj_cli_trace_service_test", 6);
        // A zero deadline forces the exact top-k onto the approximate
        // rung; the service trace must say so.
        let text = execute(Command::Trace {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            k: 2,
            deadline_ms: Some(0),
            max_joins: None,
            last: 1,
            json: false,
            via_service: true,
            quarantine: false,
            export: None,
            out: None,
        })
        .unwrap();
        assert!(text.contains("outcome=degraded"), "{text}");
        assert!(text.contains("fate=degraded"), "{text}");
        assert!(text.contains("degrade_trigger=deadline"), "{text}");

        let err = execute(Command::Trace {
            communities: vec![b, a],
            eps: 1,
            k: 2,
            deadline_ms: None,
            max_joins: Some(5),
            last: 1,
            json: false,
            via_service: true,
            quarantine: false,
            export: None,
            out: None,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn stats_quarantine_skips_bad_rows_and_counts_them() {
        let dir = std::env::temp_dir().join("csj_cli_quarantine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.csv");
        let dirty = dir.join("dirty.csv");
        std::fs::write(
            &good,
            "# community: Good\n# d: 2\nuser_id,c0,c1\n1,1,2\n2,3,4\n",
        )
        .unwrap();
        std::fs::write(
            &dirty,
            "# community: Dirty\n# d: 2\nuser_id,c0,c1\n1,1,2\nnot-an-id,9,9\n3,7\n4,5,6\n",
        )
        .unwrap();
        // Without quarantine the dirty file fails the whole load...
        let err = execute(Command::Stats {
            communities: vec![good.clone(), dirty.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: false,
            quarantine: false,
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
        // ...with quarantine the bad rows are skipped and counted.
        let prom = execute(Command::Stats {
            communities: vec![good, dirty],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: false,
            quarantine: true,
        })
        .unwrap();
        assert!(prom.contains("csj_data_quarantined_total 2"), "{prom}");
        assert!(prom.contains("csj_communities 2"), "{prom}");
    }

    /// The full chaos soak: fault injection makes the service shed,
    /// degrade, trip the exact breaker and recover — all while the
    /// resolution invariants hold. Mirrors the CI soak step.
    #[cfg(feature = "chaos")]
    #[test]
    fn serve_sim_chaos_sheds_degrades_and_recovers_the_breaker() {
        let metrics = std::env::temp_dir().join("csj_cli_serve_sim_chaos.prom");
        let out = execute(Command::ServeSim {
            qps: 150,
            duration_ms: 1_500,
            workers: 2,
            queue: 4,
            communities: 5,
            scale: 120,
            eps: 1,
            seed: 11,
            deadline_ms: 100,
            chaos: true,
            chaos_mode: None,
            metrics_out: Some(metrics.clone()),
            durable: false,
            durable_dir: None,
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert!(report_field(&out, "shed") > 0, "{out}");
        assert!(report_field(&out, "degraded") > 0, "{out}");
        assert!(report_field(&out, "open") >= 1, "breaker must trip: {out}");
        assert!(
            report_field(&out, "closed") >= 1,
            "breaker must recover: {out}"
        );
        assert_eq!(report_field(&out, "panics-escaped"), 0, "{out}");
        assert!(
            out.contains("invariant submitted == admitted + shed: ok"),
            "{out}"
        );
        assert!(
            out.contains("invariant every admitted request resolved exactly once: ok"),
            "{out}"
        );
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("csj_service_shed_total"), "{prom}");
        assert!(
            prom.contains("csj_service_breaker_transitions_total"),
            "{prom}"
        );
    }

    /// Shard-kill chaos: one shard of every sharded request dies, the
    /// rest of the query survives. Correctness degrades to *coverage*,
    /// never to wrong answers or escaped panics. Mirrors the CI shard
    /// soak step.
    #[cfg(feature = "chaos")]
    #[test]
    fn serve_sim_shard_kill_degrades_coverage_not_correctness() {
        let metrics = std::env::temp_dir().join("csj_cli_serve_sim_shard_kill.prom");
        let out = execute(Command::ServeSim {
            qps: 100,
            duration_ms: 1_000,
            workers: 2,
            queue: 32,
            communities: 6,
            scale: 60,
            eps: 1,
            seed: 23,
            deadline_ms: 250,
            chaos: true,
            chaos_mode: Some("shard-kill".into()),
            metrics_out: Some(metrics.clone()),
            durable: false,
            durable_dir: None,
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert_eq!(report_field(&out, "panics-escaped"), 0, "{out}");
        assert!(report_field(&out, "dispatched") > 0, "{out}");
        // The attacked shard fails every sharded request: completeness
        // is lost (completed < dispatched) and the service surfaces it
        // through the coverage degradation trigger.
        assert!(
            report_field(&out, "completed") < report_field(&out, "dispatched"),
            "{out}"
        );
        assert!(report_field(&out, "coverage") > 0, "{out}");
        assert!(
            out.contains(
                "invariant shard fates reconcile \
                 (dispatched == completed + failed + cancelled): ok"
            ),
            "{out}"
        );
        assert!(
            out.contains("invariant every admitted request resolved exactly once: ok"),
            "{out}"
        );
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("csj_shard_dispatched_total"), "{prom}");
        assert!(
            prom.contains("csj_shard_outcomes_total{fate=\"failed\"}"),
            "{prom}"
        );
    }

    /// Shard-stall chaos: a straggling primary attempt is rescued by a
    /// hedged re-dispatch — coverage stays complete and the hedge
    /// counter proves the rescue happened.
    #[cfg(feature = "chaos")]
    #[test]
    fn serve_sim_shard_stall_is_rescued_by_hedging() {
        let out = execute(Command::ServeSim {
            qps: 100,
            duration_ms: 1_000,
            workers: 2,
            queue: 32,
            communities: 6,
            scale: 60,
            eps: 1,
            seed: 29,
            deadline_ms: 250,
            chaos: true,
            chaos_mode: Some("shard-stall".into()),
            metrics_out: None,
            durable: false,
            durable_dir: None,
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: false,
        })
        .unwrap();
        assert_eq!(report_field(&out, "panics-escaped"), 0, "{out}");
        assert!(report_field(&out, "hedged") >= 1, "hedge must fire: {out}");
        assert!(
            out.contains(
                "invariant shard fates reconcile \
                 (dispatched == completed + failed + cancelled): ok"
            ),
            "{out}"
        );
    }

    #[test]
    fn parse_slow_slo_and_export_flags() {
        match parse(&argv(
            "slow --communities a,b --eps 1 --max-joins 1 --slow-threshold-us 5000 \
             --last 2 --json --out /tmp/f.json",
        ))
        .unwrap()
        {
            Command::Slow {
                communities,
                eps,
                max_joins,
                slow_threshold_us,
                last,
                json,
                out,
                ..
            } => {
                assert_eq!(communities.len(), 2);
                assert_eq!(eps, 1);
                assert_eq!(max_joins, Some(1));
                assert_eq!(slow_threshold_us, 5_000);
                assert_eq!(last, 2);
                assert!(json);
                assert_eq!(out, Some(PathBuf::from("/tmp/f.json")));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("slow --communities a,b --eps 1")).unwrap() {
            Command::Slow {
                slow_threshold_us,
                last,
                json,
                out,
                ..
            } => {
                assert_eq!(slow_threshold_us, 0, "default captures everything");
                assert_eq!(last, 8);
                assert!(!json);
                assert_eq!(out, None);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "slo --communities a,b --eps 1 --threshold 0.3 --max-joins 0 --json",
        ))
        .unwrap()
        {
            Command::Slo {
                threshold,
                max_joins,
                json,
                ..
            } => {
                assert!((threshold - 0.3).abs() < 1e-9);
                assert_eq!(max_joins, Some(0));
                assert!(json);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv(
            "trace --communities a,b --eps 1 --export chrome --out /tmp/t.json",
        ))
        .unwrap()
        {
            Command::Trace { export, out, .. } => {
                assert_eq!(export.as_deref(), Some("chrome"));
                assert_eq!(out, Some(PathBuf::from("/tmp/t.json")));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("serve-sim --slo")).unwrap() {
            Command::ServeSim { slo, .. } => assert!(slo),
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("trace --communities a,b --eps 1 --export svg")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("trace --communities a,b --eps 1 --out /tmp/t.json")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("slow --communities solo --eps 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("slo --communities a,b --eps 1 --threshold lots")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn slow_reproduces_pathological_queries_with_plan_and_telemetry() {
        let (b, a) = generated_pair("csj_cli_slow_test", 7);
        // An unbudgeted run with threshold 0: the completed top-k is
        // captured for latency, and the record carries the rolled-up
        // join telemetry plus the full span tree.
        let json = execute(Command::Slow {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: None,
            slow_threshold_us: 0,
            last: 4,
            json: true,
            out: None,
            quarantine: false,
        })
        .unwrap();
        assert!(json.contains("\"cause\":\"latency>0us\""), "{json}");
        assert!(json.contains("\"joins\":1"), "{json}");
        assert!(json.contains("\"rows_driven\""), "{json}");
        assert!(json.contains("\"matcher_edges\""), "{json}");
        assert!(json.contains("\"screen\""), "{json}");
        let _parsed: serde_json::Value =
            serde_json::from_str(&json).expect("slow --json emits valid JSON");

        // A zero-deadline run exhausts before any join: the trace lands
        // in the log for its outcome, with the budget state attached.
        // --out persists the JSON records even when stdout is text.
        let dir = std::env::temp_dir().join("csj_cli_slow_test");
        let out_path = dir.join("forensics.json");
        let msg = execute(Command::Slow {
            communities: vec![b, a],
            eps: 1,
            k: 3,
            deadline_ms: Some(0),
            max_joins: None,
            slow_threshold_us: 1_000_000_000,
            last: 4,
            json: false,
            out: Some(out_path.clone()),
            quarantine: false,
        })
        .unwrap();
        assert!(msg.contains("wrote 1 forensic records"), "{msg}");
        let artifact = std::fs::read_to_string(&out_path).unwrap();
        assert!(
            artifact.contains("\"cause\":\"outcome:exhausted:deadline\""),
            "{artifact}"
        );
        assert!(artifact.contains("budget_reason"), "{artifact}");
        assert!(artifact.contains("top_k"), "{artifact}");
        let _parsed: serde_json::Value =
            serde_json::from_str(&artifact).expect("slow --out persists valid JSON");
        assert!(!dir.join("forensics.json.tmp").exists(), "atomic write");
    }

    #[test]
    fn trace_export_chrome_round_trips() {
        let (b, a) = generated_pair("csj_cli_export_test", 9);
        let run = |export: &str, out: Option<PathBuf>| {
            execute(Command::Trace {
                communities: vec![b.clone(), a.clone()],
                eps: 1,
                k: 2,
                deadline_ms: None,
                max_joins: None,
                last: 1,
                json: false,
                via_service: false,
                quarantine: false,
                export: Some(export.to_string()),
                out,
            })
            .unwrap()
        };
        let chrome = run("chrome", None);
        let v: serde_json::Value =
            serde_json::from_str(&chrome).expect("chrome export is valid JSON");
        assert_eq!(v["displayTimeUnit"].as_str(), Some("ms"));
        let events = &v["traceEvents"];
        let (mut complete, mut meta, mut i) = (0, 0, 0);
        loop {
            let e = &events[i];
            match e["ph"].as_str() {
                Some("X") => {
                    complete += 1;
                    assert!(e["name"].as_str().is_some(), "{chrome}");
                    assert_eq!(e["pid"].as_u64(), Some(1), "{chrome}");
                    assert!(
                        e["ts"].as_f64().is_some() && e["dur"].as_f64().is_some(),
                        "{chrome}"
                    );
                }
                Some("M") => meta += 1,
                Some(other) => panic!("unexpected phase {other:?} in {chrome}"),
                None => break,
            }
            i += 1;
        }
        assert!(complete >= 2, "query + child spans expected: {chrome}");
        assert!(meta >= 1, "thread_name metadata expected: {chrome}");

        let jsonl = run("jsonl", None);
        assert!(jsonl.lines().count() >= 1);
        for line in jsonl.lines() {
            let _: serde_json::Value =
                serde_json::from_str(line).expect("each jsonl line is valid JSON");
        }

        let dir = std::env::temp_dir().join("csj_cli_export_test");
        let path = dir.join("trace.json");
        let msg = run("chrome", Some(path.clone()));
        assert!(msg.contains("exported 1 traces (chrome)"), "{msg}");
        let on_disk = std::fs::read_to_string(&path).unwrap();
        let _: serde_json::Value =
            serde_json::from_str(&on_disk).expect("exported file is valid JSON");
        assert!(!dir.join("trace.json.tmp").exists(), "atomic write");
    }

    #[test]
    fn slo_reports_burn_rates_for_budget_exhaustion() {
        let (b, a) = generated_pair("csj_cli_slo_test", 10);
        // max-joins 0 exhausts the top-k: 1 of 2 queries burns budget,
        // blowing the 5% exhausted_fraction objective.
        let text = execute(Command::Slo {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            deadline_ms: None,
            max_joins: Some(0),
            json: false,
            quarantine: false,
        })
        .unwrap();
        assert!(text.contains("slo exhausted_fraction/5m: burn"), "{text}");
        assert!(text.contains("slo join_latency/1h: burn"), "{text}");
        assert!(text.contains("BREACHED"), "{text}");
        assert!(text.contains("objectives=2 windows=2 breached="), "{text}");

        let json = execute(Command::Slo {
            communities: vec![b, a],
            eps: 1,
            threshold: 0.0,
            deadline_ms: None,
            max_joins: Some(0),
            json: true,
            quarantine: false,
        })
        .unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&json).expect("slo --json emits valid JSON");
        assert_eq!(v[0]["objective"].as_str(), Some("join_latency"), "{json}");
        assert!(
            json.contains("\"objective\":\"exhausted_fraction\""),
            "{json}"
        );
        assert!(json.contains("\"breached\":true"), "{json}");
    }

    #[test]
    fn stats_exposes_slo_burn_rate_series() {
        let (b, a) = generated_pair("csj_cli_stats_slo_test", 11);
        let prom = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: false,
            quarantine: false,
        })
        .unwrap();
        assert!(prom.contains("# TYPE csj_slo_target gauge"), "{prom}");
        assert!(prom.contains("# TYPE csj_slo_burn_rate gauge"), "{prom}");
        assert!(prom.contains("# TYPE csj_slo_bad_fraction gauge"), "{prom}");
        assert!(prom.contains("# TYPE csj_slo_breached gauge"), "{prom}");
        assert!(
            prom.contains("csj_slo_target{objective=\"exhausted_fraction\"}"),
            "{prom}"
        );
        assert!(
            prom.contains("csj_slo_burn_rate{objective=\"join_latency\",window=\"5m\"}"),
            "{prom}"
        );

        // --via-service adds the service objectives to the exposition.
        let via = execute(Command::Stats {
            communities: vec![b, a],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
            via_service: true,
            quarantine: false,
        })
        .unwrap();
        assert!(
            via.contains("csj_slo_burn_rate{objective=\"shed_fraction\",window=\"1h\"}"),
            "{via}"
        );
        assert!(
            via.contains("csj_slo_target{objective=\"request_latency\"}"),
            "{via}"
        );
    }

    #[test]
    fn serve_sim_slo_self_check_passes() {
        let metrics =
            std::env::temp_dir().join(format!("csj_cli_serve_sim_slo_{}.prom", std::process::id()));
        let out = execute(Command::ServeSim {
            qps: 40,
            duration_ms: 500,
            workers: 2,
            queue: 16,
            communities: 3,
            scale: 60,
            eps: 1,
            seed: 7,
            deadline_ms: 250,
            chaos: false,
            chaos_mode: None,
            metrics_out: Some(metrics.clone()),
            durable: false,
            durable_dir: None,
            crash_after: None,
            fsync: csj_durability::FsyncPolicy::Always,
            slo: true,
        })
        .unwrap();
        assert!(out.contains("slo request_latency/5m: burn"), "{out}");
        assert!(out.contains("slo degraded_fraction/"), "{out}");
        assert!(out.contains("slo shed_fraction/"), "{out}");
        assert!(
            out.contains("invariant slo burn rates reconcile with fate counters: ok"),
            "{out}"
        );
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            prom.contains("csj_slo_burn_rate{objective=\"request_latency\""),
            "{prom}"
        );
        assert!(prom.contains("csj_service_submitted_total"), "{prom}");
        std::fs::remove_file(&metrics).unwrap();
    }
}
