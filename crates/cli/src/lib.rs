//! # csj-cli — command-line interface for CSJ
//!
//! ```text
//! csj couples                                   list the paper's 20 couples
//! csj generate --dataset vk --cid 1 --scale 64 \
//!              --out-b b.csjb --out-a a.csjb    materialise a couple to files
//! csj info b.csjb                               community statistics
//! csj join --b b.csjb --a a.csjb --eps 1 \
//!          --method ex-minmax [--json]          run one CSJ method
//! csj explain --b b.csjb --a a.csjb --eps 1 \
//!             --method ex-minmax                join + kernel telemetry report
//! csj truth --b b.csjb --a a.csjb --eps 1       brute-force ground truth
//! ```
//!
//! Files ending in `.csv` use the text format, anything else the compact
//! binary format (`csj_data::io`). The argument parser and the command
//! executor are library functions so the whole surface is unit-testable;
//! `main.rs` is a thin wrapper.

use std::path::{Path, PathBuf};

use csj_core::prepared::{ap_minmax_between, ex_minmax_between};
use csj_core::{run, Community, CsjMethod, CsjOptions, MatcherKind, PreparedCommunity};
use csj_data::io::{read_binary, read_csv, read_prepared, write_binary, write_csv, write_prepared};
use csj_data::pairs::{build_couple, BuildOptions, Dataset};
use csj_data::spec::COUPLES;
use csj_data::stats::summarize;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the paper's couple specifications.
    Couples,
    /// Generate one couple to a pair of files.
    Generate {
        dataset: Dataset,
        cid: u8,
        scale: u32,
        seed: u64,
        out_b: PathBuf,
        out_a: PathBuf,
    },
    /// Print statistics of one community file.
    Info { path: PathBuf },
    /// Precompute and persist the MinMax encodings of a community
    /// (writes a `.csjp` index file that `join` loads without
    /// re-encoding).
    Prepare {
        input: PathBuf,
        eps: u32,
        parts: usize,
        out: PathBuf,
    },
    /// Join two community files with one method.
    Join {
        b: PathBuf,
        a: PathBuf,
        eps: u32,
        method: CsjMethod,
        matcher: MatcherKind,
        parts: usize,
        json: bool,
        /// Print the closest N matched user pairs.
        pairs: usize,
    },
    /// Join two community files and print the kernel telemetry report
    /// (per-phase timings, prune histograms, candidate-stream depth,
    /// matcher flush counts) instead of the result summary.
    Explain {
        b: PathBuf,
        a: PathBuf,
        eps: u32,
        method: CsjMethod,
        matcher: MatcherKind,
        parts: usize,
    },
    /// Rank candidate community files against an anchor (two-phase
    /// screen-then-refine pipeline).
    TopK {
        anchor: PathBuf,
        candidates: Vec<PathBuf>,
        eps: u32,
        k: usize,
        /// Wall-clock budget for the whole query; on exhaustion the
        /// ranking covers whatever was scored in time.
        deadline_ms: Option<u64>,
        /// Cap on joins executed by the query.
        max_joins: Option<u64>,
    },
    /// Run a broadcast sweep over community files, then print the
    /// engine's `csj_*` metrics in the requested exposition format.
    Stats {
        communities: Vec<PathBuf>,
        eps: u32,
        /// Similarity threshold for the sweep that feeds the metrics.
        threshold: f64,
        format: StatsFormat,
    },
    /// Run a top-k query over community files (first file is the
    /// anchor) and dump the flight recorder's span traces.
    Trace {
        communities: Vec<PathBuf>,
        eps: u32,
        k: usize,
        deadline_ms: Option<u64>,
        max_joins: Option<u64>,
        /// How many of the most recent traces to print.
        last: usize,
        json: bool,
    },
    /// Brute-force ground truth of a pair.
    Truth { b: PathBuf, a: PathBuf, eps: u32 },
}

/// Output format of `csj stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Prometheus text exposition format 0.0.4.
    Prometheus,
    /// One JSON object per metric sample.
    Json,
    /// Human-readable summary ([`csj_engine::EngineStats`] display).
    Text,
}

impl std::str::FromStr for StatsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "prom" | "prometheus" => Ok(StatsFormat::Prometheus),
            "json" => Ok(StatsFormat::Json),
            "text" => Ok(StatsFormat::Text),
            other => Err(format!("--format expects prom|json|text, got {other:?}")),
        }
    }
}

/// CLI errors (bad arguments, I/O, join rejections).
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed; the message is user-facing usage help.
    Usage(String),
    /// File I/O or format failure.
    Io(String),
    /// The join itself was rejected.
    Csj(csj_core::CsjError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "i/o error: {msg}"),
            CliError::Csj(e) => write!(f, "join rejected: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Usage banner.
pub const USAGE: &str = "\
usage:
  csj couples
  csj generate --dataset <vk|synthetic> --cid <1..20> [--scale N] [--seed S] --out-b FILE --out-a FILE
  csj info <FILE>
  csj prepare --input FILE --eps E [--parts P] --out FILE.csjp
  csj join --b FILE --a FILE --eps E [--method M] [--matcher K] [--parts P] [--json] [--pairs N]
  csj explain --b FILE --a FILE --eps E [--method M] [--matcher K] [--parts P]
  csj topk --anchor FILE --candidates F1,F2,... --eps E [--k K] [--deadline-ms MS] [--max-joins N]
  csj stats --communities F1,F2,... --eps E [--threshold T] [--format prom|json|text]
  csj trace --communities F1,F2,... --eps E [--k K] [--deadline-ms MS] [--max-joins N] [--last N] [--json]
  csj truth --b FILE --a FILE --eps E
formats: *.csv is text, *.csjp is a prepared index, anything else the CSJB binary format";

/// Parse raw arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter().map(String::as_str);
    let sub = it
        .next()
        .ok_or_else(|| CliError::Usage("missing subcommand".into()))?;
    let rest: Vec<&str> = it.collect();
    let get = |flag: &str| -> Option<&str> {
        rest.iter()
            .position(|&a| a == flag)
            .and_then(|i| rest.get(i + 1).copied())
    };
    let has = |flag: &str| rest.contains(&flag);
    let require = |flag: &str| -> Result<&str, CliError> {
        get(flag).ok_or_else(|| CliError::Usage(format!("missing {flag}")))
    };
    let parse_num = |flag: &str, v: &str| -> Result<u64, CliError> {
        v.parse()
            .map_err(|_| CliError::Usage(format!("{flag} expects a number, got {v:?}")))
    };

    match sub {
        "couples" => Ok(Command::Couples),
        "generate" => {
            let dataset = match require("--dataset")? {
                "vk" => Dataset::VkLike,
                "synthetic" => Dataset::Uniform,
                other => {
                    return Err(CliError::Usage(format!(
                        "--dataset expects vk|synthetic, got {other:?}"
                    )))
                }
            };
            let cid = parse_num("--cid", require("--cid")?)? as u8;
            if !(1..=20).contains(&cid) {
                return Err(CliError::Usage("--cid must be 1..=20".into()));
            }
            let scale = get("--scale").map_or(Ok(64), |v| parse_num("--scale", v))? as u32;
            if scale == 0 {
                return Err(CliError::Usage("--scale must be >= 1".into()));
            }
            let seed = get("--seed").map_or(Ok(0xC5A0_2024), |v| parse_num("--seed", v))?;
            Ok(Command::Generate {
                dataset,
                cid,
                scale,
                seed,
                out_b: PathBuf::from(require("--out-b")?),
                out_a: PathBuf::from(require("--out-a")?),
            })
        }
        "prepare" => Ok(Command::Prepare {
            input: PathBuf::from(require("--input")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
            out: PathBuf::from(require("--out")?),
        }),
        "info" => {
            let path = rest
                .iter()
                .find(|a| !a.starts_with("--"))
                .ok_or_else(|| CliError::Usage("info expects a file path".into()))?;
            Ok(Command::Info {
                path: PathBuf::from(path),
            })
        }
        "join" => Ok(Command::Join {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            method: get("--method")
                .unwrap_or("ex-minmax")
                .parse()
                .map_err(CliError::Usage)?,
            matcher: get("--matcher")
                .unwrap_or("csf")
                .parse()
                .map_err(CliError::Usage)?,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
            json: has("--json"),
            pairs: get("--pairs").map_or(Ok(0), |v| parse_num("--pairs", v))? as usize,
        }),
        "explain" => Ok(Command::Explain {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
            method: get("--method")
                .unwrap_or("ex-minmax")
                .parse()
                .map_err(CliError::Usage)?,
            matcher: get("--matcher")
                .unwrap_or("csf")
                .parse()
                .map_err(CliError::Usage)?,
            parts: get("--parts").map_or(Ok(4), |v| parse_num("--parts", v))? as usize,
        }),
        "topk" => {
            let anchor = PathBuf::from(require("--anchor")?);
            let candidates: Vec<PathBuf> = require("--candidates")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
                .collect();
            if candidates.is_empty() {
                return Err(CliError::Usage(
                    "--candidates expects a comma-separated list".into(),
                ));
            }
            Ok(Command::TopK {
                anchor,
                candidates,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                k: get("--k").map_or(Ok(3), |v| parse_num("--k", v))? as usize,
                deadline_ms: get("--deadline-ms")
                    .map(|v| parse_num("--deadline-ms", v))
                    .transpose()?,
                max_joins: get("--max-joins")
                    .map(|v| parse_num("--max-joins", v))
                    .transpose()?,
            })
        }
        "stats" => {
            let communities: Vec<PathBuf> = require("--communities")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
                .collect();
            if communities.len() < 2 {
                return Err(CliError::Usage(
                    "--communities expects at least two comma-separated files".into(),
                ));
            }
            let threshold = get("--threshold").map_or(Ok(0.15), |v| {
                v.parse::<f64>()
                    .map_err(|_| CliError::Usage(format!("--threshold expects a ratio, got {v:?}")))
            })?;
            Ok(Command::Stats {
                communities,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                threshold,
                format: get("--format")
                    .unwrap_or("prom")
                    .parse()
                    .map_err(CliError::Usage)?,
            })
        }
        "trace" => {
            let communities: Vec<PathBuf> = require("--communities")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
                .collect();
            if communities.len() < 2 {
                return Err(CliError::Usage(
                    "--communities expects at least two comma-separated files".into(),
                ));
            }
            Ok(Command::Trace {
                communities,
                eps: parse_num("--eps", require("--eps")?)? as u32,
                k: get("--k").map_or(Ok(3), |v| parse_num("--k", v))? as usize,
                deadline_ms: get("--deadline-ms")
                    .map(|v| parse_num("--deadline-ms", v))
                    .transpose()?,
                max_joins: get("--max-joins")
                    .map(|v| parse_num("--max-joins", v))
                    .transpose()?,
                last: get("--last").map_or(Ok(1), |v| parse_num("--last", v))? as usize,
                json: has("--json"),
            })
        }
        "truth" => Ok(Command::Truth {
            b: PathBuf::from(require("--b")?),
            a: PathBuf::from(require("--a")?),
            eps: parse_num("--eps", require("--eps")?)? as u32,
        }),
        other => Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    }
}

/// A community file, possibly carrying a persisted prepared index.
enum Loaded {
    Plain(Community),
    Prepared(Box<PreparedCommunity>),
}

impl Loaded {
    fn community(&self) -> &Community {
        match self {
            Loaded::Plain(c) => c,
            Loaded::Prepared(p) => p.community(),
        }
    }
}

fn load_any(path: &Path) -> Result<Loaded, CliError> {
    if path.extension().is_some_and(|e| e == "csjp") {
        let file = std::fs::File::open(path)
            .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        let prepared =
            read_prepared(file).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        Ok(Loaded::Prepared(Box::new(prepared)))
    } else {
        load(path).map(Loaded::Plain)
    }
}

fn load(path: &Path) -> Result<Community, CliError> {
    let file =
        std::fs::File::open(path).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    let is_csv = path.extension().is_some_and(|e| e == "csv");
    let parsed = if is_csv {
        read_csv(file)
    } else {
        read_binary(file)
    };
    parsed.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
}

/// Load both sides, orient them smaller-first, and run `method` under
/// `opts` — through the persisted encodings when both sides carry a
/// compatible `.csjp` index and the method has a prepared fast path.
/// Shared by `join` and `explain`.
fn load_and_join(
    b: &Path,
    a: &Path,
    method: CsjMethod,
    opts: &CsjOptions,
) -> Result<(Loaded, Loaded, csj_core::JoinOutcome), CliError> {
    let lb = load_any(b)?;
    let la = load_any(a)?;
    let (lb, la) = if lb.community().len() <= la.community().len() {
        (lb, la)
    } else {
        (la, lb)
    };
    let prepared_path = match (&lb, &la) {
        (Loaded::Prepared(pb), Loaded::Prepared(pa))
            if pb.eps() == opts.eps
                && pa.eps() == opts.eps
                && pb.params() == opts.encoding
                && pa.params() == opts.encoding =>
        {
            match method {
                CsjMethod::ApMinMax => Some(ap_minmax_between(pb, pa, opts)),
                CsjMethod::ExMinMax => Some(ex_minmax_between(pb, pa, opts)),
                _ => None,
            }
        }
        _ => None,
    };
    let outcome = match prepared_path {
        Some(raw) => {
            let start = std::time::Instant::now();
            let _ = &raw; // join already ran; timing below reports packaging only
            csj_core::JoinOutcome {
                method,
                similarity: csj_core::Similarity::new(raw.pairs.len(), lb.community().len()),
                pairs: raw.pairs,
                events: raw.telemetry.events,
                telemetry: raw.telemetry,
                ego_stats: raw.ego,
                elapsed: start.elapsed() + raw.timings.total(),
                timings: raw.timings,
                cancelled: raw.cancelled,
            }
        }
        None => run(method, lb.community(), la.community(), opts).map_err(CliError::Csj)?,
    };
    Ok((lb, la, outcome))
}

/// Load community files and register them all in one fresh engine; the
/// first file's dimensionality sets the engine's. Used by the
/// observability subcommands (`stats`, `trace`).
fn load_engine(
    files: &[PathBuf],
    eps: u32,
) -> Result<(csj_engine::CsjEngine, Vec<csj_engine::CommunityHandle>), CliError> {
    use csj_engine::{CsjEngine, EngineConfig};
    let mut engine: Option<CsjEngine> = None;
    let mut handles = Vec::new();
    for path in files {
        let c = match load_any(path)? {
            Loaded::Plain(c) => c,
            Loaded::Prepared(p) => p.into_community(),
        };
        let engine = engine.get_or_insert_with(|| CsjEngine::new(c.d(), EngineConfig::new(eps)));
        handles.push(
            engine
                .register(c)
                .map_err(|e| CliError::Io(e.to_string()))?,
        );
    }
    let engine = engine.ok_or_else(|| CliError::Usage("no community files given".into()))?;
    Ok((engine, handles))
}

fn store(community: &Community, path: &Path) -> Result<(), CliError> {
    let file = std::fs::File::create(path)
        .map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    let is_csv = path.extension().is_some_and(|e| e == "csv");
    let written = if is_csv {
        write_csv(community, file)
    } else {
        write_binary(community, file)
    };
    written.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))
}

/// Execute a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    use std::fmt::Write as _;
    match cmd {
        Command::Couples => {
            let mut out =
                String::from("cID  categories (B | A)                          size_B   size_A\n");
            for c in &COUPLES {
                let _ = writeln!(
                    out,
                    "{:>3}  {:<43} {:>7}  {:>7}",
                    c.cid,
                    format!("{} | {}", c.cat_b, c.cat_a),
                    c.size_b,
                    c.size_a
                );
            }
            Ok(out)
        }
        Command::Generate {
            dataset,
            cid,
            scale,
            seed,
            out_b,
            out_a,
        } => {
            let spec = csj_data::spec::couple(cid);
            let pair = build_couple(spec, dataset, BuildOptions { scale, seed });
            store(&pair.b, &out_b)?;
            store(&pair.a, &out_a)?;
            Ok(format!(
                "wrote {} ({} users) and {} ({} users); join with --eps {}\n",
                out_b.display(),
                pair.b.len(),
                out_a.display(),
                pair.a.len(),
                pair.eps
            ))
        }
        Command::Info { path } => {
            let c = load(&path)?;
            let s = summarize(&c);
            Ok(format!(
                "community: {}\nusers: {}\ndimensions: {}\nmean counter: {:.2}\n\
                 median: {}\np99: {}\nmax: {}\nzero fraction: {:.1}%\n",
                c.name(),
                c.len(),
                c.d(),
                s.mean,
                s.p50,
                s.p99,
                s.max,
                s.zero_fraction * 100.0
            ))
        }
        Command::Prepare {
            input,
            eps,
            parts,
            out,
        } => {
            let community = load(&input)?;
            let opts = CsjOptions::new(eps).with_parts(parts);
            let prepared = PreparedCommunity::new(community, &opts);
            let file = std::fs::File::create(&out)
                .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
            write_prepared(&prepared, file)
                .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
            Ok(format!(
                "wrote {} ({} users, eps = {eps}, {} parts, {} KiB of encodings)\n",
                out.display(),
                prepared.len(),
                prepared.encoded_b().parts(),
                (prepared.encoded_b().memory_bytes() + prepared.encoded_a().memory_bytes()) / 1024
            ))
        }
        Command::Join {
            b,
            a,
            eps,
            method,
            matcher,
            parts,
            json,
            pairs,
        } => {
            let opts = CsjOptions::new(eps).with_matcher(matcher).with_parts(parts);
            let (lb, la, outcome) = load_and_join(&b, &a, method, &opts)?;
            let (cb, ca) = (lb.community(), la.community());
            let closest_pairs = if pairs > 0 {
                let mut scored: Vec<(u64, u64, u64)> = outcome
                    .pairs
                    .iter()
                    .map(|&(i, j)| {
                        let gap: u64 = cb
                            .vector(i as usize)
                            .iter()
                            .zip(ca.vector(j as usize))
                            .map(|(&x, &y)| x.abs_diff(y) as u64)
                            .sum();
                        (cb.user_id(i as usize), ca.user_id(j as usize), gap)
                    })
                    .collect();
                scored.sort_by_key(|&(b_id, a_id, gap)| (gap, b_id, a_id));
                scored.truncate(pairs);
                scored
            } else {
                Vec::new()
            };
            if json {
                let value = serde_json::json!({
                    "method": method.name(),
                    "eps": eps,
                    "matcher": matcher.name(),
                    "b": {"name": cb.name(), "size": cb.len()},
                    "a": {"name": ca.name(), "size": ca.len()},
                    "matched": outcome.similarity.matched,
                    "similarity_pct": outcome.similarity.percent(),
                    "seconds": outcome.elapsed.as_secs_f64(),
                    "events": outcome.events.to_string(),
                });
                Ok(format!(
                    "{}\n",
                    serde_json::to_string_pretty(&value).expect("serialises")
                ))
            } else {
                use std::fmt::Write as _;
                let mut out = format!(
                    "{} | {} vs {} | eps = {eps}\nsimilarity: {} ({} of {} B-users matched)\n\
                     time: {:.3} s\nevents: {}\n",
                    method.name(),
                    cb.name(),
                    ca.name(),
                    outcome.similarity,
                    outcome.similarity.matched,
                    cb.len(),
                    outcome.elapsed.as_secs_f64(),
                    outcome.events
                );
                if !closest_pairs.is_empty() {
                    let _ = writeln!(out, "closest matched pairs (B-user, A-user, L1 gap):");
                    for (bu, au, gap) in &closest_pairs {
                        let _ = writeln!(out, "  {bu} ~ {au} (gap {gap})");
                    }
                }
                Ok(out)
            }
        }
        Command::Explain {
            b,
            a,
            eps,
            method,
            matcher,
            parts,
        } => {
            let opts = CsjOptions::new(eps).with_matcher(matcher).with_parts(parts);
            let (lb, la, outcome) = load_and_join(&b, &a, method, &opts)?;
            let t = outcome.timings;
            Ok(format!(
                "{} | {} vs {} | eps = {eps}\n\
                 similarity: {} ({} of {} B-users matched)\n\
                 phases: setup {:.3} s | pairing {:.3} s | matching {:.3} s (total {:.3} s)\n{}",
                method.name(),
                lb.community().name(),
                la.community().name(),
                outcome.similarity,
                outcome.similarity.matched,
                lb.community().len(),
                t.setup.as_secs_f64(),
                t.pairing.as_secs_f64(),
                t.matching.as_secs_f64(),
                t.total().as_secs_f64(),
                outcome.telemetry,
            ))
        }
        Command::TopK {
            anchor,
            candidates,
            eps,
            k,
            deadline_ms,
            max_joins,
        } => {
            use csj_engine::{Budget, CsjEngine, EngineConfig};
            let anchor_c = match load_any(&anchor)? {
                Loaded::Plain(c) => c,
                Loaded::Prepared(p) => p.into_community(),
            };
            let d = anchor_c.d();
            let mut engine = CsjEngine::new(d, EngineConfig::new(eps));
            let anchor_h = engine
                .register(anchor_c)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let mut handles = Vec::new();
            for path in &candidates {
                let c = match load_any(path)? {
                    Loaded::Plain(c) => c,
                    Loaded::Prepared(p) => p.into_community(),
                };
                handles.push(
                    engine
                        .register(c)
                        .map_err(|e| CliError::Io(e.to_string()))?,
                );
            }
            let mut budget = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(max) = max_joins {
                budget = budget.with_max_joins(max);
            }
            let partial = engine
                .screen_and_refine_with_budget(anchor_h, &handles, &budget)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let exhausted = partial.exhausted;
            let mut ranked = partial.value;
            ranked.truncate(k);
            use std::fmt::Write as _;
            let mut out = format!(
                "top-{} of {} candidates vs {}:\n",
                k,
                candidates.len(),
                engine.community(anchor_h).expect("registered").name()
            );
            if let Some(marker) = exhausted {
                let _ = writeln!(
                    out,
                    "  (budget exhausted: {}; {} joins done, {} skipped — ranking is partial)",
                    marker.reason, marker.pairs_done, marker.pairs_skipped
                );
            }
            if ranked.is_empty() {
                let _ = writeln!(out, "  (no candidate cleared the screening threshold)");
            }
            for (rank, p) in ranked.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {} {}",
                    rank + 1,
                    engine.community(p.y).expect("registered").name(),
                    p.similarity
                );
            }
            Ok(out)
        }
        Command::Stats {
            communities,
            eps,
            threshold,
            format,
        } => {
            let (mut engine, _handles) = load_engine(&communities, eps)?;
            engine
                .pairs_above(threshold)
                .map_err(|e| CliError::Io(e.to_string()))?;
            Ok(match format {
                StatsFormat::Prometheus => engine.metrics_snapshot().to_prometheus(),
                StatsFormat::Json => format!("{}\n", engine.metrics_snapshot().to_json()),
                StatsFormat::Text => engine.stats().to_string(),
            })
        }
        Command::Trace {
            communities,
            eps,
            k,
            deadline_ms,
            max_joins,
            last,
            json,
        } => {
            use csj_engine::Budget;
            let (mut engine, handles) = load_engine(&communities, eps)?;
            let mut budget = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                budget = budget.with_deadline(std::time::Duration::from_millis(ms));
            }
            if let Some(max) = max_joins {
                budget = budget.with_max_joins(max);
            }
            engine
                .top_k_similar_with_budget(handles[0], k, &budget)
                .map_err(|e| CliError::Io(e.to_string()))?;
            let traces = engine.traces(last);
            if json {
                let items: Vec<String> = traces.iter().map(|t| t.to_json()).collect();
                Ok(format!("[{}]\n", items.join(",")))
            } else {
                let mut out = String::new();
                for t in &traces {
                    out.push_str(&t.to_text());
                }
                Ok(out)
            }
        }
        Command::Truth { b, a, eps } => {
            let cb = load(&b)?;
            let ca = load(&a)?;
            let (cb, ca) = if cb.len() <= ca.len() {
                (cb, ca)
            } else {
                (ca, cb)
            };
            let gt = csj_core::verify::ground_truth(&cb, &ca, eps);
            Ok(format!(
                "candidate pairs: {}\nmaximum matching: {}\nsimilarity: {}\n",
                gt.candidate_pairs.len(),
                gt.maximum_matching.len(),
                gt.similarity
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_couples() {
        assert_eq!(parse(&argv("couples")).unwrap(), Command::Couples);
    }

    #[test]
    fn parse_generate_with_defaults() {
        let cmd = parse(&argv(
            "generate --dataset vk --cid 3 --out-b /tmp/b.csjb --out-a /tmp/a.csjb",
        ))
        .unwrap();
        match cmd {
            Command::Generate {
                dataset,
                cid,
                scale,
                out_b,
                ..
            } => {
                assert_eq!(dataset, Dataset::VkLike);
                assert_eq!(cid, 3);
                assert_eq!(scale, 64);
                assert_eq!(out_b, PathBuf::from("/tmp/b.csjb"));
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_join_flags() {
        let cmd = parse(&argv(
            "join --b b.csv --a a.csv --eps 2 --method ap-minmax --matcher hk --parts 2 --json",
        ))
        .unwrap();
        match cmd {
            Command::Join {
                eps,
                method,
                matcher,
                parts,
                json,
                pairs,
                ..
            } => {
                assert_eq!(eps, 2);
                assert_eq!(method, CsjMethod::ApMinMax);
                assert_eq!(matcher, MatcherKind::HopcroftKarp);
                assert_eq!(parts, 2);
                assert!(json);
                assert_eq!(pairs, 0);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parse_explain_flags() {
        let cmd = parse(&argv(
            "explain --b b.csv --a a.csv --eps 2 --method ap-hybrid",
        ))
        .unwrap();
        match cmd {
            Command::Explain {
                eps,
                method,
                matcher,
                parts,
                ..
            } => {
                assert_eq!(eps, 2);
                assert_eq!(method, CsjMethod::ApHybrid);
                assert_eq!(matcher, MatcherKind::Csf);
                assert_eq!(parts, 4);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("explain --b b.csv --eps 2")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(parse(&argv("")), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&argv("frobnicate")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("generate --dataset mars --cid 1 --out-b x --out-a y")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("generate --dataset vk --cid 99 --out-b x --out-a y")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("join --b x --a y --eps lots")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("join --b x --a y --eps 1 --method warp")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn couples_lists_20_rows() {
        let out = execute(Command::Couples).unwrap();
        assert_eq!(out.lines().count(), 21); // header + 20
        assert!(out.contains("Restaurants | Food_recipes"));
    }

    #[test]
    fn generate_info_join_truth_end_to_end() {
        let dir = std::env::temp_dir().join("csj_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csv"); // mixed formats on purpose
        let msg = execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 1,
            scale: 1024,
            seed: 9,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        assert!(msg.contains("--eps 1"));

        let info = execute(Command::Info { path: b.clone() }).unwrap();
        assert!(info.contains("dimensions: 27"));

        let join = execute(Command::Join {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::HopcroftKarp,
            parts: 4,
            json: false,
            pairs: 2,
        })
        .unwrap();
        assert!(join.contains("similarity:"));

        let json_out = execute(Command::Join {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::HopcroftKarp,
            parts: 4,
            json: true,
            pairs: 0,
        })
        .unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json_out).unwrap();
        let matched = parsed["matched"].as_u64().unwrap();

        let truth = execute(Command::Truth {
            b: b.clone(),
            a: a.clone(),
            eps: 1,
        })
        .unwrap();
        assert!(truth.contains(&format!("maximum matching: {matched}")));
        assert!(join.contains("closest matched pairs"));

        let topk = execute(Command::TopK {
            anchor: b,
            candidates: vec![a],
            eps: 1,
            k: 2,
            deadline_ms: None,
            max_joins: None,
        })
        .unwrap();
        assert!(topk.contains("#1"), "topk output was: {topk}");
    }

    #[test]
    fn prepare_then_join_uses_the_index() {
        let dir = std::env::temp_dir().join("csj_cli_prepare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 2,
            scale: 1024,
            seed: 3,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let bp = dir.join("b.csjp");
        let ap = dir.join("a.csjp");
        let msg = execute(Command::Prepare {
            input: b.clone(),
            eps: 1,
            parts: 4,
            out: bp.clone(),
        })
        .unwrap();
        assert!(msg.contains("KiB of encodings"));
        execute(Command::Prepare {
            input: a.clone(),
            eps: 1,
            parts: 4,
            out: ap.clone(),
        })
        .unwrap();

        let join = |x: PathBuf, y: PathBuf| {
            execute(Command::Join {
                b: x,
                a: y,
                eps: 1,
                method: CsjMethod::ExMinMax,
                matcher: MatcherKind::Csf,
                parts: 4,
                json: true,
                pairs: 0,
            })
            .unwrap()
        };
        let via_index = join(bp, ap);
        let via_plain = join(b, a);
        let parse_matched = |out: &str| {
            serde_json::from_str::<serde_json::Value>(out).unwrap()["matched"]
                .as_u64()
                .unwrap()
        };
        assert_eq!(parse_matched(&via_index), parse_matched(&via_plain));
    }

    #[test]
    fn explain_reports_kernel_telemetry() {
        let dir = std::env::temp_dir().join("csj_cli_explain_test");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 3,
            scale: 1024,
            seed: 11,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let out = execute(Command::Explain {
            b,
            a,
            eps: 1,
            method: CsjMethod::ExMinMax,
            matcher: MatcherKind::Csf,
            parts: 4,
        })
        .unwrap();
        assert!(out.contains("similarity:"), "explain output was: {out}");
        assert!(out.contains("phases: setup"), "explain output was: {out}");
        assert!(out.contains("rows driven:"), "explain output was: {out}");
        assert!(
            out.contains("stream depth per row:"),
            "explain output was: {out}"
        );
        assert!(out.contains("matcher:"), "explain output was: {out}");
        assert!(out.contains("cancel polls:"), "explain output was: {out}");
    }

    #[test]
    fn topk_accepts_prepared_files() {
        let dir = std::env::temp_dir().join("csj_cli_topk_csjp");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 4,
            scale: 1024,
            seed: 5,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let ap = dir.join("a.csjp");
        execute(Command::Prepare {
            input: a,
            eps: 1,
            parts: 4,
            out: ap.clone(),
        })
        .unwrap();
        let out = execute(Command::TopK {
            anchor: ap,
            candidates: vec![b],
            eps: 1,
            k: 1,
            deadline_ms: None,
            max_joins: None,
        })
        .unwrap();
        assert!(out.contains("#1"), "topk must accept .csjp inputs: {out}");
    }

    #[test]
    fn parse_prepare() {
        let cmd = parse(&argv(
            "prepare --input x.csjb --eps 2 --parts 3 --out x.csjp",
        ))
        .unwrap();
        match cmd {
            Command::Prepare { eps, parts, .. } => {
                assert_eq!(eps, 2);
                assert_eq!(parts, 3);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("prepare --input x.csjb --out y")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_topk() {
        let cmd = parse(&argv(
            "topk --anchor x.csjb --candidates a.csjb,b.csjb --eps 1 --k 5",
        ))
        .unwrap();
        match cmd {
            Command::TopK {
                candidates, k, eps, ..
            } => {
                assert_eq!(candidates.len(), 2);
                assert_eq!(k, 5);
                assert_eq!(eps, 1);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("topk --anchor x --candidates , --eps 1")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_topk_budget_flags() {
        let cmd = parse(&argv(
            "topk --anchor x --candidates a,b --eps 1 --deadline-ms 250 --max-joins 10",
        ))
        .unwrap();
        match cmd {
            Command::TopK {
                deadline_ms,
                max_joins,
                ..
            } => {
                assert_eq!(deadline_ms, Some(250));
                assert_eq!(max_joins, Some(10));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("topk --anchor x --candidates a --eps 1")).unwrap() {
            Command::TopK {
                deadline_ms,
                max_joins,
                ..
            } => {
                assert_eq!(deadline_ms, None, "budget flags default to unlimited");
                assert_eq!(max_joins, None);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv(
                "topk --anchor x --candidates a --eps 1 --deadline-ms soon"
            )),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn topk_reports_budget_exhaustion() {
        let dir = std::env::temp_dir().join("csj_cli_topk_budget");
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid: 3,
            scale: 1024,
            seed: 11,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        let out = execute(Command::TopK {
            anchor: b,
            candidates: vec![a],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: Some(0),
        })
        .unwrap();
        assert!(out.contains("budget exhausted"), "output was: {out}");
        assert!(out.contains("max-joins"), "output was: {out}");
    }

    #[test]
    fn parse_stats_and_trace() {
        let cmd = parse(&argv(
            "stats --communities a.csjb,b.csjb --eps 1 --threshold 0.3 --format json",
        ))
        .unwrap();
        match cmd {
            Command::Stats {
                communities,
                eps,
                threshold,
                format,
            } => {
                assert_eq!(communities.len(), 2);
                assert_eq!(eps, 1);
                assert!((threshold - 0.3).abs() < 1e-9);
                assert_eq!(format, StatsFormat::Json);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&argv("stats --communities a,b --eps 1")).unwrap() {
            Command::Stats {
                format, threshold, ..
            } => {
                assert_eq!(format, StatsFormat::Prometheus, "prom is the default");
                assert!((threshold - 0.15).abs() < 1e-9);
            }
            other => panic!("parsed {other:?}"),
        }
        let cmd = parse(&argv(
            "trace --communities a,b,c --eps 2 --k 4 --max-joins 0 --last 5 --json",
        ))
        .unwrap();
        match cmd {
            Command::Trace {
                communities,
                k,
                max_joins,
                last,
                json,
                ..
            } => {
                assert_eq!(communities.len(), 3);
                assert_eq!(k, 4);
                assert_eq!(max_joins, Some(0));
                assert_eq!(last, 5);
                assert!(json);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(matches!(
            parse(&argv("stats --communities solo --eps 1")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&argv("stats --communities a,b --eps 1 --format yaml")),
            Err(CliError::Usage(_))
        ));
    }

    /// Generate a couple into `dir` and return the two file paths.
    fn generated_pair(dir: &str, cid: u8) -> (PathBuf, PathBuf) {
        let dir = std::env::temp_dir().join(dir);
        std::fs::create_dir_all(&dir).unwrap();
        let b = dir.join("b.csjb");
        let a = dir.join("a.csjb");
        execute(Command::Generate {
            dataset: Dataset::VkLike,
            cid,
            scale: 1024,
            seed: 7,
            out_b: b.clone(),
            out_a: a.clone(),
        })
        .unwrap();
        (b, a)
    }

    #[test]
    fn stats_emits_valid_prometheus_and_json() {
        let (b, a) = generated_pair("csj_cli_stats_test", 1);
        let prom = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Prometheus,
        })
        .unwrap();
        assert!(prom.contains("# TYPE csj_joins_total counter"), "{prom}");
        assert!(prom.contains("# TYPE csj_join_latency_seconds histogram"));
        assert!(prom.contains("csj_queries_total{kind=\"pairs_above\"} 1"));
        assert!(prom.contains("csj_communities 2"));
        assert!(prom.contains("le=\"+Inf\""));

        let json = execute(Command::Stats {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Json,
        })
        .unwrap();
        let _parsed: serde_json::Value =
            serde_json::from_str(&json).expect("stats --format json emits valid JSON");

        let text = execute(Command::Stats {
            communities: vec![b, a],
            eps: 1,
            threshold: 0.0,
            format: StatsFormat::Text,
        })
        .unwrap();
        assert!(text.contains("communities:"), "{text}");
        assert!(text.contains("rows driven"), "{text}");
    }

    #[test]
    fn trace_reproduces_an_exhausted_query() {
        let (b, a) = generated_pair("csj_cli_trace_test", 2);
        let json = execute(Command::Trace {
            communities: vec![b.clone(), a.clone()],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: Some(0),
            last: 1,
            json: true,
        })
        .unwrap();
        assert!(json.contains("\"kind\":\"top_k\""), "{json}");
        assert!(json.contains("exhausted:max-joins"), "{json}");
        let _parsed: serde_json::Value =
            serde_json::from_str(&json).expect("trace --json emits valid JSON");
        assert!(json.trim_end().starts_with('[') && json.trim_end().ends_with(']'));

        let text = execute(Command::Trace {
            communities: vec![b, a],
            eps: 1,
            k: 3,
            deadline_ms: None,
            max_joins: None,
            last: 1,
            json: false,
        })
        .unwrap();
        assert!(text.contains("top_k outcome=completed"), "{text}");
        assert!(text.contains("screen"), "{text}");
        assert!(text.contains("join"), "{text}");
    }

    #[test]
    fn load_reports_missing_file() {
        let err = execute(Command::Info {
            path: PathBuf::from("/nonexistent/x.csjb"),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
