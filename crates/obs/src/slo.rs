//! Declarative SLOs evaluated into multi-window burn rates.
//!
//! An [`Objective`] names a *bad-event fraction* and its budget: "no
//! more than 1% of requests slower than 25 ms", "no more than 5% of
//! completed requests degraded". Sources are the existing `csj_*`
//! series — a latency histogram split at a threshold bound, or a
//! bad/total counter pair — so the engine adds no new hot-path
//! instrumentation; it is a pure consumer of [`MetricsSnapshot`]s.
//!
//! [`SloEngine::observe`] appends cumulative `(bad, total)` samples on
//! a caller-supplied microsecond clock (the flight-recorder clock in
//! the engine, a test counter in unit tests — never wall time, so the
//! math is deterministic). [`SloEngine::evaluate`] then computes, per
//! objective and per [`WindowSpec`], the windowed delta and its **burn
//! rate**: `bad_fraction / target`. A burn rate of 1.0 consumes the
//! error budget exactly as fast as allowed; above 1.0 the objective is
//! breached. Results surface three ways: `csj_slo_*` gauges (a private
//! registry whose snapshot callers concatenate into the engine
//! exposition), [`SloStatus`] values for CLI rendering, and an
//! evaluation [`Span`] so SLO state rides the trace stream.
//!
//! ## Window semantics
//!
//! Samples are cumulative. For a window of length `L` evaluated at
//! `now`, the baseline is the newest sample with `at_us <= now - L`
//! (a sample exactly on the edge belongs to the baseline, not the
//! window). When no sample is that old — engine younger than the
//! window — the oldest retained sample serves as baseline, i.e. the
//! window is clipped to the engine's lifetime. A window that saw no
//! traffic (`total` delta 0) burns nothing: fraction and rate are 0,
//! never NaN.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::metrics::{FloatGauge, Gauge, MetricsRegistry, MetricsSnapshot, SampleValue};
use crate::span::Span;

/// Selects counter (or integer gauge) series by name plus a label
/// subset; matching series are summed. An empty label list sums every
/// series of that name (e.g. all `outcome` values of
/// `csj_service_completed_total`).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSelector {
    /// Metric name to match.
    pub name: String,
    /// Label pairs every matched series must carry.
    pub labels: Vec<(String, String)>,
}

impl CounterSelector {
    /// Select `name` series carrying every pair in `labels`.
    pub fn new(name: impl Into<String>, labels: &[(&str, &str)]) -> Self {
        Self {
            name: name.into(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn matches(&self, sample_name: &str, sample_labels: &[(&'static str, String)]) -> bool {
        sample_name == self.name
            && self
                .labels
                .iter()
                .all(|(k, v)| sample_labels.iter().any(|(sk, sv)| sk == k && sv == v))
    }

    fn sum(&self, snap: &MetricsSnapshot) -> f64 {
        snap.metrics
            .iter()
            .filter(|m| self.matches(m.name, &m.labels))
            .map(|m| match &m.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => *v as f64,
                SampleValue::GaugeF64(v) => *v,
                SampleValue::Histogram { count, .. } => *count as f64,
            })
            .sum()
    }
}

/// Where an objective's cumulative `(bad, total)` pair comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSource {
    /// `bad` = observations strictly above `threshold_us` across every
    /// matching histogram series; `total` = their combined count. The
    /// threshold should sit on a bucket bound (the split is exact
    /// there; between bounds it rounds up to the next bound).
    LatencyAbove {
        /// Histogram metric name (e.g. `csj_service_request_seconds`).
        histogram: String,
        /// Label subset the series must carry (empty = all series).
        labels: Vec<(String, String)>,
        /// Bad-event threshold, microseconds.
        threshold_us: u64,
    },
    /// `bad` and `total` are counter sums (e.g. shed vs submitted).
    CounterFraction {
        /// Counter selector for bad events.
        bad: CounterSelector,
        /// Counter selector for all events.
        total: CounterSelector,
    },
}

impl SloSource {
    fn extract(&self, snap: &MetricsSnapshot) -> (f64, f64) {
        match self {
            SloSource::LatencyAbove {
                histogram,
                labels,
                threshold_us,
            } => {
                let selector = CounterSelector {
                    name: histogram.clone(),
                    labels: labels.clone(),
                };
                let mut bad = 0.0;
                let mut total = 0.0;
                for m in &snap.metrics {
                    if !selector.matches(m.name, &m.labels) {
                        continue;
                    }
                    if let SampleValue::Histogram {
                        bounds_us,
                        buckets,
                        count,
                        ..
                    } = &m.value
                    {
                        total += *count as f64;
                        let within: u64 = bounds_us
                            .iter()
                            .zip(buckets.iter())
                            .filter(|(b, _)| **b <= *threshold_us)
                            .map(|(_, c)| *c)
                            .sum();
                        bad += count.saturating_sub(within) as f64;
                    }
                }
                (bad, total)
            }
            SloSource::CounterFraction { bad, total } => (bad.sum(snap), total.sum(snap)),
        }
    }
}

/// One service-level objective: a named bad-event fraction with a
/// budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Objective name, used as the `objective` label of every
    /// `csj_slo_*` series (e.g. `request_latency`, `shed_fraction`).
    pub name: String,
    /// Maximum tolerated bad-event fraction in (0, 1], e.g. 0.01 for a
    /// 99% objective.
    pub target: f64,
    /// Where `(bad, total)` comes from.
    pub source: SloSource,
}

/// One burn-rate evaluation window on the observation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window name, used as the `window` label (e.g. `5m`).
    pub name: &'static str,
    /// Window length, microseconds.
    pub len_us: u64,
}

/// The conventional fast/slow burn-rate pair: 5 minutes and 1 hour.
pub fn default_windows() -> Vec<WindowSpec> {
    vec![
        WindowSpec {
            name: "5m",
            len_us: 300_000_000,
        },
        WindowSpec {
            name: "1h",
            len_us: 3_600_000_000,
        },
    ]
}

/// One `(objective, window)` evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub objective: String,
    /// Window name.
    pub window: &'static str,
    /// Window length, microseconds.
    pub window_us: u64,
    /// The objective's bad-fraction budget.
    pub target: f64,
    /// Bad events in the window (cumulative delta).
    pub bad: f64,
    /// Total events in the window (cumulative delta).
    pub total: f64,
    /// `bad / total`, or 0 for a zero-traffic window.
    pub bad_fraction: f64,
    /// `bad_fraction / target`: 1.0 consumes the budget exactly as fast
    /// as allowed.
    pub burn_rate: f64,
    /// `burn_rate > 1.0`.
    pub breached: bool,
}

impl std::fmt::Display for SloStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: burn {:.3} (bad {:.0}/{:.0} = {:.5}, target {:.5}){}",
            self.objective,
            self.window,
            self.burn_rate,
            self.bad,
            self.total,
            self.bad_fraction,
            self.target,
            if self.breached { " BREACHED" } else { "" }
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct SamplePoint {
    at_us: u64,
    bad: f64,
    total: f64,
}

struct WindowGauges {
    bad_fraction: Arc<FloatGauge>,
    burn_rate: Arc<FloatGauge>,
    breached: Arc<Gauge>,
}

struct ObjectiveState {
    objective: Objective,
    history: VecDeque<SamplePoint>,
    windows: Vec<WindowGauges>,
}

/// Evaluates a fixed set of [`Objective`]s over snapshots sampled on a
/// caller-supplied clock, exporting `csj_slo_*` gauges.
pub struct SloEngine {
    registry: MetricsRegistry,
    windows: Vec<WindowSpec>,
    max_window_us: u64,
    state: Mutex<Vec<ObjectiveState>>,
}

impl SloEngine {
    /// An engine evaluating `objectives` over `windows`. Gauges for
    /// every `(objective, window)` pair are registered up front so the
    /// exposition surface is stable from the first scrape.
    pub fn new(objectives: Vec<Objective>, windows: Vec<WindowSpec>) -> Self {
        let registry = MetricsRegistry::new();
        let max_window_us = windows.iter().map(|w| w.len_us).max().unwrap_or(0);
        let state = objectives
            .into_iter()
            .map(|objective| {
                registry
                    .float_gauge(
                        "csj_slo_target",
                        "Bad-event fraction budget of the objective.",
                        vec![("objective", objective.name.clone())],
                    )
                    .set(objective.target);
                let window_gauges = windows
                    .iter()
                    .map(|w| WindowGauges {
                        bad_fraction: registry.float_gauge(
                            "csj_slo_bad_fraction",
                            "Bad-event fraction over the window.",
                            vec![
                                ("objective", objective.name.clone()),
                                ("window", w.name.to_string()),
                            ],
                        ),
                        burn_rate: registry.float_gauge(
                            "csj_slo_burn_rate",
                            "Error-budget burn rate over the window (1.0 = budget consumed exactly at the allowed rate).",
                            vec![
                                ("objective", objective.name.clone()),
                                ("window", w.name.to_string()),
                            ],
                        ),
                        breached: registry.gauge(
                            "csj_slo_breached",
                            "1 when the window's burn rate exceeds 1.0.",
                            vec![
                                ("objective", objective.name.clone()),
                                ("window", w.name.to_string()),
                            ],
                        ),
                    })
                    .collect();
                ObjectiveState {
                    objective,
                    history: VecDeque::new(),
                    windows: window_gauges,
                }
            })
            .collect();
        Self {
            registry,
            windows,
            max_window_us,
            state: Mutex::new(state),
        }
    }

    /// The configured windows.
    pub fn windows(&self) -> &[WindowSpec] {
        &self.windows
    }

    /// Sample `snap` at time `now_us` (cumulative counters; `now_us`
    /// must be monotone across calls — later samples with earlier
    /// timestamps are dropped).
    pub fn observe(&self, now_us: u64, snap: &MetricsSnapshot) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for os in state.iter_mut() {
            if os.history.back().is_some_and(|last| last.at_us > now_us) {
                continue;
            }
            let (bad, total) = os.objective.source.extract(snap);
            os.history.push_back(SamplePoint {
                at_us: now_us,
                bad,
                total,
            });
            // Keep one sample at or beyond every window's edge so the
            // baseline lookup still has something to anchor on.
            let horizon = now_us.saturating_sub(self.max_window_us);
            while os.history.len() >= 2 && os.history[1].at_us <= horizon {
                os.history.pop_front();
            }
        }
    }

    /// Evaluate every `(objective, window)` pair at `now_us`, update
    /// the `csj_slo_*` gauges, and return the statuses in registration
    /// order.
    pub fn evaluate(&self, now_us: u64) -> Vec<SloStatus> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(state.len() * self.windows.len());
        for os in state.iter() {
            let latest = os.history.back().copied();
            for (w, gauges) in self.windows.iter().zip(os.windows.iter()) {
                let start = now_us.saturating_sub(w.len_us);
                // Newest sample at or before the window start; a sample
                // exactly on the edge is the baseline. Fall back to the
                // oldest sample when the engine is younger than the
                // window.
                let baseline = os
                    .history
                    .iter()
                    .rev()
                    .find(|s| s.at_us <= start)
                    .or_else(|| os.history.front())
                    .copied();
                let (bad, total) = match (baseline, latest) {
                    (Some(b), Some(l)) if l.at_us > b.at_us => {
                        ((l.bad - b.bad).max(0.0), (l.total - b.total).max(0.0))
                    }
                    // One sample (or none): no delta yet. The first
                    // observation is the baseline, not traffic.
                    _ => (0.0, 0.0),
                };
                let bad_fraction = if total > 0.0 { bad / total } else { 0.0 };
                let target = os.objective.target;
                let burn_rate = if target > 0.0 {
                    bad_fraction / target
                } else if bad_fraction > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let breached = burn_rate > 1.0;
                gauges.bad_fraction.set(bad_fraction);
                gauges.burn_rate.set(burn_rate);
                gauges.breached.set(u64::from(breached));
                out.push(SloStatus {
                    objective: os.objective.name.clone(),
                    window: w.name,
                    window_us: w.len_us,
                    target,
                    bad,
                    total,
                    bad_fraction,
                    burn_rate,
                    breached,
                });
            }
        }
        out
    }

    /// Snapshot of the `csj_slo_*` gauges, for concatenation into the
    /// engine/service exposition.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// An `slo` span carrying one child per `(objective, window)` with
    /// the evaluation as attributes, so SLO state rides the trace
    /// stream next to the queries it judges.
    pub fn evaluation_span(now_us: u64, statuses: &[SloStatus]) -> Span {
        let mut root = Span::new("slo")
            .at(now_us, 0)
            .attr("objectives", statuses.len());
        for s in statuses {
            root.push_child(
                Span::new("objective")
                    .at(now_us, 0)
                    .attr("objective", s.objective.clone())
                    .attr("window", s.window)
                    .attr("target", s.target)
                    .attr("bad_fraction", s.bad_fraction)
                    .attr("burn_rate", s.burn_rate)
                    .attr("breached", u64::from(s.breached)),
            );
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000;

    fn fraction_objective(target: f64) -> Objective {
        Objective {
            name: "shed_fraction".into(),
            target,
            source: SloSource::CounterFraction {
                bad: CounterSelector::new("t_bad_total", &[]),
                total: CounterSelector::new("t_total", &[]),
            },
        }
    }

    fn windows(len_us: u64) -> Vec<WindowSpec> {
        vec![WindowSpec { name: "w", len_us }]
    }

    /// Registry with a bad/total counter pair the tests advance.
    fn feed() -> (MetricsRegistry, Arc<Gauge>, Arc<Gauge>) {
        let reg = MetricsRegistry::new();
        // Gauges (set-able) standing in for cumulative counters.
        let bad = reg.gauge("t_bad_total", "bad", vec![]);
        let total = reg.gauge("t_total", "total", vec![]);
        (reg, bad, total)
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_target() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.01)], windows(100 * MS));
        slo.observe(0, &reg.snapshot());
        bad.set(2);
        total.set(100);
        slo.observe(50 * MS, &reg.snapshot());
        let s = &slo.evaluate(50 * MS)[0];
        assert_eq!((s.bad, s.total), (2.0, 100.0));
        assert!((s.bad_fraction - 0.02).abs() < 1e-12);
        assert!((s.burn_rate - 2.0).abs() < 1e-12);
        assert!(s.breached);
        // Gauges mirror the status.
        let snap = slo.snapshot();
        assert!(
            (snap.gauge_f64_value("csj_slo_burn_rate", &[("objective", "shed_fraction")]) - 2.0)
                .abs()
                < 1e-12
        );
        assert_eq!(
            snap.counter_value(
                "csj_slo_breached",
                &[("objective", "shed_fraction"), ("window", "w")]
            ),
            1
        );
        assert!(
            (snap.gauge_f64_value("csj_slo_target", &[("objective", "shed_fraction")]) - 0.01)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn budget_exactly_exhausted_is_not_a_breach() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.05)], windows(100 * MS));
        slo.observe(0, &reg.snapshot());
        bad.set(5);
        total.set(100);
        slo.observe(10 * MS, &reg.snapshot());
        let s = &slo.evaluate(10 * MS)[0];
        assert!((s.burn_rate - 1.0).abs() < 1e-12, "{s:?}");
        assert!(!s.breached, "burn == 1.0 spends the budget exactly");
    }

    #[test]
    fn zero_traffic_window_burns_nothing() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.01)], windows(10 * MS));
        bad.set(50);
        total.set(100);
        // Activity happened before the window under evaluation; inside
        // it the counters never move.
        slo.observe(0, &reg.snapshot());
        slo.observe(5 * MS, &reg.snapshot());
        slo.observe(100 * MS, &reg.snapshot());
        let s = &slo.evaluate(100 * MS)[0];
        assert_eq!((s.bad, s.total), (0.0, 0.0));
        assert_eq!(s.bad_fraction, 0.0);
        assert_eq!(s.burn_rate, 0.0, "no NaN, no phantom burn");
        assert!(!s.breached);
    }

    #[test]
    fn window_edge_sample_is_the_baseline() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.5)], windows(10 * MS));
        slo.observe(0, &reg.snapshot());
        bad.set(1);
        total.set(10);
        // Exactly on the edge of the window evaluated at t=20ms.
        slo.observe(10 * MS, &reg.snapshot());
        bad.set(3);
        total.set(20);
        slo.observe(20 * MS, &reg.snapshot());
        let s = &slo.evaluate(20 * MS)[0];
        // Delta vs the edge sample, not vs t=0.
        assert_eq!((s.bad, s.total), (2.0, 10.0));
        assert!((s.bad_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn partial_window_clips_to_engine_lifetime() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.5)], windows(3_600_000 * MS));
        slo.observe(0, &reg.snapshot());
        bad.set(4);
        total.set(8);
        slo.observe(10 * MS, &reg.snapshot());
        let s = &slo.evaluate(10 * MS)[0];
        assert_eq!((s.bad, s.total), (4.0, 8.0));
        assert!((s.burn_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_yields_no_delta() {
        let (reg, bad, total) = feed();
        bad.set(7);
        total.set(9);
        let slo = SloEngine::new(vec![fraction_objective(0.1)], windows(10 * MS));
        slo.observe(5 * MS, &reg.snapshot());
        let s = &slo.evaluate(5 * MS)[0];
        assert_eq!(
            (s.bad, s.total),
            (0.0, 0.0),
            "pre-existing totals are the baseline, not traffic"
        );
    }

    #[test]
    fn history_prunes_but_keeps_a_baseline() {
        let (reg, _bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.1)], windows(10 * MS));
        for t in 0..100u64 {
            total.set(t);
            slo.observe(t * MS, &reg.snapshot());
        }
        let state = slo.state.lock().unwrap();
        let h = &state[0].history;
        assert!(h.len() <= 13, "history stays bounded, got {}", h.len());
        // One sample at or beyond the 10ms window edge survives.
        assert!(h.front().unwrap().at_us <= 89 * MS);
    }

    #[test]
    fn latency_above_splits_at_the_bound_and_sums_series() {
        let reg = MetricsRegistry::new();
        let fast = reg.latency("t_req_seconds", "req", vec![("kind", "similarity".into())]);
        let slow = reg.latency("t_req_seconds", "req", vec![("kind", "top_k".into())]);
        let slo = SloEngine::new(
            vec![Objective {
                name: "request_latency".into(),
                target: 0.25,
                source: SloSource::LatencyAbove {
                    histogram: "t_req_seconds".into(),
                    labels: vec![],
                    threshold_us: 25_000,
                },
            }],
            windows(100 * MS),
        );
        slo.observe(0, &reg.snapshot());
        fast.observe_us(100); // good
        fast.observe_us(25_000); // on the bound: good (<= threshold)
        slow.observe_us(25_001); // bad
        slow.observe_us(90_000); // bad
        slo.observe(10 * MS, &reg.snapshot());
        let s = &slo.evaluate(10 * MS)[0];
        assert_eq!((s.bad, s.total), (2.0, 4.0));
        assert!((s.bad_fraction - 0.5).abs() < 1e-12);
        assert!((s.burn_rate - 2.0).abs() < 1e-12);
        assert!(s.breached);
    }

    #[test]
    fn multi_window_statuses_and_exposition() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(
            vec![fraction_objective(0.1)],
            vec![
                WindowSpec {
                    name: "fast",
                    len_us: 10 * MS,
                },
                WindowSpec {
                    name: "slow",
                    len_us: 1000 * MS,
                },
            ],
        );
        slo.observe(0, &reg.snapshot());
        bad.set(10);
        total.set(50);
        slo.observe(95 * MS, &reg.snapshot());
        bad.set(10);
        total.set(60);
        slo.observe(105 * MS, &reg.snapshot());
        let statuses = slo.evaluate(105 * MS);
        assert_eq!(statuses.len(), 2);
        let fast = statuses.iter().find(|s| s.window == "fast").unwrap();
        let slow = statuses.iter().find(|s| s.window == "slow").unwrap();
        // The fast window only saw the last (clean) 10 requests.
        assert_eq!((fast.bad, fast.total), (0.0, 10.0));
        assert!(!fast.breached);
        // The slow window saw everything.
        assert_eq!((slow.bad, slow.total), (10.0, 60.0));
        assert!(slow.breached);
        let text = slo.snapshot().to_prometheus();
        assert!(text.contains("# TYPE csj_slo_burn_rate gauge"), "{text}");
        assert!(text.contains("# TYPE csj_slo_bad_fraction gauge"), "{text}");
        assert!(text.contains("# TYPE csj_slo_breached gauge"), "{text}");
        assert!(text.contains("# TYPE csj_slo_target gauge"), "{text}");
        assert!(
            text.contains("csj_slo_burn_rate{objective=\"shed_fraction\",window=\"fast\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn evaluation_span_carries_statuses() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.01)], windows(10 * MS));
        slo.observe(0, &reg.snapshot());
        bad.set(1);
        total.set(2);
        slo.observe(5 * MS, &reg.snapshot());
        let statuses = slo.evaluate(5 * MS);
        let span = SloEngine::evaluation_span(5 * MS, &statuses);
        assert_eq!(span.name, "slo");
        assert_eq!(span.children.len(), 1);
        let child = &span.children[0];
        assert_eq!(
            child.get_attr("objective"),
            Some(&crate::span::AttrValue::Str("shed_fraction".into()))
        );
        assert_eq!(
            child.get_attr("breached"),
            Some(&crate::span::AttrValue::U64(1))
        );
    }

    #[test]
    fn out_of_order_observations_are_dropped() {
        let (reg, bad, total) = feed();
        let slo = SloEngine::new(vec![fraction_objective(0.1)], windows(100 * MS));
        slo.observe(50 * MS, &reg.snapshot());
        bad.set(90);
        total.set(90);
        slo.observe(10 * MS, &reg.snapshot()); // stale clock: ignored
        bad.set(1);
        total.set(10);
        slo.observe(60 * MS, &reg.snapshot());
        let s = &slo.evaluate(60 * MS)[0];
        assert_eq!((s.bad, s.total), (1.0, 10.0));
    }
}
