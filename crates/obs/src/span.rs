//! Hierarchical query spans.
//!
//! A [`Span`] is one timed region of a query with typed attributes and
//! child spans; a [`QueryTrace`] is the completed span tree of one
//! engine query plus its outcome. Offsets are microseconds from the
//! query's start, so a trace is self-contained and serialisable without
//! any wall-clock anchor (the flight recorder stamps the trace with a
//! sequence id instead).

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (sizes, counts).
    U64(u64),
    /// Floating point (ratios, seconds).
    F64(f64),
    /// Free-form text (method names, outcome labels).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Str(v) => f.write_str(v),
        }
    }
}

/// Escape a string for inclusion in a JSON string literal (quotes not
/// included). Handles the two characters that must always be escaped
/// plus control characters; everything else passes through as UTF-8.
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One timed region of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Region name: `query`, `screen`, `refine`, `sweep`, `join`,
    /// `setup`, `pairing`, `matching`.
    pub name: &'static str,
    /// Start offset from the query start, microseconds.
    pub start_us: u64,
    /// Span duration, microseconds.
    pub elapsed_us: u64,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Child spans, in start order.
    pub children: Vec<Span>,
}

impl Span {
    /// A zero-length span at offset 0; set timing with
    /// [`Span::at`] / attach data with [`Span::attr`].
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            start_us: 0,
            elapsed_us: 0,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: set the span's timing.
    pub fn at(mut self, start_us: u64, elapsed_us: u64) -> Self {
        self.start_us = start_us;
        self.elapsed_us = elapsed_us;
        self
    }

    /// Builder-style: attach an attribute.
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        self.attrs.push((key, value.into()));
        self
    }

    /// Attach a child span.
    pub fn push_child(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Look up an attribute by key.
    pub fn get_attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first descendant (or self) named
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total number of spans in this subtree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Append this span's JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"start_us\":{},\"elapsed_us\":{}",
            self.name, self.start_us, self.elapsed_us
        );
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                match v {
                    AttrValue::U64(n) => {
                        let _ = write!(out, "{n}");
                    }
                    AttrValue::F64(x) if x.is_finite() => {
                        let _ = write!(out, "{x}");
                    }
                    // JSON has no NaN/Inf; stringify the rare pathological value.
                    AttrValue::F64(x) => {
                        let _ = write!(out, "\"{x}\"");
                    }
                    AttrValue::Str(s) => {
                        out.push('"');
                        escape_json(s, out);
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_json(out);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Append an indented human-readable rendering to `out`.
    pub fn write_text(&self, out: &mut String, indent: usize) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{:indent$}{} {:.3} ms",
            "",
            self.name,
            self.elapsed_us as f64 / 1000.0,
            indent = indent
        );
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.write_text(out, indent + 2);
        }
    }
}

/// The completed span tree of one engine query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Monotone sequence id assigned by the flight recorder.
    pub id: u64,
    /// Query kind: `similarity`, `screen`, `screen_and_refine`, `top_k`,
    /// `pairs_above`.
    pub kind: &'static str,
    /// Outcome label: `completed`, `exhausted:<reason>`, or
    /// `failed:<error>`.
    pub outcome: String,
    /// The root `query` span.
    pub root: Span,
}

impl QueryTrace {
    /// Render the trace as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut outcome = String::new();
        escape_json(&self.outcome, &mut outcome);
        out.push_str(&format!(
            "{{\"id\":{},\"kind\":\"{}\",\"outcome\":\"{}\",\"root\":",
            self.id, self.kind, outcome
        ));
        self.root.write_json(&mut out);
        out.push('}');
        out
    }

    /// Render the trace as an indented text tree.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "trace #{} {} outcome={}\n",
            self.id, self.kind, self.outcome
        );
        self.root.write_text(&mut out, 2);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        let mut root = Span::new("query").at(0, 1000).attr("k", 3u64);
        let mut screen = Span::new("screen").at(10, 600);
        screen.push_child(
            Span::new("join")
                .at(20, 100)
                .attr("method", "ap-minmax")
                .attr("b_size", 4u64),
        );
        root.push_child(screen);
        QueryTrace {
            id: 7,
            kind: "top_k",
            outcome: "completed".into(),
            root,
        }
    }

    #[test]
    fn find_walks_depth_first() {
        let t = sample_trace();
        assert!(t.root.find("join").is_some());
        assert!(t.root.find("query").is_some());
        assert!(t.root.find("refine").is_none());
        assert_eq!(t.root.span_count(), 3);
        assert_eq!(
            t.root.find("join").unwrap().get_attr("method"),
            Some(&AttrValue::Str("ap-minmax".into()))
        );
    }

    #[test]
    fn json_is_well_formed_and_nested() {
        let json = sample_trace().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"kind\":\"top_k\""), "{json}");
        assert!(json.contains("\"children\":["), "{json}");
        assert!(json.contains("\"method\":\"ap-minmax\""), "{json}");
        // Balanced braces/brackets (no quoting in this sample).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
        let trace = QueryTrace {
            id: 1,
            kind: "similarity",
            outcome: "failed:panic \"boom\"".into(),
            root: Span::new("query").attr("note", "tab\there"),
        };
        let json = trace.to_json();
        assert!(json.contains("failed:panic \\\"boom\\\""), "{json}");
        assert!(json.contains("tab\\there"), "{json}");
    }

    #[test]
    fn text_rendering_indents_children() {
        let text = sample_trace().to_text();
        assert!(text.contains("trace #7 top_k outcome=completed"));
        assert!(text.contains("\n  query"));
        assert!(text.contains("\n    screen"));
        assert!(text.contains("\n      join"));
        assert!(text.contains("method=ap-minmax"));
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(0.5f64), AttrValue::F64(0.5));
        assert_eq!(AttrValue::from("x").to_string(), "x");
        assert_eq!(AttrValue::U64(9).to_string(), "9");
    }

    #[test]
    fn nonfinite_float_attrs_stay_valid_json() {
        let span = Span::new("query").attr("ratio", f64::NAN);
        let mut out = String::new();
        span.write_json(&mut out);
        assert!(out.contains("\"ratio\":\"NaN\""), "{out}");
    }
}
