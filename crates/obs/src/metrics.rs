//! Metrics registry: named counters, gauges and histograms with
//! Prometheus text-format and JSON exposition.
//!
//! Hot-path instruments ([`Counter`], [`Gauge`], [`LatencyHistogram`])
//! are plain atomics — safe to hammer from the parallel screening
//! workers without coordination. [`LogHistogramCell`] wraps
//! `csj_core::telemetry::LogHistogram` in a mutex because it is merged
//! per join (coarse granularity), not per observation.
//!
//! Metric names follow Prometheus conventions (`csj_*`, `_total`
//! suffix on counters); labels are fixed at registration so exposition
//! is a pure read of the registry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use csj_core::telemetry::{LogHistogram, HISTOGRAM_BUCKETS};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge (the f64 bits live in an
/// `AtomicU64`), for fractional series like SLO burn rates where an
/// integer gauge would round everything interesting away.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed upper bounds (microseconds) for join/query latency
/// histograms: 50µs … 10s. Joins on paper-scale communities span five
/// orders of magnitude depending on method and eps, hence the wide,
/// roughly-logarithmic ladder.
pub const LATENCY_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 1_000_000, 10_000_000,
];

/// Fixed-boundary latency histogram (cumulative-on-read, atomic
/// per-bucket counts). Bucket `i` counts observations `<= bounds[i]`;
/// the final implicit bucket is `+Inf`.
#[derive(Debug)]
pub struct LatencyHistogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    // Per-bucket exemplar slot: the trace id of the last observation
    // that landed in the bucket (0 = none). Links a hot bucket back to
    // a concrete flight-recorder / slow-query-log record.
    exemplars: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl LatencyHistogram {
    /// A histogram over [`LATENCY_BOUNDS_US`].
    pub fn new() -> Self {
        Self::with_bounds(&LATENCY_BOUNDS_US)
    }

    /// A histogram over caller-provided ascending bounds.
    pub fn with_bounds(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Self {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation in microseconds.
    pub fn observe_us(&self, us: u64) {
        let idx = self.bounds.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation and stamp the bucket's exemplar slot with
    /// `trace_id` (last writer wins; 0 means "no exemplar" and is
    /// ignored), so a hot bucket can be traced back to a concrete
    /// query record.
    pub fn observe_us_with_exemplar(&self, us: u64, trace_id: u64) {
        let idx = self.bounds.partition_point(|&b| b < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[idx].store(trace_id, Ordering::Relaxed);
        }
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one observation from a [`std::time::Duration`].
    pub fn observe(&self, elapsed: std::time::Duration) {
        self.observe_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, one per bound plus the
    /// trailing `+Inf` bucket.
    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Per-bucket exemplar trace ids (0 = no exemplar recorded), or an
    /// empty vector when no exemplar was ever stamped.
    fn bucket_exemplars(&self) -> Vec<u64> {
        let ex: Vec<u64> = self
            .exemplars
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .collect();
        if ex.iter().all(|&id| id == 0) {
            Vec::new()
        } else {
            ex
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A mergeable cell around `csj_core`'s [`LogHistogram`], for depth
/// distributions that the kernel already aggregates per join. The sum
/// is tracked separately (the log histogram only keeps bucket counts)
/// so Prometheus `_sum` stays meaningful.
#[derive(Debug, Default)]
pub struct LogHistogramCell {
    hist: Mutex<LogHistogram>,
    sum: AtomicU64,
}

impl LogHistogramCell {
    /// Fold a per-join histogram (and the corresponding sum of its
    /// observations) into the cell. Recovers from a poisoned lock: the
    /// histogram is plain-old-data, so a panicked holder cannot leave it
    /// half-updated in a way that matters more than a lost sample.
    pub fn merge(&self, other: &LogHistogram, sum_delta: u64) {
        self.hist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge(other);
        self.sum.fetch_add(sum_delta, Ordering::Relaxed);
    }

    /// Copy out the current histogram.
    pub fn load(&self) -> LogHistogram {
        *self.hist.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sum of all merged observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    GaugeF64(Arc<FloatGauge>),
    Latency(Arc<LatencyHistogram>),
    LogHist(Arc<LogHistogramCell>),
}

struct MetricEntry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    instrument: Instrument,
}

/// Registry of named instruments. Registration order is preserved in
/// every snapshot; multiple entries may share a metric name with
/// different labels (one time series each), in which case `# HELP` /
/// `# TYPE` headers are emitted once per name.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<MetricEntry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, entry: MetricEntry) {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(entry);
    }

    /// Register a counter time series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Counter> {
        let c = Arc::new(Counter::default());
        self.register(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register a gauge time series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Gauge> {
        let g = Arc::new(Gauge::default());
        self.register(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register a floating-point gauge time series (renders as a
    /// Prometheus gauge).
    pub fn float_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<FloatGauge> {
        let g = Arc::new(FloatGauge::default());
        self.register(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::GaugeF64(Arc::clone(&g)),
        });
        g
    }

    /// Register a fixed-boundary latency histogram time series.
    pub fn latency(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<LatencyHistogram> {
        let h = Arc::new(LatencyHistogram::new());
        self.register(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Latency(Arc::clone(&h)),
        });
        h
    }

    /// Register a log2-bucket histogram time series (depth
    /// distributions merged from `JoinTelemetry`).
    pub fn log_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<LogHistogramCell> {
        let h = Arc::new(LogHistogramCell::default());
        self.register(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::LogHist(Arc::clone(&h)),
        });
        h
    }

    /// A point-in-time copy of every registered time series. Like every
    /// registry operation this recovers from a poisoned lock, so one
    /// panicked worker can never cascade a stats panic into every later
    /// scrape.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            metrics: entries
                .iter()
                .map(|e| MetricSample {
                    name: e.name,
                    help: e.help,
                    labels: e.labels.clone(),
                    value: match &e.instrument {
                        Instrument::Counter(c) => SampleValue::Counter(c.get()),
                        Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                        Instrument::GaugeF64(g) => SampleValue::GaugeF64(g.get()),
                        Instrument::Latency(h) => SampleValue::Histogram {
                            bounds_us: h.bounds.to_vec(),
                            buckets: h.bucket_counts(),
                            exemplars: h.bucket_exemplars(),
                            sum_us: h.sum_us(),
                            count: h.count(),
                        },
                        Instrument::LogHist(h) => {
                            let hist = h.load();
                            SampleValue::Histogram {
                                bounds_us: log_bucket_bounds(),
                                buckets: (0..HISTOGRAM_BUCKETS).map(|i| hist.bucket(i)).collect(),
                                exemplars: Vec::new(),
                                sum_us: h.sum(),
                                count: hist.count(),
                            }
                        }
                    },
                })
                .collect(),
        }
    }
}

/// Upper bounds for the log2 histogram's Prometheus rendering: bucket
/// 0 holds zeros (`le="0"`), bucket k (1 <= k <= 14) holds values in
/// `[2^(k-1), 2^k)` i.e. `le = 2^k - 1`, and the last bucket is open
/// (`+Inf`, not listed here).
fn log_bucket_bounds() -> Vec<u64> {
    let mut bounds = vec![0u64];
    bounds.extend((1..HISTOGRAM_BUCKETS - 1).map(|k| (1u64 << k) - 1));
    bounds
}

/// One time series captured by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (`csj_*`).
    pub name: &'static str,
    /// Prometheus `# HELP` text.
    pub help: &'static str,
    /// Fixed label set, e.g. `[("method", "ap-minmax")]`.
    pub labels: Vec<(&'static str, String)>,
    /// The captured value.
    pub value: SampleValue,
}

/// Captured value of one time series.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone counter.
    Counter(u64),
    /// Gauge.
    Gauge(u64),
    /// Floating-point gauge (SLO burn rates, fractions).
    GaugeF64(f64),
    /// Histogram: non-cumulative `buckets` (one per bound plus a final
    /// `+Inf` bucket), plus sum/count. `bounds_us` are microseconds for
    /// latency series and raw values for depth series.
    Histogram {
        /// Upper bounds, ascending; one fewer than `buckets`.
        bounds_us: Vec<u64>,
        /// Per-bucket counts (not cumulative).
        buckets: Vec<u64>,
        /// Per-bucket exemplar trace ids (0 = none); empty when the
        /// instrument never recorded an exemplar. JSON-only — the
        /// Prometheus 0.0.4 text format has no exemplar syntax.
        exemplars: Vec<u64>,
        /// Sum of all observations.
        sum_us: u64,
        /// Total observations.
        count: u64,
    },
}

/// Point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All time series, in registration order.
    pub metrics: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Find the first sample named `name` whose labels include every
    /// pair in `labels`.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| {
            m.name == name
                && labels
                    .iter()
                    .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
        })
    }

    /// Convenience: counter value of `find(name, labels)`, or 0 when
    /// the series is absent.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.find(name, labels).map(|m| &m.value) {
            Some(SampleValue::Counter(v)) | Some(SampleValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: floating-point gauge value of `find(name, labels)`,
    /// or 0.0 when the series is absent (integer series are widened).
    pub fn gauge_f64_value(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.find(name, labels).map(|m| &m.value) {
            Some(SampleValue::GaugeF64(v)) => *v,
            Some(SampleValue::Counter(v)) | Some(SampleValue::Gauge(v)) => *v as f64,
            _ => 0.0,
        }
    }

    /// Render the snapshot in Prometheus text exposition format
    /// (version 0.0.4). Histogram `le` bounds and `_sum` are emitted in
    /// seconds for `*_seconds` metrics and raw units otherwise.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        let mut last_name = "";
        for m in &self.metrics {
            if m.name != last_name {
                let kind = match m.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) | SampleValue::GaugeF64(_) => "gauge",
                    SampleValue::Histogram { .. } => "histogram",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_name = m.name;
            }
            let seconds = m.name.ends_with("_seconds");
            match &m.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&m.labels, &[]), v);
                }
                SampleValue::GaugeF64(v) => {
                    // Prometheus accepts NaN/Inf sample values verbatim.
                    let _ = writeln!(out, "{}{} {}", m.name, prom_labels(&m.labels, &[]), v);
                }
                SampleValue::Histogram {
                    bounds_us,
                    buckets,
                    sum_us,
                    count,
                    ..
                } => {
                    let mut cumulative = 0u64;
                    for (i, bound) in bounds_us.iter().enumerate() {
                        cumulative += buckets[i];
                        let le = if seconds {
                            format!("{}", *bound as f64 / 1e6)
                        } else {
                            format!("{bound}")
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            prom_labels(&m.labels, &[("le", &le)]),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        prom_labels(&m.labels, &[("le", "+Inf")]),
                        count
                    );
                    if seconds {
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            m.name,
                            prom_labels(&m.labels, &[]),
                            *sum_us as f64 / 1e6
                        );
                    } else {
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            m.name,
                            prom_labels(&m.labels, &[]),
                            sum_us
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        prom_labels(&m.labels, &[]),
                        count
                    );
                }
            }
        }
        out
    }

    /// Render the snapshot as one JSON object keyed by metric name;
    /// labelled series become arrays of `{labels, value}` objects.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);
        out.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\"", m.name);
            if !m.labels.is_empty() {
                out.push_str(",\"labels\":{");
                for (j, (k, v)) in m.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":\"");
                    crate::span::escape_json(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
                }
                SampleValue::GaugeF64(v) if v.is_finite() => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}");
                }
                // JSON has no NaN/Inf; stringify like span attrs do.
                SampleValue::GaugeF64(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":\"{v}\"");
                }
                SampleValue::Histogram {
                    bounds_us,
                    buckets,
                    exemplars,
                    sum_us,
                    count,
                } => {
                    out.push_str(",\"type\":\"histogram\",\"bounds\":[");
                    for (j, b) in bounds_us.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("],\"buckets\":[");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push(']');
                    if !exemplars.is_empty() {
                        out.push_str(",\"exemplars\":[");
                        for (j, e) in exemplars.iter().enumerate() {
                            if j > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{e}");
                        }
                        out.push(']');
                    }
                    let _ = write!(out, ",\"sum\":{sum_us},\"count\":{count}");
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn prom_labels(fixed: &[(&'static str, String)], extra: &[(&str, &str)]) -> String {
    if fixed.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in fixed
        .iter()
        .map(|(k, v)| (*k, v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        // Prometheus label escaping: backslash, double-quote, newline.
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter(
            "csj_test_total",
            "test counter",
            vec![("method", "ap-minmax".into())],
        );
        let g = reg.gauge("csj_test_gauge", "test gauge", vec![]);
        c.inc();
        c.add(4);
        g.set(7);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("csj_test_total", &[("method", "ap-minmax")]),
            5
        );
        assert_eq!(snap.counter_value("csj_test_gauge", &[]), 7);
        assert_eq!(snap.counter_value("csj_missing", &[]), 0);
    }

    #[test]
    fn latency_histogram_bucketing() {
        let h = LatencyHistogram::new();
        h.observe_us(1); // <= 50
        h.observe_us(50); // boundary is inclusive
        h.observe_us(51); // next bucket
        h.observe_us(20_000_000); // beyond the last bound → +Inf
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_us(), 20_000_102);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[LATENCY_BOUNDS_US.len()], 1);
    }

    #[test]
    fn prometheus_histogram_is_cumulative_in_seconds() {
        let reg = MetricsRegistry::new();
        let h = reg.latency(
            "csj_join_latency_seconds",
            "join latency",
            vec![("method", "ex-minmax".into())],
        );
        h.observe_us(60); // second bucket (le=100µs)
        h.observe_us(200_000); // le=1s bucket
        let text = reg.snapshot().to_prometheus();
        assert!(
            text.contains("# HELP csj_join_latency_seconds join latency"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE csj_join_latency_seconds histogram"),
            "{text}"
        );
        // Bounds render in seconds; the le=0.0001 (100µs) line is
        // cumulative so it holds 1, the le=1 line holds 2.
        assert!(
            text.contains("csj_join_latency_seconds_bucket{method=\"ex-minmax\",le=\"0.0001\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("csj_join_latency_seconds_bucket{method=\"ex-minmax\",le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("csj_join_latency_seconds_bucket{method=\"ex-minmax\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("csj_join_latency_seconds_sum{method=\"ex-minmax\"} 0.20006"),
            "{text}"
        );
        assert!(
            text.contains("csj_join_latency_seconds_count{method=\"ex-minmax\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn help_and_type_emitted_once_per_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter(
            "csj_joins_total",
            "joins",
            vec![("method", "ap-baseline".into())],
        );
        let b = reg.counter(
            "csj_joins_total",
            "joins",
            vec![("method", "ex-baseline".into())],
        );
        a.inc();
        b.add(2);
        let text = reg.snapshot().to_prometheus();
        assert_eq!(text.matches("# HELP csj_joins_total").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE csj_joins_total").count(), 1, "{text}");
        assert!(
            text.contains("csj_joins_total{method=\"ap-baseline\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("csj_joins_total{method=\"ex-baseline\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn log_histogram_cell_merges_and_exports() {
        let reg = MetricsRegistry::new();
        let cell = reg.log_histogram("csj_candidate_stream_depth", "depth", vec![]);
        let mut h = LogHistogram::default();
        h.record(0);
        h.record(1);
        h.record(3);
        cell.merge(&h, 4);
        let snap = reg.snapshot();
        let text = snap.to_prometheus();
        // Depth (no _seconds suffix) keeps raw bounds: le="0" holds the
        // zero, le="1" adds the one, le="3" adds the three.
        assert!(
            text.contains("csj_candidate_stream_depth_bucket{le=\"0\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("csj_candidate_stream_depth_bucket{le=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("csj_candidate_stream_depth_bucket{le=\"3\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("csj_candidate_stream_depth_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("csj_candidate_stream_depth_sum 4"), "{text}");
        assert!(
            text.contains("csj_candidate_stream_depth_count 3"),
            "{text}"
        );
    }

    #[test]
    fn json_snapshot_is_structured() {
        let reg = MetricsRegistry::new();
        reg.counter(
            "csj_joins_total",
            "joins",
            vec![("method", "ap-minmax".into())],
        )
        .inc();
        reg.gauge("csj_communities", "registered", vec![]).set(3);
        reg.latency("csj_join_latency_seconds", "latency", vec![])
            .observe_us(10);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"name\":\"csj_joins_total\""), "{json}");
        assert!(
            json.contains("\"labels\":{\"method\":\"ap-minmax\"}"),
            "{json}"
        );
        assert!(json.contains("\"type\":\"gauge\",\"value\":3"), "{json}");
        assert!(json.contains("\"type\":\"histogram\""), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn poisoned_locks_recover() {
        let reg = Arc::new(MetricsRegistry::new());
        let cell = reg.log_histogram("csj_depth", "depth", vec![]);
        // Poison both the registry's entry list and the histogram cell
        // by panicking while holding their locks.
        let reg2 = Arc::clone(&reg);
        let cell2 = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            let _entries = reg2.entries.lock().unwrap();
            let _hist = cell2.hist.lock().unwrap();
            panic!("poison both locks");
        })
        .join();
        // Every later operation still works.
        let mut h = LogHistogram::default();
        h.record(2);
        cell.merge(&h, 2);
        assert_eq!(cell.load().count(), 1);
        let c = reg.counter("csj_after_total", "registered after poison", vec![]);
        c.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter_value("csj_after_total", &[]), 1);
        assert!(snap.find("csj_depth", &[]).is_some());
    }

    #[test]
    fn float_gauge_renders_as_prometheus_gauge() {
        let reg = MetricsRegistry::new();
        let g = reg.float_gauge(
            "csj_slo_burn_rate",
            "burn",
            vec![("objective", "latency".into()), ("window", "5m".into())],
        );
        g.set(2.25);
        let snap = reg.snapshot();
        assert_eq!(
            snap.gauge_f64_value("csj_slo_burn_rate", &[("objective", "latency")]),
            2.25
        );
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE csj_slo_burn_rate gauge"), "{text}");
        assert!(
            text.contains("csj_slo_burn_rate{objective=\"latency\",window=\"5m\"} 2.25"),
            "{text}"
        );
        let json = snap.to_json();
        assert!(json.contains("\"type\":\"gauge\",\"value\":2.25"), "{json}");
    }

    #[test]
    fn nonfinite_float_gauge_stays_valid_json() {
        let reg = MetricsRegistry::new();
        reg.float_gauge("csj_slo_burn_rate", "burn", vec![])
            .set(f64::INFINITY);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"value\":\"inf\""), "{json}");
    }

    #[test]
    fn exemplars_surface_in_json_but_not_prometheus() {
        let reg = MetricsRegistry::new();
        let h = reg.latency("csj_join_latency_seconds", "latency", vec![]);
        h.observe_us(60);
        // No exemplar stamped yet: the field is omitted entirely.
        assert!(!reg.snapshot().to_json().contains("exemplars"));
        h.observe_us_with_exemplar(200_000, 41);
        h.observe_us_with_exemplar(210_000, 42); // same bucket: last wins
        h.observe_us_with_exemplar(10, 0); // 0 = no exemplar, ignored
        let snap = reg.snapshot();
        match &snap.find("csj_join_latency_seconds", &[]).unwrap().value {
            SampleValue::Histogram {
                exemplars, buckets, ..
            } => {
                assert_eq!(exemplars.len(), buckets.len());
                // 200ms lands in the le=1s bucket (index 10).
                assert_eq!(exemplars[10], 42);
                assert_eq!(exemplars[0], 0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert!(snap.to_json().contains("\"exemplars\":["));
        // The 0.0.4 text format has no exemplar syntax — must stay clean.
        assert!(!snap.to_prometheus().contains("exemplar"));
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("csj_rows_total", "rows", vec![]);
        let h = reg.latency("csj_lat_seconds", "lat", vec![]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe_us(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}
