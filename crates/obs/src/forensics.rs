//! Query forensics: a bounded slow-query log.
//!
//! The flight recorder keeps the last N traces of *every* query, which
//! under load means the interesting trace — the one that blew its
//! deadline three minutes ago — has long been evicted by thousands of
//! healthy ones. [`SlowQueryLog`] keeps a separate ring of only the
//! pathological queries: anything whose root span exceeded a latency
//! threshold, or whose outcome was not `completed`. Each capture
//! retains the full [`QueryTrace`] — plan span with rejected
//! alternatives, join telemetry summary, budget state, the whole span
//! tree — so `csj slow` can reconstruct the query after the fact.
//!
//! Offering is cheap for healthy queries (one comparison and a string
//! check); cloning happens only on capture.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::{escape_json, QueryTrace};

/// Why a trace was captured into the slow-query log.
#[derive(Debug, Clone, PartialEq)]
pub enum CaptureCause {
    /// The root span exceeded the log's latency threshold.
    SlowerThan {
        /// The configured threshold, microseconds.
        threshold_us: u64,
        /// The query's actual duration, microseconds.
        elapsed_us: u64,
    },
    /// The outcome was not `completed` (exhausted, failed, shed, …).
    BadOutcome(String),
}

impl CaptureCause {
    /// Compact label, e.g. `latency>250000us` or `outcome:exhausted:deadline`.
    pub fn label(&self) -> String {
        match self {
            CaptureCause::SlowerThan { threshold_us, .. } => format!("latency>{threshold_us}us"),
            CaptureCause::BadOutcome(outcome) => format!("outcome:{outcome}"),
        }
    }
}

impl std::fmt::Display for CaptureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// One captured forensic record: the full trace plus why it was kept.
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicRecord {
    /// Capture sequence number (1-based, monotone across evictions).
    pub seq: u64,
    /// Why the trace was captured.
    pub cause: CaptureCause,
    /// The complete query trace, id already assigned by the flight
    /// recorder — exemplar links resolve against this id.
    pub trace: QueryTrace,
}

impl ForensicRecord {
    /// Render as one JSON object (`{"seq":…,"cause":"…","trace":{…}}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"seq\":{},\"cause\":\"", self.seq));
        escape_json(&self.cause.label(), &mut out);
        out.push_str("\",\"trace\":");
        out.push_str(&self.trace.to_json());
        out.push('}');
        out
    }

    /// Render as an indented text block (header line + span tree).
    pub fn to_text(&self) -> String {
        format!(
            "slow #{} cause={} {}",
            self.seq,
            self.cause.label(),
            self.trace.to_text()
        )
    }
}

/// Bounded ring of forensic records: traces slower than a threshold or
/// with a non-`completed` outcome.
#[derive(Debug)]
pub struct SlowQueryLog {
    cap: usize,
    threshold_us: u64,
    ring: Mutex<VecDeque<ForensicRecord>>,
    offered: AtomicU64,
    captured: AtomicU64,
}

impl SlowQueryLog {
    /// A log keeping at most `cap` records (minimum 1), capturing any
    /// trace whose root span runs longer than `threshold_us`.
    pub fn new(cap: usize, threshold_us: u64) -> Self {
        Self {
            cap: cap.max(1),
            threshold_us,
            ring: Mutex::new(VecDeque::new()),
            offered: AtomicU64::new(0),
            captured: AtomicU64::new(0),
        }
    }

    /// The capture latency threshold, microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Maximum retained records.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces offered so far (captured or not).
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Traces captured so far (monotone; evicted records still count).
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Decide whether `trace` is pathological and, if so, capture it.
    /// Returns the capture sequence number, or `None` when the trace
    /// was healthy. The healthy path does not clone or lock.
    pub fn offer(&self, trace: &QueryTrace) -> Option<u64> {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let cause = if trace.outcome != "completed" {
            CaptureCause::BadOutcome(trace.outcome.clone())
        } else if trace.root.elapsed_us > self.threshold_us {
            CaptureCause::SlowerThan {
                threshold_us: self.threshold_us,
                elapsed_us: trace.root.elapsed_us,
            }
        } else {
            return None;
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        // Sequence assignment under the ring lock keeps records ordered.
        let seq = self.captured.fetch_add(1, Ordering::Relaxed) + 1;
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ForensicRecord {
            seq,
            cause,
            trace: trace.clone(),
        });
        Some(seq)
    }

    /// The most recent `n` records, oldest first.
    pub fn last(&self, n: usize) -> Vec<ForensicRecord> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn trace(outcome: &str, elapsed_us: u64) -> QueryTrace {
        QueryTrace {
            id: 9,
            kind: "top_k",
            outcome: outcome.into(),
            root: Span::new("query").at(0, elapsed_us),
        }
    }

    #[test]
    fn healthy_queries_are_not_captured() {
        let log = SlowQueryLog::new(4, 1000);
        assert_eq!(log.offer(&trace("completed", 999)), None);
        assert_eq!(log.offer(&trace("completed", 1000)), None, "boundary");
        assert!(log.is_empty());
        assert_eq!(log.offered(), 2);
        assert_eq!(log.captured(), 0);
    }

    #[test]
    fn slow_queries_are_captured_with_cause() {
        let log = SlowQueryLog::new(4, 1000);
        assert_eq!(log.offer(&trace("completed", 1001)), Some(1));
        let records = log.last(10);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 1);
        assert_eq!(records[0].cause.label(), "latency>1000us");
        assert_eq!(records[0].trace.root.elapsed_us, 1001);
    }

    #[test]
    fn bad_outcomes_are_captured_regardless_of_latency() {
        let log = SlowQueryLog::new(4, 1000);
        assert_eq!(log.offer(&trace("exhausted:deadline", 5)), Some(1));
        assert_eq!(log.offer(&trace("failed:join panicked", 5)), Some(2));
        let causes: Vec<String> = log.last(10).iter().map(|r| r.cause.label()).collect();
        assert_eq!(
            causes,
            vec!["outcome:exhausted:deadline", "outcome:failed:join panicked"]
        );
    }

    #[test]
    fn ring_evicts_oldest_but_seq_is_monotone() {
        let log = SlowQueryLog::new(2, 0);
        for i in 0..5 {
            assert_eq!(log.offer(&trace("completed", 10 + i)), Some(i + 1));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.captured(), 5);
        let seqs: Vec<u64> = log.last(10).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let log = SlowQueryLog::new(2, 0);
        log.offer(&trace("failed:panic \"boom\"", 7));
        let json = log.last(1)[0].to_json();
        assert!(json.starts_with("{\"seq\":1,\"cause\":\""), "{json}");
        assert!(json.contains("outcome:failed:panic \\\"boom\\\""), "{json}");
        assert!(json.contains("\"trace\":{"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn text_rendering_includes_span_tree() {
        let log = SlowQueryLog::new(2, 0);
        log.offer(&trace("exhausted:deadline", 7));
        let text = log.last(1)[0].to_text();
        assert!(text.contains("slow #1 cause=outcome:exhausted:deadline"));
        assert!(text.contains("trace #9 top_k"));
        assert!(text.contains("query"));
    }

    #[test]
    fn poisoned_ring_recovers() {
        let log = std::sync::Arc::new(SlowQueryLog::new(4, 0));
        log.offer(&trace("completed", 5));
        let log2 = std::sync::Arc::clone(&log);
        let _ = std::thread::spawn(move || {
            let _ring = log2.ring.lock().unwrap();
            panic!("poison the ring");
        })
        .join();
        assert_eq!(log.offer(&trace("completed", 6)), Some(2));
        assert_eq!(log.last(10).len(), 2);
    }
}
