//! # csj-obs — observability for the CSJ engine
//!
//! Set-similarity systems live and die by visibility into pruning
//! effectiveness and skew: where a slow `top_k_similar` spends its time,
//! which method/eps regime dominates latency, and what exactly happened
//! in the query that blew its budget or panicked. This crate packages
//! that visibility as three small, dependency-free building blocks:
//!
//! * **Spans** ([`Span`], [`QueryTrace`]) — a hierarchical record of one
//!   query (`query → screen/refine → join → phase`) with microsecond
//!   offsets and typed attributes (method, eps, |B|, |A|, budget
//!   outcome). Cheap enough to stay on in release builds; the engine
//!   skips construction entirely when observability is disabled.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   histograms (a fixed-boundary latency histogram plus
//!   `csj_core::telemetry::LogHistogram` for depth distributions),
//!   exported as a [`MetricsSnapshot`] that renders both **Prometheus
//!   text exposition** and **JSON**.
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer of
//!   the last N completed [`QueryTrace`]s (including partial, exhausted
//!   and panicked queries) so a bad query can be reconstructed after the
//!   fact.
//!
//! The hot-path types are lock-free ([`Counter`], [`Gauge`],
//! [`LatencyHistogram`] are atomics); only trace assembly and
//! `LogHistogram` merging take a mutex, at per-join (not per-candidate)
//! granularity.

mod flight;
mod metrics;
mod span;

pub use flight::FlightRecorder;
pub use metrics::{
    Counter, Gauge, LatencyHistogram, LogHistogramCell, MetricSample, MetricsRegistry,
    MetricsSnapshot, SampleValue, LATENCY_BOUNDS_US,
};
pub use span::{escape_json, AttrValue, QueryTrace, Span};
