//! # csj-obs — observability for the CSJ engine
//!
//! Set-similarity systems live and die by visibility into pruning
//! effectiveness and skew: where a slow `top_k_similar` spends its time,
//! which method/eps regime dominates latency, and what exactly happened
//! in the query that blew its budget or panicked. This crate packages
//! that visibility as three small, dependency-free building blocks:
//!
//! * **Spans** ([`Span`], [`QueryTrace`]) — a hierarchical record of one
//!   query (`query → screen/refine → join → phase`) with microsecond
//!   offsets and typed attributes (method, eps, |B|, |A|, budget
//!   outcome). Cheap enough to stay on in release builds; the engine
//!   skips construction entirely when observability is disabled.
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   histograms (a fixed-boundary latency histogram plus
//!   `csj_core::telemetry::LogHistogram` for depth distributions),
//!   exported as a [`MetricsSnapshot`] that renders both **Prometheus
//!   text exposition** and **JSON**.
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring buffer of
//!   the last N completed [`QueryTrace`]s (including partial, exhausted
//!   and panicked queries) so a bad query can be reconstructed after the
//!   fact.
//! * **Forensics** ([`SlowQueryLog`]) — a second, smaller ring that
//!   keeps only pathological traces (over-threshold or non-`completed`
//!   outcome), so the interesting query survives eviction by thousands
//!   of healthy ones.
//! * **SLOs** ([`SloEngine`]) — declarative objectives over the
//!   existing `csj_*` series, evaluated into multi-window burn rates
//!   and exported as `csj_slo_*` gauges.
//! * **Export** ([`traces_to_chrome`], [`traces_to_jsonl`]) — span
//!   trees serialized to Chrome `trace_event` JSON (opens in
//!   `about://tracing`) or a greppable JSON-lines stream.
//!
//! The hot-path types are lock-free ([`Counter`], [`Gauge`],
//! [`LatencyHistogram`] are atomics); only trace assembly and
//! `LogHistogram` merging take a mutex, at per-join (not per-candidate)
//! granularity.

mod export;
mod flight;
mod forensics;
mod metrics;
mod slo;
mod span;

pub use export::{traces_to_chrome, traces_to_jsonl};
pub use flight::FlightRecorder;
pub use forensics::{CaptureCause, ForensicRecord, SlowQueryLog};
pub use metrics::{
    Counter, FloatGauge, Gauge, LatencyHistogram, LogHistogramCell, MetricSample, MetricsRegistry,
    MetricsSnapshot, SampleValue, LATENCY_BOUNDS_US,
};
pub use slo::{
    default_windows, CounterSelector, Objective, SloEngine, SloSource, SloStatus, WindowSpec,
};
pub use span::{escape_json, AttrValue, QueryTrace, Span};
