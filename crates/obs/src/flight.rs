//! Flight recorder: a bounded ring buffer of completed query traces.
//!
//! Keeps the last N [`QueryTrace`]s — including partial, exhausted and
//! panicked queries — so a bad query can be reconstructed after the
//! fact without having had tracing piped anywhere. Recording happens
//! once per *query* (not per join), so a plain mutex around the ring is
//! plenty even under the parallel screening workers.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span::QueryTrace;

/// Bounded ring buffer of the last N completed [`QueryTrace`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<QueryTrace>>,
    next_id: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` traces (minimum 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            ring: Mutex::new(VecDeque::with_capacity(cap)),
            next_id: AtomicU64::new(1),
        }
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no trace has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever recorded (ids are 1-based and monotone).
    pub fn recorded(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) - 1
    }

    /// Store a completed trace, assigning it the next sequence id
    /// (returned). Evicts the oldest trace when full.
    pub fn record(&self, mut trace: QueryTrace) -> u64 {
        // Recover from poisoning: the ring is always structurally sound
        // (push/pop are panic-free), so a panicked recorder elsewhere
        // must not take the flight recorder down with it.
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        // Id assignment happens under the ring lock so retained traces
        // are always in id order even under concurrent recording.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        trace.id = id;
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(trace);
        id
    }

    /// Pre-assign the next sequence id without storing anything, so the
    /// id can be referenced while the query is still running (exemplar
    /// links from histogram buckets). Pair with
    /// [`FlightRecorder::record_with_id`].
    pub fn reserve_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Store a completed trace under an id previously returned by
    /// [`FlightRecorder::reserve_id`]. Queries finish in arbitrary
    /// order, so the trace is inserted in id order to keep
    /// [`FlightRecorder::last`] oldest-first.
    pub fn record_with_id(&self, id: u64, mut trace: QueryTrace) {
        trace.id = id;
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let pos = ring.partition_point(|t| t.id < id);
        ring.insert(pos, trace);
        if ring.len() > self.cap {
            ring.pop_front();
        }
    }

    /// The most recent `n` traces, oldest first. `n` larger than the
    /// retained count returns everything.
    pub fn last(&self, n: usize) -> Vec<QueryTrace> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn trace(kind: &'static str) -> QueryTrace {
        QueryTrace {
            id: 0,
            kind,
            outcome: "completed".into(),
            root: Span::new("query"),
        }
    }

    #[test]
    fn assigns_monotone_ids_and_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for _ in 0..5 {
            rec.record(trace("similarity"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.capacity(), 3);
        assert_eq!(rec.recorded(), 5);
        let ids: Vec<u64> = rec.last(10).iter().map(|t| t.id).collect();
        // Oldest-first, the two earliest (1, 2) evicted.
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn last_n_slices_most_recent() {
        let rec = FlightRecorder::new(8);
        for _ in 0..6 {
            rec.record(trace("top_k"));
        }
        let last2: Vec<u64> = rec.last(2).iter().map(|t| t.id).collect();
        assert_eq!(last2, vec![5, 6]);
        assert_eq!(rec.last(0).len(), 0);
        assert_eq!(rec.last(100).len(), 6);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let rec = FlightRecorder::new(0);
        assert_eq!(rec.capacity(), 1);
        rec.record(trace("screen"));
        rec.record(trace("refine"));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.last(1)[0].id, 2);
    }

    #[test]
    fn reserved_ids_insert_in_order() {
        let rec = FlightRecorder::new(4);
        let a = rec.reserve_id();
        let b = rec.reserve_id();
        assert_eq!((a, b), (1, 2));
        // Finish out of order: the later-reserved id lands first.
        rec.record_with_id(b, trace("top_k"));
        rec.record_with_id(a, trace("similarity"));
        let c = rec.record(trace("screen"));
        assert_eq!(c, 3);
        let ids: Vec<u64> = rec.last(10).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![1, 2, 3], "retained traces stay in id order");
        assert_eq!(rec.recorded(), 3);
    }

    #[test]
    fn reserved_ids_respect_capacity() {
        let rec = FlightRecorder::new(2);
        for _ in 0..5 {
            let id = rec.reserve_id();
            rec.record_with_id(id, trace("screen"));
        }
        assert_eq!(rec.len(), 2);
        let ids: Vec<u64> = rec.last(10).iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![4, 5]);
    }

    #[test]
    fn preserves_failed_outcomes() {
        let rec = FlightRecorder::new(4);
        let mut t = trace("pairs_above");
        t.outcome = "failed:join panicked".into();
        rec.record(t);
        let mut t = trace("top_k");
        t.outcome = "exhausted:deadline".into();
        rec.record(t);
        let out: Vec<String> = rec.last(2).into_iter().map(|t| t.outcome).collect();
        assert_eq!(out, vec!["failed:join panicked", "exhausted:deadline"]);
    }

    #[test]
    fn poisoned_ring_recovers() {
        let rec = std::sync::Arc::new(FlightRecorder::new(4));
        rec.record(trace("similarity"));
        let rec2 = std::sync::Arc::clone(&rec);
        let _ = std::thread::spawn(move || {
            let _ring = rec2.ring.lock().unwrap();
            panic!("poison the ring");
        })
        .join();
        // Recording and reads still work after the poisoning panic.
        let id = rec.record(trace("top_k"));
        assert_eq!(id, 2);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.last(2).len(), 2);
    }

    #[test]
    fn concurrent_recording_keeps_every_id_unique() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for _ in 0..100 {
                    ids.push(rec.record(trace("screen")));
                }
                ids
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "ids must be unique across threads");
        assert_eq!(rec.recorded(), 800);
        assert_eq!(rec.len(), 64);
        // The retained window is the 64 highest ids, oldest first.
        let kept: Vec<u64> = rec.last(64).iter().map(|t| t.id).collect();
        assert!(kept.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(kept.len(), 64);
    }
}
