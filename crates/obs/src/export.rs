//! Trace export: Chrome `trace_event` JSON and a compact JSON-lines
//! stream.
//!
//! [`QueryTrace`] spans already carry microsecond offsets and
//! durations, which is exactly the unit the Chrome tracing format
//! (`about://tracing`, Perfetto) expects, so the mapping is direct:
//! every span becomes one complete (`"ph":"X"`) event with `ts` =
//! `start_us`, `dur` = `elapsed_us`, and its attributes as `args`.
//! Each trace gets its own `tid` (the flight-recorder id) under a
//! single `pid`, plus a `thread_name` metadata event labelling the row
//! with kind and outcome — so a multi-trace export renders as one row
//! per query with the span tree nested by time containment.
//!
//! The JSON-lines form emits one object per span (depth-first, with an
//! explicit `depth`), one per line — greppable and streamable where
//! the Chrome document is not.

use crate::span::{escape_json, AttrValue, QueryTrace, Span};

fn write_args(attrs: &[(&'static str, AttrValue)], out: &mut String) {
    use std::fmt::Write as _;
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        match v {
            AttrValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::F64(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            AttrValue::F64(x) => {
                let _ = write!(out, "\"{x}\"");
            }
            AttrValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn write_complete_event(span: &Span, tid: u64, out: &mut String, first: &mut bool) {
    use std::fmt::Write as _;
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"cat\":\"csj\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
        span.name, tid, span.start_us, span.elapsed_us
    );
    if !span.attrs.is_empty() {
        out.push_str(",\"args\":");
        write_args(&span.attrs, out);
    }
    out.push('}');
    for child in &span.children {
        write_complete_event(child, tid, out, first);
    }
}

/// Render `traces` as one Chrome `trace_event` JSON document
/// (`{"traceEvents":[…]}`), loadable in `about://tracing` / Perfetto.
pub fn traces_to_chrome(traces: &[QueryTrace]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for trace in traces {
        // Row label: "trace #id kind (outcome)".
        if !first {
            out.push(',');
        }
        first = false;
        let mut label = String::new();
        escape_json(&trace.outcome, &mut label);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"trace #{} {} ({})\"}}}}",
            trace.id, trace.id, trace.kind, label
        );
        write_complete_event(&trace.root, trace.id, &mut out, &mut first);
    }
    out.push_str("]}");
    out
}

fn write_jsonl_span(trace: &QueryTrace, span: &Span, depth: usize, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"trace\":{},\"kind\":\"{}\",\"depth\":{},\"name\":\"{}\",\"start_us\":{},\"elapsed_us\":{}",
        trace.id, trace.kind, depth, span.name, span.start_us, span.elapsed_us
    );
    if depth == 0 {
        out.push_str(",\"outcome\":\"");
        escape_json(&trace.outcome, out);
        out.push('"');
    }
    if !span.attrs.is_empty() {
        out.push_str(",\"attrs\":");
        write_args(&span.attrs, out);
    }
    out.push_str("}\n");
    for child in &span.children {
        write_jsonl_span(trace, child, depth + 1, out);
    }
}

/// Render `traces` as JSON lines: one object per span, depth-first,
/// roots carrying the trace outcome.
pub fn traces_to_jsonl(traces: &[QueryTrace]) -> String {
    let mut out = String::with_capacity(1024);
    for trace in traces {
        write_jsonl_span(trace, &trace.root, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traces() -> Vec<QueryTrace> {
        let mut root = Span::new("query").at(0, 1000).attr("k", 3u64);
        let mut screen = Span::new("screen").at(10, 600);
        screen.push_child(
            Span::new("join")
                .at(20, 100)
                .attr("method", "ap-minmax")
                .attr("outcome", "ok"),
        );
        root.push_child(screen);
        vec![
            QueryTrace {
                id: 4,
                kind: "top_k",
                outcome: "completed".into(),
                root,
            },
            QueryTrace {
                id: 5,
                kind: "similarity",
                outcome: "exhausted:deadline".into(),
                root: Span::new("query").at(0, 50),
            },
        ]
    }

    #[test]
    fn chrome_document_shape() {
        let doc = traces_to_chrome(&sample_traces());
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.ends_with("]}"));
        // One metadata event per trace, one X event per span (3 + 1).
        assert_eq!(doc.matches("\"ph\":\"M\"").count(), 2, "{doc}");
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 4, "{doc}");
        assert!(doc.contains("\"tid\":4,\"ts\":20,\"dur\":100"), "{doc}");
        assert!(
            doc.contains("\"args\":{\"name\":\"trace #5 similarity (exhausted:deadline)\"}"),
            "{doc}"
        );
        assert!(doc.contains("\"args\":{\"method\":\"ap-minmax\""), "{doc}");
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn chrome_empty_input_is_still_a_document() {
        let doc = traces_to_chrome(&[]);
        assert_eq!(doc, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn jsonl_one_line_per_span_with_depth() {
        let out = traces_to_jsonl(&sample_traces());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"depth\":0"));
        assert!(lines[0].contains("\"outcome\":\"completed\""));
        assert!(lines[1].contains("\"depth\":1") && lines[1].contains("\"name\":\"screen\""));
        assert!(lines[2].contains("\"depth\":2") && lines[2].contains("\"name\":\"join\""));
        assert!(lines[3].contains("\"trace\":5"));
        assert!(lines[3].contains("\"outcome\":\"exhausted:deadline\""));
        for line in lines {
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "{line}"
            );
        }
    }
}
