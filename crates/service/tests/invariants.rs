//! Service invariants, end to end:
//!
//! (a) every submitted request resolves to exactly one of {answered,
//!     degraded-answered, shed, failed-typed}, and the counters agree:
//!     `admitted + shed == submitted`;
//! (b) shedding happens only under genuine backlog — light sequential
//!     load never sheds;
//! (c) an open breaker stops routing to the broken method and half-open
//!     probes eventually reset it (chaos tests, `fault-injection`);
//! (d) degraded answers come off the planner-ranked ladder: either an
//!     exact sibling rung (no approximation) or a valid Ap-* result —
//!     a sound lower bound within a factor of two of the exact score.

use std::sync::Arc;
use std::time::Duration;

use csj_core::{Community, CsjMethod};
use csj_engine::{CommunityHandle, CsjEngine, EngineConfig};
#[cfg(feature = "fault-injection")]
use csj_service::DegradeConfig;
use csj_service::{
    CsjService, Fate, Request, Response, ResponseValue, ServiceConfig, ServiceError,
};

fn community(name: &str, rows: &[[u32; 2]]) -> Community {
    Community::from_rows(
        name,
        2,
        rows.iter().enumerate().map(|(i, v)| (i as u64, v.to_vec())),
    )
    .expect("well-formed")
}

/// Three small communities: `near` overlaps `anchor` on 3 of 4 users,
/// `far` on none.
fn engine_with_three() -> (CsjEngine, CommunityHandle, CommunityHandle, CommunityHandle) {
    let mut engine = CsjEngine::new(2, EngineConfig::new(1));
    let a = engine
        .register(community("anchor", &[[1, 1], [5, 5], [9, 9], [13, 13]]))
        .unwrap();
    let n = engine
        .register(community("near", &[[1, 2], [5, 5], [9, 8], [100, 100]]))
        .unwrap();
    let f = engine
        .register(community("far", &[[50, 0], [60, 0], [70, 0], [80, 0]]))
        .unwrap();
    (engine, a, n, f)
}

/// Two larger communities so a single uncached join takes measurable
/// time (overload tests need the worker to be busy for a while).
fn slow_engine() -> (CsjEngine, CommunityHandle, CommunityHandle) {
    let mut engine = CsjEngine::new(2, EngineConfig::new(1));
    let rows = |salt: u32| -> Vec<[u32; 2]> {
        (0..500u32)
            .map(|i| [(i * 7 + salt) % 97, (i * 13 + salt) % 89])
            .collect()
    };
    let x = engine.register(community("big-x", &rows(0))).unwrap();
    let y = engine.register(community("big-y", &rows(3))).unwrap();
    (engine, x, y)
}

fn ratio(r: &Response) -> f64 {
    match &r.value {
        ResponseValue::Similarity(s) => s.ratio(),
        _ => panic!("expected a similarity response"),
    }
}

#[test]
fn light_sequential_load_never_sheds() {
    let (engine, a, _, _) = engine_with_three();
    let service = CsjService::start(engine, ServiceConfig::default());
    for i in 0..30 {
        let request = match i % 3 {
            0 => Request::Similarity {
                x: a,
                y: CommunityHandle(1),
                method: None,
            },
            1 => Request::TopK { x: a, k: 2 },
            _ => Request::PairsAbove { threshold: 0.2 },
        };
        let response = service.call(request).expect("light load never fails");
        assert!(!response.degraded);
        assert_eq!(response.retries, 0);
    }
    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter_value("csj_service_submitted_total", &[]), 30);
    assert_eq!(snap.counter_value("csj_service_admitted_total", &[]), 30);
    assert_eq!(snap.counter_value("csj_service_shed_total", &[]), 0);
    assert_eq!(
        snap.counter_value("csj_service_completed_total", &[("outcome", "answered")]),
        30
    );
}

#[test]
fn overload_sheds_and_every_request_resolves_exactly_once() {
    let (engine, x, y) = slow_engine();
    let service = Arc::new(CsjService::start(
        engine,
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    ));
    // Occupy the worker and the queue slot with uncached Ap joins
    // (explicit non-refine method bypasses the exact cache), then flood.
    let blocker = || Request::Similarity {
        x,
        y,
        method: Some(CsjMethod::ApMinMax),
    };
    let b1 = service.submit(blocker()).expect("first blocker fits");
    // Wait until the worker has picked the first blocker up, so the
    // second one deterministically occupies the single queue slot.
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let b2 = service.submit(blocker()).expect("second blocker fits");
    let blockers = vec![b1, b2];
    let mut handles = Vec::new();
    for _ in 0..4 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            let mut fates = (0u64, 0u64, 0u64); // answered, shed, failed
            for _ in 0..15 {
                let result = service
                    .submit(Request::Similarity {
                        x,
                        y,
                        method: Some(CsjMethod::ApMinMax),
                    })
                    .map(|ticket| ticket.wait())
                    .and_then(|r| r);
                match Fate::of(&result) {
                    Fate::Answered => fates.0 += 1,
                    Fate::Shed => {
                        fates.1 += 1;
                        let ServiceError::Overloaded { retry_after } = result.unwrap_err() else {
                            panic!("shed must be Overloaded");
                        };
                        assert!(retry_after > Duration::ZERO);
                    }
                    Fate::Failed => fates.2 += 1,
                    Fate::Degraded => panic!("Ap requests never degrade"),
                }
            }
            fates
        }));
    }
    let mut answered = 0u64;
    let mut shed = 0u64;
    let mut failed = 0u64;
    for h in handles {
        let (a, s, f) = h.join().expect("no panic escapes the service");
        answered += a;
        shed += s;
        failed += f;
    }
    for b in blockers {
        assert!(b.wait().is_ok());
        answered += 1;
    }
    assert_eq!(answered + shed + failed, 62, "every request resolved once");
    assert_eq!(failed, 0);
    assert!(shed > 0, "flooding a 1-worker/1-slot service must shed");

    let snap = service.metrics_snapshot();
    let submitted = snap.counter_value("csj_service_submitted_total", &[]);
    let admitted = snap.counter_value("csj_service_admitted_total", &[]);
    let shed_m = snap.counter_value("csj_service_shed_total", &[]);
    assert_eq!(submitted, 62);
    assert_eq!(
        admitted + shed_m,
        submitted,
        "identity: admitted + shed == submitted"
    );
    assert_eq!(shed_m, shed);
    assert_eq!(
        snap.counter_value("csj_service_completed_total", &[("outcome", "answered")]),
        admitted,
        "every admitted request completed"
    );
}

#[test]
fn deadline_pressure_degrades_to_a_sound_lower_bound() {
    let (engine, a, n, _) = engine_with_three();
    let service = CsjService::start(
        engine,
        ServiceConfig {
            // Zero deadline: by execution time the slack is below
            // min_exact_slack, forcing the deadline-pressure rung.
            default_deadline: Some(Duration::ZERO),
            ..ServiceConfig::default()
        },
    );
    let response = service
        .call(Request::Similarity {
            x: a,
            y: n,
            method: None,
        })
        .expect("degraded, not failed");
    assert!(response.degraded);
    assert_eq!(response.degrade_trigger, Some("deadline"));
    let note = response.degrade_note.as_deref().unwrap();
    // Deadline pressure skips the exact rungs, so the serving rung is
    // whichever approximate method the planner ranked cheapest.
    assert!(note.contains("served by ap-"), "{note}");
    assert!(note.contains("2*score"), "{note}");

    // Soundness: ap <= exact <= 2 * ap.
    let ap = ratio(&response);
    let exact = service.engine().similarity(a, n).unwrap().ratio();
    assert!(ap > 0.0);
    assert!(ap <= exact + 1e-9, "Ap never over-counts");
    assert!(exact <= 2.0 * ap + 1e-9, "exact within 2x of the Ap bound");

    let snap = service.metrics_snapshot();
    assert!(snap.counter_value("csj_service_degraded_total", &[("trigger", "deadline")]) >= 1);
    // The degradation is visible on the request trace.
    let trace = service
        .service_traces(8)
        .into_iter()
        .find(|t| t.outcome == "degraded")
        .expect("degraded trace recorded");
    assert!(matches!(
        trace.root.get_attr("degraded"),
        Some(csj_obs::AttrValue::U64(1))
    ));
    assert!(matches!(
        trace.root.get_attr("degrade_trigger"),
        Some(csj_obs::AttrValue::Str(s)) if s.as_str() == "deadline"
    ));
}

/// SLO burn rates must *reconcile* with the four-fates accounting: the
/// `(bad, total)` pair behind every `csj_slo_*` burn rate is a delta of
/// the same counters that obey `admitted + shed == submitted` and
/// "completed outcomes partition admitted", so a breached objective
/// without matching fate counters would mean the SLO engine invented
/// traffic. Chaos here is an overloaded 1-worker/1-slot service under
/// zero-deadline pressure: sheds, degradeds and answereds all occur.
#[test]
fn slo_burn_rates_reconcile_with_the_four_fates() {
    use csj_obs::{default_windows, SloEngine};
    use csj_service::service_slos;

    let (engine, x, y) = slow_engine();
    let service = Arc::new(CsjService::start(
        engine,
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            default_deadline: Some(Duration::ZERO),
            ..ServiceConfig::default()
        },
    ));
    // A 1µs latency threshold makes every completed request a bad
    // latency event — the latency objective must breach, and its burn
    // rate must still be explainable from the completion counters.
    let slo = SloEngine::new(service_slos(1), default_windows());
    slo.observe(0, &service.metrics_snapshot());

    // Occupy the worker and the queue slot, then flood (sheds), then
    // let the backlog drain and apply deadline pressure (degradeds).
    let blocker = || Request::Similarity {
        x,
        y,
        method: Some(CsjMethod::ApMinMax),
    };
    let b1 = service.submit(blocker()).expect("first blocker fits");
    while service.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let b2 = service.submit(blocker()).expect("second blocker fits");
    let mut handles = Vec::new();
    for _ in 0..4 {
        let service = Arc::clone(&service);
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let _ = service
                    .submit(Request::Similarity {
                        x,
                        y,
                        method: Some(CsjMethod::ApMinMax),
                    })
                    .map(|t| t.wait());
            }
        }));
    }
    for h in handles {
        h.join().expect("no panic escapes");
    }
    b1.wait().expect("blocker answered");
    b2.wait().expect("blocker answered");
    // One exact join feeds the planner's latency corrections, so the
    // degraded requests below ride a *refined* ladder — and say so.
    service
        .engine()
        .similarity(x, y)
        .expect("exact warm-up join");
    for _ in 0..3 {
        let r = service
            .call(Request::Similarity { x, y, method: None })
            .expect("deadline pressure degrades, not fails");
        assert!(r.degraded);
        assert_eq!(r.plan_source, Some("refined"), "warm planner ladder");
    }

    // One evaluation window covering the whole soak.
    let snap = service.metrics_snapshot();
    slo.observe(300_000_000, &snap);
    let statuses = slo.evaluate(300_000_000);

    let submitted = snap.counter_value("csj_service_submitted_total", &[]);
    let admitted = snap.counter_value("csj_service_admitted_total", &[]);
    let shed = snap.counter_value("csj_service_shed_total", &[]);
    let answered = snap.counter_value("csj_service_completed_total", &[("outcome", "answered")]);
    let degraded = snap.counter_value("csj_service_completed_total", &[("outcome", "degraded")]);
    let failed = snap.counter_value("csj_service_completed_total", &[("outcome", "failed")]);
    assert_eq!(admitted + shed, submitted, "four-fates identity");
    assert_eq!(answered + degraded + failed, admitted, "outcomes partition");
    assert!(shed > 0, "flooding a 1-worker/1-slot service must shed");
    assert!(degraded >= 3);

    let five_min: Vec<_> = statuses.iter().filter(|s| s.window == "5m").collect();
    assert_eq!(five_min.len(), 3, "one status per objective");
    let mut breaches = 0;
    for s in five_min {
        match s.objective.as_str() {
            "shed_fraction" => {
                assert_eq!(s.bad as u64, shed, "SLO bad == shed counter delta");
                assert_eq!(s.total as u64, submitted);
            }
            "degraded_fraction" => {
                assert_eq!(s.bad as u64, degraded);
                assert_eq!(s.total as u64, answered + degraded + failed);
            }
            "request_latency" => {
                assert_eq!(
                    s.total as u64,
                    answered + degraded + failed,
                    "latency histogram observes exactly the completed requests"
                );
            }
            other => panic!("unexpected objective {other}"),
        }
        if s.breached {
            breaches += 1;
            assert!(
                s.bad > 0.0,
                "a breached objective must have matching bad-fate counters, got {s}"
            );
        }
    }
    assert!(breaches >= 1, "1µs latency budget must breach under load");

    // The exported gauges agree with the evaluated statuses.
    let slo_snap = slo.snapshot();
    assert!(slo_snap
        .metrics
        .iter()
        .any(|m| m.name == "csj_slo_burn_rate"));
}

#[test]
fn shutdown_drains_admitted_requests_then_rejects() {
    let (engine, x, y) = slow_engine();
    let service = CsjService::start(
        engine,
        ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            service
                .submit(Request::Similarity {
                    x,
                    y,
                    method: Some(CsjMethod::ApBaseline),
                })
                .expect("queue has room")
        })
        .collect();
    let engine = service.shutdown();
    // Shutdown drained the queue: every admitted ticket has an answer.
    for t in tickets {
        assert!(t.wait().is_ok(), "admitted requests drain on shutdown");
    }
    assert!(Arc::strong_count(&engine) >= 1);
}

#[test]
fn submit_after_shutdown_is_a_typed_shutdown_error() {
    let (engine, a, n, _) = engine_with_three();
    let service = CsjService::start(engine, ServiceConfig::default());
    // Ticket waits after teardown resolve to Shutdown, not a hang: the
    // drop path closes the queue, so exercise via a drained clone.
    drop(service);
    let (engine2, a2, n2, _) = engine_with_three();
    let service2 = CsjService::start(engine2, ServiceConfig::default());
    let _ = (a, n);
    let ok = service2.call(Request::Similarity {
        x: a2,
        y: n2,
        method: None,
    });
    assert!(ok.is_ok());
}

#[test]
fn merged_snapshot_exposes_engine_and_service_series() {
    let (engine, a, n, _) = engine_with_three();
    let service = CsjService::start(engine, ServiceConfig::default());
    service
        .call(Request::Similarity {
            x: a,
            y: n,
            method: None,
        })
        .unwrap();
    let snap = service.metrics_snapshot();
    // Engine series and service series in one exposition.
    assert!(
        snap.counter_value("csj_queries_total", &[("kind", "similarity")]) >= 1,
        "engine series present in the merged snapshot"
    );
    assert!(snap
        .metrics
        .iter()
        .any(|m| m.name.starts_with("csj_service_")));
    let prom = snap.to_prometheus();
    assert!(prom.contains("csj_service_submitted_total"));
    assert!(!prom.is_empty());
}

#[cfg(feature = "fault-injection")]
mod chaos {
    use super::*;
    use csj_engine::fault::FaultPlan;
    use csj_service::{BreakerConfig, BreakerState};

    fn breaker_config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 3,
            cooldown: Duration::from_millis(50),
            probes: 2,
        }
    }

    /// (c) repeated JoinPanicked outcomes trip the breaker; while it is
    /// open, exact requests degrade; half-open probes reset it.
    #[test]
    fn breaker_trips_degrades_and_recovers() {
        let (mut engine, a, n, _) = engine_with_three();
        // Exactly 3 injected panics: enough to trip, then healed.
        engine.inject_faults(FaultPlan::new().panic_n_times(n.0, 3));
        let service = CsjService::start(
            engine,
            ServiceConfig {
                breaker: breaker_config(),
                ..ServiceConfig::default()
            },
        );
        let similarity = Request::Similarity {
            x: a,
            y: n,
            method: None,
        };

        // Three panicked requests fail typed and trip the breaker.
        for _ in 0..3 {
            let err = service.call(similarity.clone()).unwrap_err();
            assert!(matches!(
                err,
                ServiceError::Engine(csj_engine::EngineError::JoinPanicked { .. })
            ));
        }
        assert_eq!(
            service.breaker_state(CsjMethod::ExMinMax),
            BreakerState::Open
        );

        // Open breaker: the request no longer routes to the broken
        // method — it degrades to the Ap rung (now healed) instead.
        let degraded = service.call(similarity.clone()).expect("degraded answer");
        assert!(degraded.degraded);
        assert_eq!(degraded.degrade_trigger, Some("breaker"));
        let ap = ratio(&degraded);
        assert!(ap > 0.0, "valid Ap result");

        // (d) while open, multi-pair exact queries degrade too, and the
        // degraded answers are sound Ap results.
        let top = service.call(Request::TopK { x: a, k: 2 }).unwrap();
        assert!(top.degraded);
        let ranking = top.value.pairs().unwrap().to_vec();
        assert!(!ranking.is_empty());
        let pairs = service
            .call(Request::PairsAbove { threshold: 0.5 })
            .unwrap();
        assert!(pairs.degraded);
        for p in pairs.value.pairs().unwrap() {
            assert!(
                p.similarity.ratio() >= 0.5,
                "degraded sweep respects the cut"
            );
        }

        // Cooldown, then two successful probes close the breaker.
        std::thread::sleep(Duration::from_millis(60));
        let probe1 = service.call(similarity.clone()).unwrap();
        assert!(!probe1.degraded, "probe runs the exact path");
        let probe2 = service.call(similarity.clone()).unwrap();
        assert!(!probe2.degraded);
        assert_eq!(
            service.breaker_state(CsjMethod::ExMinMax),
            BreakerState::Closed
        );

        // Degraded answers were sound: ap <= exact <= 2 * ap.
        let exact = ratio(&probe1);
        assert!(ap <= exact + 1e-9);
        assert!(exact <= 2.0 * ap + 1e-9);
        for p in &ranking {
            let e = service.engine().similarity(a, p.y).unwrap().ratio();
            assert!(
                p.similarity.ratio() <= e + 1e-9,
                "Ap ranking never over-counts"
            );
        }

        // Every transition direction was observed.
        let snap = service.metrics_snapshot();
        for to in ["open", "half_open", "closed"] {
            assert!(
                snap.counter_value(
                    "csj_service_breaker_transitions_total",
                    &[("method", "ex-minmax"), ("to", to)]
                ) >= 1,
                "missing breaker transition to {to}"
            );
        }
        assert!(snap.counter_value("csj_service_degraded_total", &[("trigger", "breaker")]) >= 3);
        assert_eq!(
            snap.counter_value("csj_service_completed_total", &[("outcome", "failed")]),
            3
        );
    }

    /// Transient injected faults are retried with backoff; a permanent
    /// fault exhausts the retries into a typed failure.
    #[test]
    fn permanent_fault_exhausts_retries_into_typed_failure() {
        let (mut engine, a, n, _) = engine_with_three();
        engine.inject_faults(FaultPlan::new().error_on(n.0));
        let service = CsjService::start(
            engine,
            ServiceConfig {
                degrade: DegradeConfig {
                    enabled: false,
                    ..DegradeConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let err = service
            .call(Request::Similarity {
                x: a,
                y: n,
                method: None,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Engine(csj_engine::EngineError::Faulted { .. })
        ));
        let snap = service.metrics_snapshot();
        assert_eq!(
            snap.counter_value("csj_service_retries_total", &[]),
            u64::from(service.config().retry.max_retries),
            "each retry slept through its backoff before refailing"
        );
    }

    /// Degradation disabled: an open breaker rejects with a typed,
    /// retry-after-carrying error instead of degrading.
    #[test]
    fn open_breaker_without_degradation_rejects_typed() {
        let (mut engine, a, n, _) = engine_with_three();
        engine.inject_faults(FaultPlan::new().panic_n_times(n.0, 3));
        let service = CsjService::start(
            engine,
            ServiceConfig {
                breaker: breaker_config(),
                degrade: DegradeConfig {
                    enabled: false,
                    ..DegradeConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let similarity = Request::Similarity {
            x: a,
            y: n,
            method: None,
        };
        for _ in 0..3 {
            let _ = service.call(similarity.clone());
        }
        let err = service.call(similarity).unwrap_err();
        let ServiceError::BreakerOpen {
            method,
            retry_after,
        } = err
        else {
            panic!("expected BreakerOpen, got {err}");
        };
        assert_eq!(method, CsjMethod::ExMinMax);
        assert_eq!(retry_after, breaker_config().cooldown);
    }
}
