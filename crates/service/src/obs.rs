//! Service-level observability: every admission-control, retry,
//! degradation and breaker decision lands in a `csj_service_*` metric
//! and on the request's flight-recorder trace.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use csj_core::CsjMethod;
use csj_obs::{
    Counter, CounterSelector, FlightRecorder, Gauge, LatencyHistogram, MetricsRegistry,
    MetricsSnapshot, Objective, QueryTrace, SloSource,
};

use crate::breaker::{BreakerState, Transition};
use crate::request::Fate;

/// The service's standard SLOs, declared over its own `csj_service_*`
/// series so an [`csj_obs::SloEngine`] fed with
/// [`CsjService::metrics_snapshot`](crate::CsjService::metrics_snapshot)
/// can evaluate burn rates without any extra instrumentation:
///
/// * `request_latency` — ≤1% of requests slower than
///   `latency_threshold_us` (p99 end-to-end latency objective);
/// * `degraded_fraction` — ≤10% of completed requests served degraded;
/// * `shed_fraction` — ≤5% of submitted requests shed at admission.
///
/// The fractions reconcile with the four-fates identities by
/// construction: `degraded_fraction` draws from the same
/// `csj_service_completed_total` family whose outcomes partition
/// admitted-and-resolved requests, and `shed_fraction` is
/// `shed / submitted` with `submitted == admitted + shed`.
pub fn service_slos(latency_threshold_us: u64) -> Vec<Objective> {
    vec![
        Objective {
            name: "request_latency".into(),
            target: 0.01,
            source: SloSource::LatencyAbove {
                histogram: "csj_service_request_seconds".into(),
                labels: vec![],
                threshold_us: latency_threshold_us,
            },
        },
        Objective {
            name: "degraded_fraction".into(),
            target: 0.10,
            source: SloSource::CounterFraction {
                bad: CounterSelector::new(
                    "csj_service_completed_total",
                    &[("outcome", "degraded")],
                ),
                total: CounterSelector::new("csj_service_completed_total", &[]),
            },
        },
        Objective {
            name: "shed_fraction".into(),
            target: 0.05,
            source: SloSource::CounterFraction {
                bad: CounterSelector::new("csj_service_shed_total", &[]),
                total: CounterSelector::new("csj_service_submitted_total", &[]),
            },
        },
    ]
}

/// Degradation triggers (metrics label values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeTrigger {
    /// The primary method's breaker was open.
    Breaker,
    /// Not enough deadline left for an exact attempt (or the exact
    /// attempt exhausted its budget slice).
    Deadline,
    /// A sharded query lost one or more shards: the answer is exact on
    /// what survived but its candidate coverage is incomplete.
    Coverage,
}

impl DegradeTrigger {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            DegradeTrigger::Breaker => "breaker",
            DegradeTrigger::Deadline => "deadline",
            DegradeTrigger::Coverage => "coverage",
        }
    }
}

/// Registry + flight recorder for the service layer. Engine metrics
/// stay in the engine's own registry; [`ServiceObs::snapshot`] output
/// is concatenated with the engine snapshot by the service.
pub struct ServiceObs {
    registry: MetricsRegistry,
    flight: FlightRecorder,
    submitted: Arc<Counter>,
    admitted: Arc<Counter>,
    shed: Arc<Counter>,
    completed_answered: Arc<Counter>,
    completed_degraded: Arc<Counter>,
    completed_failed: Arc<Counter>,
    retries: Arc<Counter>,
    degraded_breaker: Arc<Counter>,
    degraded_deadline: Arc<Counter>,
    degraded_coverage: Arc<Counter>,
    transitions: HashMap<(&'static str, &'static str), Arc<Counter>>,
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
    queue_wait: Arc<LatencyHistogram>,
    request_latency: Arc<LatencyHistogram>,
}

impl ServiceObs {
    /// Register every service metric; `flight_capacity` bounds the
    /// request-trace ring.
    pub fn new(flight_capacity: usize) -> Self {
        let registry = MetricsRegistry::new();
        let submitted = registry.counter(
            "csj_service_submitted_total",
            "Requests submitted to the service (admitted + shed).",
            vec![],
        );
        let admitted = registry.counter(
            "csj_service_admitted_total",
            "Requests accepted into the admission queue.",
            vec![],
        );
        let shed = registry.counter(
            "csj_service_shed_total",
            "Requests rejected at admission because the queue was full.",
            vec![],
        );
        let completed = |outcome: &'static str| {
            registry.counter(
                "csj_service_completed_total",
                "Admitted requests resolved, by outcome.",
                vec![("outcome", outcome.to_string())],
            )
        };
        let retries = registry.counter(
            "csj_service_retries_total",
            "Transient-failure retries performed (backoff sleeps).",
            vec![],
        );
        let degraded = |trigger: DegradeTrigger| {
            registry.counter(
                "csj_service_degraded_total",
                "Exact requests served by their approximate counterpart, by trigger.",
                vec![("trigger", trigger.label().to_string())],
            )
        };
        let mut transitions = HashMap::new();
        for method in CsjMethod::ALL.into_iter().filter(|m| m.is_exact()) {
            for to in [
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed,
            ] {
                transitions.insert(
                    (method.name(), to.label()),
                    registry.counter(
                        "csj_service_breaker_transitions_total",
                        "Circuit-breaker state transitions, by method and target state.",
                        vec![
                            ("method", method.name().to_string()),
                            ("to", to.label().to_string()),
                        ],
                    ),
                );
            }
        }
        let queue_depth = registry.gauge(
            "csj_service_queue_depth",
            "Requests currently waiting in the admission queue.",
            vec![],
        );
        let inflight = registry.gauge(
            "csj_service_inflight",
            "Requests currently executing on workers.",
            vec![],
        );
        let queue_wait = registry.latency(
            "csj_service_queue_wait_seconds",
            "Time requests spent queued before a worker picked them up.",
            vec![],
        );
        let request_latency = registry.latency(
            "csj_service_request_seconds",
            "End-to-end request latency (queue wait + execution).",
            vec![],
        );
        let completed_answered = completed("answered");
        let completed_degraded = completed("degraded");
        let completed_failed = completed("failed");
        let degraded_breaker = degraded(DegradeTrigger::Breaker);
        let degraded_deadline = degraded(DegradeTrigger::Deadline);
        let degraded_coverage = degraded(DegradeTrigger::Coverage);
        Self {
            registry,
            flight: FlightRecorder::new(flight_capacity),
            submitted,
            admitted,
            shed,
            completed_answered,
            completed_degraded,
            completed_failed,
            retries,
            degraded_breaker,
            degraded_deadline,
            degraded_coverage,
            transitions,
            queue_depth,
            inflight,
            queue_wait,
            request_latency,
        }
    }

    pub(crate) fn on_submitted(&self) {
        self.submitted.inc();
    }

    pub(crate) fn on_admitted(&self, depth: usize) {
        self.admitted.inc();
        self.queue_depth.set(depth as u64);
    }

    pub(crate) fn on_shed(&self) {
        self.shed.inc();
    }

    pub(crate) fn on_dequeued(&self, depth: usize, wait: Duration) {
        self.queue_depth.set(depth as u64);
        self.queue_wait.observe(wait);
    }

    pub(crate) fn on_inflight(&self, n: u64) {
        self.inflight.set(n);
    }

    pub(crate) fn on_retry(&self) {
        self.retries.inc();
    }

    pub(crate) fn on_degraded(&self, trigger: DegradeTrigger) {
        match trigger {
            DegradeTrigger::Breaker => self.degraded_breaker.inc(),
            DegradeTrigger::Deadline => self.degraded_deadline.inc(),
            DegradeTrigger::Coverage => self.degraded_coverage.inc(),
        }
    }

    pub(crate) fn on_transition(&self, t: Transition) {
        if let Some(c) = self.transitions.get(&(t.method.name(), t.to.label())) {
            c.inc();
        }
    }

    pub(crate) fn on_completed(&self, fate: Fate, latency: Duration) {
        self.request_latency.observe(latency);
        match fate {
            Fate::Answered => self.completed_answered.inc(),
            Fate::Degraded => self.completed_degraded.inc(),
            Fate::Failed => self.completed_failed.inc(),
            // Shed requests never complete; counted by `on_shed`.
            Fate::Shed => {}
        }
    }

    pub(crate) fn record_trace(&self, trace: QueryTrace) {
        self.flight.record(trace);
    }

    /// The most recent `n` service request traces, oldest first.
    pub fn traces(&self, n: usize) -> Vec<QueryTrace> {
        self.flight.last(n)
    }

    /// Snapshot of every `csj_service_*` series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_decision_has_a_series() {
        let obs = ServiceObs::new(8);
        obs.on_submitted();
        obs.on_admitted(1);
        obs.on_shed();
        obs.on_retry();
        obs.on_degraded(DegradeTrigger::Breaker);
        obs.on_degraded(DegradeTrigger::Deadline);
        obs.on_degraded(DegradeTrigger::Coverage);
        obs.on_transition(Transition {
            method: CsjMethod::ExMinMax,
            to: BreakerState::Open,
        });
        obs.on_dequeued(0, Duration::from_micros(50));
        obs.on_completed(Fate::Answered, Duration::from_micros(200));
        let snap = obs.snapshot();
        assert_eq!(snap.counter_value("csj_service_submitted_total", &[]), 1);
        assert_eq!(snap.counter_value("csj_service_shed_total", &[]), 1);
        assert_eq!(
            snap.counter_value("csj_service_degraded_total", &[("trigger", "breaker")]),
            1
        );
        assert_eq!(
            snap.counter_value("csj_service_degraded_total", &[("trigger", "coverage")]),
            1
        );
        assert_eq!(
            snap.counter_value(
                "csj_service_breaker_transitions_total",
                &[("method", "ex-minmax"), ("to", "open")]
            ),
            1
        );
        assert_eq!(
            snap.counter_value("csj_service_completed_total", &[("outcome", "answered")]),
            1
        );
        // The exposition must lint clean (HELP/TYPE, histogram shape).
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE csj_service_queue_wait_seconds histogram"));
        assert!(prom.contains("csj_service_request_seconds_bucket{le=\"+Inf\"}"));
    }

    #[test]
    fn ap_methods_have_no_breaker_series() {
        let obs = ServiceObs::new(1);
        // Recording a transition for an Ap method is a no-op, not a panic.
        obs.on_transition(Transition {
            method: CsjMethod::ApMinMax,
            to: BreakerState::Open,
        });
        assert_eq!(
            obs.snapshot()
                .find(
                    "csj_service_breaker_transitions_total",
                    &[("method", "ap-minmax")]
                )
                .map(|_| ()),
            None
        );
    }
}
