//! Deterministic capped, jittered exponential backoff.
//!
//! Delays double per retry up to a cap, then shrink by a jitter factor
//! drawn from `[1 - jitter, 1]` via a seeded xorshift — deterministic
//! given `(seed, attempt)` so tests and the `serve-sim` soak replay
//! identically, while distinct request ids still decorrelate their
//! retry storms.

use std::time::Duration;

use crate::config::RetryPolicy;

/// One step of xorshift64*: a full-period, statistically decent PRNG in
/// three shifts and a multiply (Vigna 2016), plenty for jitter.
fn xorshift64star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Uniform draw in `[0, 1)` from a seed/attempt pair.
fn unit(seed: u64, attempt: u32) -> f64 {
    // Fold the attempt in so successive retries of one request jitter
    // independently; the odd constant keeps seed 0 non-degenerate.
    let mixed = xorshift64star(seed ^ (u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Delay before retry number `attempt` (0-based: the delay between the
/// first failure and the second attempt is `attempt = 0`).
pub fn delay_for(policy: &RetryPolicy, attempt: u32, seed: u64) -> Duration {
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << attempt.min(16))
        .min(policy.max_delay);
    let jitter = policy.jitter.clamp(0.0, 1.0);
    let factor = 1.0 - jitter * unit(seed, attempt);
    exp.mul_f64(factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(jitter: f64) -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            jitter,
        }
    }

    #[test]
    fn no_jitter_doubles_then_caps() {
        let p = policy(0.0);
        assert_eq!(delay_for(&p, 0, 1), Duration::from_millis(10));
        assert_eq!(delay_for(&p, 1, 1), Duration::from_millis(20));
        assert_eq!(delay_for(&p, 2, 1), Duration::from_millis(40));
        assert_eq!(delay_for(&p, 3, 1), Duration::from_millis(80));
        assert_eq!(delay_for(&p, 4, 1), Duration::from_millis(100));
        assert_eq!(delay_for(&p, 60, 1), Duration::from_millis(100));
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let p = policy(0.5);
        for attempt in 0..6 {
            for seed in [0u64, 1, 42, u64::MAX] {
                let d = delay_for(&p, attempt, seed);
                let full = delay_for(&policy(0.0), attempt, seed);
                assert!(d <= full, "jitter never lengthens");
                assert!(d >= full.mul_f64(0.5), "jitter bounded by the fraction");
                assert_eq!(d, delay_for(&p, attempt, seed), "deterministic");
            }
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let p = policy(0.9);
        let a = delay_for(&p, 0, 7);
        let b = delay_for(&p, 0, 8);
        assert_ne!(a, b);
    }
}
