//! The overload-safe query service.
//!
//! [`CsjService`] wraps an `Arc<CsjEngine>` behind a fixed worker pool
//! fed from a bounded admission queue:
//!
//! ```text
//! submit ──► admission queue ──► workers ──► engine
//!    │            (bounded)         │
//!    └─ full? shed with             ├─ breaker gate (per exact method)
//!       Overloaded{retry_after}     ├─ deadline pressure → Ap rung
//!                                   ├─ transient fault → retry+backoff
//!                                   └─ catch_unwind (no panic escapes)
//! ```
//!
//! Every submitted request resolves to exactly one of four fates —
//! answered, degraded-answered, shed, or failed-typed — and every
//! decision on the way (admit/shed/retry/degrade/trip/reset) is counted
//! in a `csj_service_*` metric and stamped on the request's
//! flight-recorder trace.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use csj_core::CsjMethod;
use csj_engine::{
    Budget, Coverage, CsjEngine, EngineError, ExhaustReason, MetricsSnapshot, PairScore, QueryTrace,
};
use csj_obs::Span;

use crate::backoff;
use crate::breaker::{Admission, BreakerState, CircuitBreaker};
use crate::config::ServiceConfig;
use crate::obs::{DegradeTrigger, ServiceObs};
use crate::queue::{BoundedQueue, PushError};
use crate::request::{Fate, Request, Response, ResponseValue, ServiceError};

/// State shared between the front-end and the workers.
struct Shared {
    config: ServiceConfig,
    queue: BoundedQueue<Job>,
    breaker: CircuitBreaker,
    obs: ServiceObs,
    /// EWMA of per-request service time, microseconds (0 = no data yet).
    ewma_us: AtomicU64,
    inflight: AtomicU64,
}

/// One queued request.
struct Job {
    id: u64,
    request: Request,
    submitted_at: Instant,
    deadline: Option<Instant>,
    respond: mpsc::Sender<Result<Response, ServiceError>>,
}

/// Handle to one in-flight request; redeem it with [`Ticket::wait`].
pub struct Ticket {
    /// Service-assigned request id (also the retry-jitter seed).
    pub id: u64,
    rx: mpsc::Receiver<Result<Response, ServiceError>>,
}

impl Ticket {
    /// Block until the request resolves. A service torn down mid-flight
    /// yields [`ServiceError::Shutdown`].
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

/// Overload-safe query service over a shared [`CsjEngine`].
pub struct CsjService {
    engine: Arc<CsjEngine>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl CsjService {
    /// Take ownership of an engine (inject faults *before* handing it
    /// over — mutation needs `&mut`), wrap it in an `Arc` and spin up
    /// the worker pool.
    pub fn start(engine: CsjEngine, config: ServiceConfig) -> Self {
        let config = config.sanitized();
        let engine = Arc::new(engine);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            breaker: CircuitBreaker::new(config.breaker),
            obs: ServiceObs::new(config.flight_capacity),
            ewma_us: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            config,
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("csj-service-{i}"))
                    .spawn(move || worker_loop(&engine, &shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self {
            engine,
            shared,
            workers,
            next_id: AtomicU64::new(1),
        }
    }

    /// The wrapped engine (shareable; queries take `&self`).
    pub fn engine(&self) -> &Arc<CsjEngine> {
        &self.engine
    }

    /// The (sanitized) configuration the service runs with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Submit a request. Returns a [`Ticket`] when admitted; a full
    /// queue sheds immediately with [`ServiceError::Overloaded`].
    pub fn submit(&self, request: Request) -> Result<Ticket, ServiceError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let job = Job {
            id,
            request,
            submitted_at: now,
            deadline: self
                .shared
                .config
                .default_deadline
                .and_then(|d| now.checked_add(d)),
            respond: tx,
        };
        match self.shared.queue.try_push(job) {
            Ok(depth) => {
                self.shared.obs.on_submitted();
                self.shared.obs.on_admitted(depth);
                Ok(Ticket { id, rx })
            }
            Err(PushError::Full(job)) => {
                self.shared.obs.on_submitted();
                self.shared.obs.on_shed();
                let retry_after = self.retry_after_hint();
                self.shared.obs.record_trace(shed_trace(&job, retry_after));
                Err(ServiceError::Overloaded { retry_after })
            }
            // Closed queue: the service is down; nothing is counted so
            // the submitted == admitted + shed identity holds for the
            // service's lifetime.
            Err(PushError::Closed(_)) => Err(ServiceError::Shutdown),
        }
    }

    /// Submit and wait: the synchronous convenience wrapper.
    pub fn call(&self, request: Request) -> Result<Response, ServiceError> {
        self.submit(request)?.wait()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Current breaker state for one method.
    pub fn breaker_state(&self, method: CsjMethod) -> BreakerState {
        self.shared.breaker.state(method)
    }

    /// Merged point-in-time snapshot: every engine `csj_*` series plus
    /// the service's `csj_service_*` series.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.engine.metrics_snapshot();
        snap.metrics.extend(self.service_metrics().metrics);
        snap
    }

    /// Just the service's own `csj_service_*` series.
    pub fn service_metrics(&self) -> MetricsSnapshot {
        self.shared
            .obs
            .on_inflight(self.shared.inflight.load(Ordering::Relaxed));
        self.shared.obs.snapshot()
    }

    /// The most recent `n` service request traces, oldest first.
    pub fn service_traces(&self, n: usize) -> Vec<QueryTrace> {
        self.shared.obs.traces(n)
    }

    /// The most recent `n` engine-level query traces, oldest first.
    pub fn engine_traces(&self, n: usize) -> Vec<QueryTrace> {
        self.engine.traces(n)
    }

    /// Estimated wait until capacity frees up: EWMA service time ×
    /// backlog / workers, clamped to `[1ms, 5s]`.
    fn retry_after_hint(&self) -> Duration {
        let ewma = self.shared.ewma_us.load(Ordering::Relaxed).max(1_000);
        let backlog =
            self.shared.queue.len() as u64 + self.shared.inflight.load(Ordering::Relaxed) + 1;
        let us = ewma
            .saturating_mul(backlog)
            .checked_div(self.shared.config.workers as u64)
            .unwrap_or(u64::MAX);
        Duration::from_micros(us.clamp(1_000, 5_000_000))
    }

    /// Drain the queue (admitted requests still get answers), stop the
    /// workers and hand the engine back.
    pub fn shutdown(mut self) -> Arc<CsjEngine> {
        self.shutdown_inner();
        Arc::clone(&self.engine)
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CsjService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(engine: &CsjEngine, shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let wait = job.submitted_at.elapsed();
        shared.obs.on_dequeued(shared.queue.len(), wait);
        let inflight = shared.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        shared.obs.on_inflight(inflight);
        let started = Instant::now();
        // Engine joins are already panic-isolated; this boundary exists
        // so that even a bug in the service itself resolves the request
        // instead of killing the worker.
        let result = catch_unwind(AssertUnwindSafe(|| execute(engine, shared, &job)))
            .unwrap_or_else(|payload| {
                Err(ServiceError::Internal {
                    message: panic_message(payload),
                })
            });
        update_ewma(&shared.ewma_us, started.elapsed());
        let fate = Fate::of(&result);
        shared.obs.on_completed(fate, job.submitted_at.elapsed());
        shared
            .obs
            .record_trace(request_trace(&job, &result, fate, wait));
        let _ = job.respond.send(result);
        let inflight = shared.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        shared.obs.on_inflight(inflight);
    }
}

/// Run one admitted request through the breaker gate, the degradation
/// ladder and the retry loop. Called under the worker's panic boundary.
fn execute(engine: &CsjEngine, shared: &Shared, job: &Job) -> Result<Response, ServiceError> {
    let refine = engine.config().refine_method;
    let method = job.request.primary_method(refine);
    let mut retries = 0u32;

    // Breaker gate — only exact methods are gated (the Ap rungs are
    // what open breakers degrade *to*).
    let (admission, transition) = if method.is_exact() {
        shared.breaker.admit(method)
    } else {
        (Admission::Allow, None)
    };
    if let Some(t) = transition {
        shared.obs.on_transition(t);
    }
    if admission == Admission::Reject {
        if shared.config.degrade.enabled {
            return degrade(
                engine,
                shared,
                job,
                method,
                DegradeTrigger::Breaker,
                &mut retries,
            );
        }
        return Err(ServiceError::BreakerOpen {
            method,
            retry_after: shared.config.breaker.cooldown,
        });
    }
    let was_probe = admission == Admission::Probe;
    // The breaker outcome must be recorded exactly once per request
    // (probes reserve quota at admission).
    let record_breaker = |failure: bool| {
        if method.is_exact() {
            if let Some(t) = shared.breaker.record(method, was_probe, failure) {
                shared.obs.on_transition(t);
            }
        }
    };

    // Deadline pressure: when an exact attempt cannot possibly finish
    // in the remaining slack, skip straight to the approximate rung.
    // Probes are exempt — a probe exists to test the exact path.
    if !was_probe
        && method.is_exact()
        && shared.config.degrade.enabled
        && job
            .deadline
            .is_some_and(|d| remaining(d) < shared.config.degrade.min_exact_slack)
    {
        record_breaker(false);
        return degrade(
            engine,
            shared,
            job,
            method,
            DegradeTrigger::Deadline,
            &mut retries,
        );
    }

    loop {
        let budget = primary_budget(shared, job.deadline);
        match run_primary(engine, &job.request, method, &budget) {
            Ok((value, exhausted, had_panics, coverage)) => {
                if let Some(reason) = exhausted {
                    // Budget exhaustion with slack remaining: retry (the
                    // exact pass resumes warm from the cache).
                    if can_retry(shared, job, retries) {
                        shared.obs.on_retry();
                        std::thread::sleep(backoff::delay_for(
                            &shared.config.retry,
                            retries,
                            job.id,
                        ));
                        retries += 1;
                        continue;
                    }
                    record_breaker(had_panics);
                    if shared.config.degrade.enabled && method.is_exact() {
                        return degrade(
                            engine,
                            shared,
                            job,
                            method,
                            DegradeTrigger::Deadline,
                            &mut retries,
                        );
                    }
                    return Ok(Response {
                        value,
                        degraded: false,
                        degrade_trigger: None,
                        degrade_note: None,
                        plan_source: None,
                        retries,
                        exhausted: Some(reason),
                        coverage,
                    });
                }
                record_breaker(had_panics);
                // Lost shards degrade through the coverage channel: the
                // answer is exact on what survived, so there is nothing
                // to retry or to walk the ladder for — the response is
                // marked degraded and carries the typed report.
                if let Some(cov) = coverage.filter(Coverage::is_partial) {
                    shared.obs.on_degraded(DegradeTrigger::Coverage);
                    return Ok(Response {
                        value,
                        degraded: true,
                        degrade_trigger: Some(DegradeTrigger::Coverage.label()),
                        degrade_note: Some(format!(
                            "partial shard coverage: {cov}; surviving results are exact"
                        )),
                        plan_source: None,
                        retries,
                        exhausted: None,
                        coverage,
                    });
                }
                return Ok(Response {
                    value,
                    degraded: false,
                    degrade_trigger: None,
                    degrade_note: None,
                    plan_source: None,
                    retries,
                    exhausted: None,
                    coverage,
                });
            }
            Err(EngineError::Faulted { .. }) if can_retry(shared, job, retries) => {
                shared.obs.on_retry();
                std::thread::sleep(backoff::delay_for(&shared.config.retry, retries, job.id));
                retries += 1;
            }
            Err(e) => {
                record_breaker(matches!(
                    e,
                    EngineError::JoinPanicked { .. } | EngineError::Faulted { .. }
                ));
                return Err(ServiceError::Engine(e));
            }
        }
    }
}

/// One primary (non-degraded) pass:
/// `(value, exhaustion, had_panics, coverage)`.
type Primary = (ResponseValue, Option<ExhaustReason>, bool, Option<Coverage>);

fn run_primary(
    engine: &CsjEngine,
    request: &Request,
    method: CsjMethod,
    budget: &Budget,
) -> Result<Primary, EngineError> {
    // Multi-pair kinds route through the fault-isolated sharded path
    // when the engine enables it; fault-free sharded runs are
    // bit-identical to the flat pipeline, so this is transparent to
    // callers except for the attached coverage report.
    let sharded = engine.config().shard.enabled;
    match request {
        Request::Similarity { x, y, .. } => {
            let s = engine.similarity_with(*x, *y, method)?;
            Ok((ResponseValue::Similarity(s), None, false, None))
        }
        Request::TopK { x, k } => {
            let partial = if sharded {
                engine.top_k_similar_sharded_with_budget(*x, *k, budget)?
            } else {
                engine.top_k_similar_with_budget(*x, *k, budget)?
            };
            Ok((
                ResponseValue::Ranking(partial.value),
                partial.exhausted.map(|m| m.reason),
                false,
                partial.coverage,
            ))
        }
        Request::PairsAbove { threshold } => {
            let partial = if sharded {
                engine.pairs_above_sharded_with_budget(*threshold, budget)?
            } else {
                engine.pairs_above_with_budget(*threshold, budget, None)?
            };
            let had_panics = partial
                .value
                .failed
                .iter()
                .any(|(_, _, e)| matches!(e, EngineError::JoinPanicked { .. }));
            Ok((
                ResponseValue::Pairs(partial.value.pairs),
                partial.exhausted.map(|m| m.reason),
                had_panics,
                partial.coverage,
            ))
        }
    }
}

/// Serve the request off the planner-ranked degradation ladder
/// ([`CsjEngine::degradation_ladder_for`]): cheaper exact siblings
/// first (each behind its own breaker gate), the approximate
/// counterpart as the guaranteed last resort. A rung that serves an
/// `Ap-*` method is always a *sound lower bound*: approximate CSJ
/// never over-counts, and greedy maximal matching reaches at least
/// half the maximum, so the exact score lies in `[ap, 2·ap]`.
fn degrade(
    engine: &CsjEngine,
    shared: &Shared,
    job: &Job,
    method: CsjMethod,
    trigger: DegradeTrigger,
    retries: &mut u32,
) -> Result<Response, ServiceError> {
    shared.obs.on_degraded(trigger);
    let pair = match &job.request {
        Request::Similarity { x, y, .. } => Some((*x, *y)),
        _ => None,
    };
    let (mut ladder, ladder_source) = engine.degradation_ladder_with_source(method, pair);
    if ladder.is_empty() {
        ladder.push(method.approximate_counterpart());
    }
    let note_for = |rung: CsjMethod| {
        if rung.is_exact() {
            format!(
                "served by {} (trigger: {}): exact result from a planner-ranked \
                 sibling method, no approximation involved",
                rung.name(),
                trigger.label()
            )
        } else {
            format!(
                "served by {} (trigger: {}): approximate CSJ never over-counts and greedy \
                 maximal matching is at least half of maximum, so the exact score is within \
                 [score, 2*score]",
                rung.name(),
                trigger.label()
            )
        }
    };
    let respond = |rung: CsjMethod,
                   value: ResponseValue,
                   exhausted: Option<ExhaustReason>,
                   retries: u32| Response {
        value,
        degraded: true,
        degrade_trigger: Some(trigger.label()),
        degrade_note: Some(note_for(rung)),
        plan_source: Some(ladder_source.label()),
        retries,
        exhausted,
        coverage: None,
    };
    match &job.request {
        Request::Similarity { x, y, .. } => {
            let last = *ladder.last().expect("ladder is non-empty");
            for &rung in &ladder {
                // Deadline pressure means an exact pass already failed
                // to fit the slack — exact siblings cost the same order
                // of work, so jump straight to the approximate rungs.
                if rung.is_exact() && trigger == DegradeTrigger::Deadline {
                    continue;
                }
                // Exact rungs pass through their own breaker gate; an
                // open sibling breaker just skips the rung.
                let mut was_probe = false;
                if rung.is_exact() {
                    let (admission, transition) = shared.breaker.admit(rung);
                    if let Some(t) = transition {
                        shared.obs.on_transition(t);
                    }
                    if admission == Admission::Reject {
                        continue;
                    }
                    was_probe = admission == Admission::Probe;
                }
                let record_rung = |failure: bool| {
                    if rung.is_exact() {
                        if let Some(t) = shared.breaker.record(rung, was_probe, failure) {
                            shared.obs.on_transition(t);
                        }
                    }
                };
                loop {
                    match engine.similarity_with(*x, *y, rung) {
                        Ok(s) => {
                            record_rung(false);
                            return Ok(respond(rung, ResponseValue::Similarity(s), None, *retries));
                        }
                        Err(EngineError::Faulted { .. }) if can_retry(shared, job, *retries) => {
                            shared.obs.on_retry();
                            std::thread::sleep(backoff::delay_for(
                                &shared.config.retry,
                                *retries,
                                job.id,
                            ));
                            *retries += 1;
                        }
                        Err(e) if rung != last => {
                            // A failed rung feeds its breaker and the
                            // walk moves down the ladder.
                            record_rung(matches!(
                                e,
                                EngineError::JoinPanicked { .. } | EngineError::Faulted { .. }
                            ));
                            break;
                        }
                        Err(e) => {
                            record_rung(matches!(
                                e,
                                EngineError::JoinPanicked { .. } | EngineError::Faulted { .. }
                            ));
                            return Err(ServiceError::Engine(e));
                        }
                    }
                }
            }
            // The last rung is never exact (the ladder always ends on
            // the approximate counterpart), so the walk above returned.
            unreachable!("degradation ladder always terminates on its last rung")
        }
        Request::TopK { x, k } => {
            let rung = *ladder.last().expect("ladder is non-empty");
            let candidates: Vec<_> = engine.handles().filter(|&h| h != *x).collect();
            let partial = engine
                .screen_with_budget(*x, &candidates, &full_budget(job.deadline))
                .map_err(ServiceError::Engine)?;
            // Top-k is not thresholded: rank *every* screened candidate
            // by its approximate score, not just the shortlist.
            let mut ranked: Vec<PairScore> = partial
                .value
                .shortlisted
                .iter()
                .chain(partial.value.rejected.iter())
                .map(|&(y, similarity)| PairScore {
                    x: *x,
                    y,
                    similarity,
                })
                .collect();
            ranked.sort_by(|p, q| q.similarity.ratio().total_cmp(&p.similarity.ratio()));
            ranked.truncate(*k);
            Ok(respond(
                rung,
                ResponseValue::Ranking(ranked),
                partial.exhausted.map(|m| m.reason),
                *retries,
            ))
        }
        Request::PairsAbove { threshold } => {
            let rung = *ladder.last().expect("ladder is non-empty");
            let partial = engine
                .pairs_above_approx_with_budget(*threshold, &full_budget(job.deadline), None)
                .map_err(ServiceError::Engine)?;
            Ok(respond(
                rung,
                ResponseValue::Pairs(partial.value.pairs),
                partial.exhausted.map(|m| m.reason),
                *retries,
            ))
        }
    }
}

fn remaining(deadline: Instant) -> Duration {
    deadline.saturating_duration_since(Instant::now())
}

/// Budget slice for the primary attempt: with degradation on, only
/// `exact_fraction` of the remaining deadline — the rest is reserve for
/// the approximate fallback.
fn primary_budget(shared: &Shared, deadline: Option<Instant>) -> Budget {
    match deadline {
        None => Budget::unlimited(),
        Some(d) => {
            let rem = remaining(d);
            let slice = if shared.config.degrade.enabled {
                rem.mul_f64(shared.config.degrade.exact_fraction.clamp(0.1, 1.0))
            } else {
                rem
            };
            Budget::unlimited().with_deadline(slice)
        }
    }
}

/// Whatever deadline is left, undivided (degraded rung, last resort).
fn full_budget(deadline: Option<Instant>) -> Budget {
    match deadline {
        None => Budget::unlimited(),
        Some(d) => Budget::unlimited().with_deadline(remaining(d)),
    }
}

/// Retries are bounded by the policy *and* the deadline: a retry whose
/// backoff sleep would eat the remaining slack is pointless.
fn can_retry(shared: &Shared, job: &Job, retries: u32) -> bool {
    if retries >= shared.config.retry.max_retries {
        return false;
    }
    job.deadline.is_none_or(|d| {
        let delay = backoff::delay_for(&shared.config.retry, retries, job.id);
        remaining(d) > delay + shared.config.degrade.min_exact_slack
    })
}

fn update_ewma(cell: &AtomicU64, sample: Duration) {
    let s = sample.as_micros() as u64;
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 { s } else { (old * 4 + s) / 5 };
    cell.store(new, Ordering::Relaxed);
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

fn shed_trace(job: &Job, retry_after: Duration) -> QueryTrace {
    QueryTrace {
        id: 0,
        kind: job.request.kind(),
        outcome: "shed".to_string(),
        root: Span::new("request")
            .attr("kind", job.request.kind())
            .attr("fate", "shed")
            .attr("retry_after_us", retry_after.as_micros() as u64),
    }
}

fn request_trace(
    job: &Job,
    result: &Result<Response, ServiceError>,
    fate: Fate,
    wait: Duration,
) -> QueryTrace {
    let elapsed_us = job.submitted_at.elapsed().as_micros() as u64;
    let mut root = Span::new("request")
        .at(0, elapsed_us)
        .attr("kind", job.request.kind())
        .attr("fate", fate.label())
        .attr("queue_wait_us", wait.as_micros() as u64);
    let outcome = match result {
        Ok(r) => {
            root = root
                .attr("retries", u64::from(r.retries))
                .attr("degraded", u64::from(r.degraded));
            if let Some(trigger) = r.degrade_trigger {
                root = root.attr("degrade_trigger", trigger);
            }
            if let Some(note) = &r.degrade_note {
                root = root.attr("degrade_note", note.clone());
            }
            if let Some(source) = r.plan_source {
                root = root.attr("plan_source", source);
            }
            if let Some(cov) = r.coverage {
                root = root
                    .attr("shards_dispatched", cov.dispatched)
                    .attr("shards_completed", cov.completed)
                    .attr("shards_failed", cov.failed)
                    .attr("shards_cancelled", cov.cancelled)
                    .attr("shards_hedged", cov.hedged)
                    .attr("units_screened", cov.units_screened)
                    .attr("units_skipped", cov.units_skipped);
            }
            match (r.degraded, r.exhausted) {
                (true, _) => "degraded".to_string(),
                (false, Some(reason)) => format!("exhausted:{reason}"),
                (false, None) => "completed".to_string(),
            }
        }
        Err(e) => format!("failed:{e}"),
    };
    QueryTrace {
        id: 0,
        kind: job.request.kind(),
        outcome,
        root,
    }
}
