//! # csj-service — overload-safe serving of CSJ queries
//!
//! The engine answers one query correctly; this crate keeps a *stream*
//! of queries from taking the system down. The paper's online scenarios
//! (partner search, broadcast recommendation) imply a service under
//! open-loop load, and an overloaded exact-CSJ service has a uniquely
//! good escape hatch the paper itself supplies: every Ex-* method has
//! an Ap-* counterpart whose score is a **sound lower bound within a
//! factor of two** (approximate CSJ never over-counts; greedy maximal
//! matching reaches at least half the maximum). Degrading under
//! pressure is therefore not a lie to the caller — it is a documented,
//! bounded approximation.
//!
//! The pieces, each its own module:
//!
//! * [`BoundedQueue`] — admission control: a full queue sheds instantly
//!   with [`ServiceError::Overloaded`] and a `retry_after` hint.
//! * [`CircuitBreaker`] — per-method closed → open → half-open breaker
//!   fed by `JoinPanicked` outcomes; open breakers route Ex-* requests
//!   to their Ap-* rung instead.
//! * [`backoff`](mod@backoff) — deterministic capped, jittered
//!   exponential backoff for transient (injected-fault) failures.
//! * [`CsjService`] — the worker pool tying it together; every request
//!   resolves to exactly one of {answered, degraded-answered, shed,
//!   failed-typed}, and no panic escapes.
//! * [`ServiceObs`] — `csj_service_*` metrics plus a request-level
//!   flight recorder; merged with the engine's snapshot by
//!   [`CsjService::metrics_snapshot`].

pub mod backoff;
mod breaker;
mod config;
mod obs;
mod queue;
mod request;
mod service;

pub use breaker::{Admission, BreakerState, CircuitBreaker, Transition};
pub use config::{BreakerConfig, DegradeConfig, RetryPolicy, ServiceConfig};
pub use obs::{service_slos, DegradeTrigger, ServiceObs};
pub use queue::{BoundedQueue, PushError};
pub use request::{Fate, Request, Response, ResponseValue, ServiceError};
pub use service::{CsjService, Ticket};
