//! Service tuning knobs: worker pool and admission queue sizing, retry
//! policy, circuit-breaker thresholds and the degradation ladder.

use std::time::Duration;

/// Top-level service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads draining the admission queue. Each worker runs one
    /// query at a time, so this is also the concurrency cap.
    pub workers: usize,
    /// Admission queue capacity. A submit that finds the queue full is
    /// *shed* immediately with [`ServiceError::Overloaded`] instead of
    /// blocking the caller.
    ///
    /// [`ServiceError::Overloaded`]: crate::ServiceError::Overloaded
    pub queue_capacity: usize,
    /// Wall-clock deadline applied to every request (measured from
    /// submission, so time spent queued counts). `None` means requests
    /// run unbounded.
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient failures (injected faults).
    pub retry: RetryPolicy,
    /// Per-method circuit breaker thresholds.
    pub breaker: BreakerConfig,
    /// Exact→approximate degradation ladder.
    pub degrade: DegradeConfig,
    /// Flight-recorder depth for service-level request traces.
    pub flight_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            default_deadline: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degrade: DegradeConfig::default(),
            flight_capacity: 128,
        }
    }
}

impl ServiceConfig {
    /// Normalise degenerate values (zero workers/capacity) to 1.
    pub(crate) fn sanitized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.flight_capacity = self.flight_capacity.max(1);
        self
    }
}

/// Capped, jittered exponential backoff for transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            jitter: 0.5,
        }
    }
}

/// Per-method circuit-breaker thresholds (closed → open → half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window of recent outcomes tracked per method.
    pub window: usize,
    /// Failures within the window that trip the breaker open.
    pub failure_threshold: usize,
    /// How long an open breaker rejects before allowing probes.
    pub cooldown: Duration,
    /// Consecutive probe successes in half-open that close the breaker
    /// (also the cap on concurrent probes).
    pub probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
            probes: 2,
        }
    }
}

/// Exact→approximate degradation ladder settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeConfig {
    /// Whether Ex-* requests may degrade to their Ap-* counterpart at
    /// all. With this off, an open breaker rejects with
    /// [`ServiceError::BreakerOpen`] and deadline pressure simply runs
    /// the exact query with whatever budget is left.
    ///
    /// [`ServiceError::BreakerOpen`]: crate::ServiceError::BreakerOpen
    pub enabled: bool,
    /// Fraction of the remaining deadline granted to the exact attempt;
    /// the rest is held in reserve so an approximate fallback can still
    /// answer in time. Clamped to `[0.1, 1.0]`.
    pub exact_fraction: f64,
    /// Below this much remaining deadline an exact attempt is hopeless:
    /// skip straight to the approximate rung (trigger `deadline`).
    pub min_exact_slack: Duration,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            exact_fraction: 0.6,
            min_exact_slack: Duration::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_clamps_zeroes() {
        let c = ServiceConfig {
            workers: 0,
            queue_capacity: 0,
            flight_capacity: 0,
            ..ServiceConfig::default()
        }
        .sanitized();
        assert_eq!(c.workers, 1);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.flight_capacity, 1);
    }
}
