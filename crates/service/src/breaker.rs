//! Per-method circuit breaker (closed → open → half-open).
//!
//! Each of the eight CSJ methods gets its own breaker: a fault plan
//! that makes one exact method panic repeatedly must not take down the
//! approximate rungs the service degrades to. Failures are counted over
//! a *sliding window* of recent outcomes (not consecutive failures), so
//! a method failing 5 of its last 16 requests trips even when healthy
//! requests are interleaved.
//!
//! States:
//! * **Closed** — requests flow; outcomes feed the window.
//! * **Open** — requests are rejected (the service degrades them)
//!   until `cooldown` elapses.
//! * **Half-open** — up to `probes` concurrent probe requests are let
//!   through; `probes` successes close the breaker, any probe failure
//!   reopens it and restarts the cooldown.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use csj_core::CsjMethod;

use crate::config::BreakerConfig;

/// Breaker state, per method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests rejected until the cooldown elapses.
    Open,
    /// Cooling down: a bounded number of probes test the method.
    HalfOpen,
}

impl BreakerState {
    /// Stable label used in metrics (`to="open"` etc.).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What the breaker says about one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: run normally.
    Allow,
    /// Half-open breaker: run as a probe (the outcome decides whether
    /// the breaker closes or reopens).
    Probe,
    /// Open breaker (or probe quota exhausted): do not run this method.
    Reject,
}

/// A state change, reported so the caller can count it in metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The method whose breaker moved.
    pub method: CsjMethod,
    /// The state it moved to.
    pub to: BreakerState,
}

#[derive(Debug)]
struct Slot {
    state: BreakerState,
    /// Recent outcomes, `true` = failure, newest at the back.
    window: VecDeque<bool>,
    failures: usize,
    opened_at: Option<Instant>,
    probes_inflight: usize,
    probe_successes: usize,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: BreakerState::Closed,
            window: VecDeque::new(),
            failures: 0,
            opened_at: None,
            probes_inflight: 0,
            probe_successes: 0,
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some(Instant::now());
        self.window.clear();
        self.failures = 0;
        self.probes_inflight = 0;
        self.probe_successes = 0;
    }
}

/// One breaker per CSJ method.
pub struct CircuitBreaker {
    config: BreakerConfig,
    slots: Vec<Mutex<Slot>>,
}

fn method_index(method: CsjMethod) -> usize {
    CsjMethod::ALL
        .iter()
        .position(|&m| m == method)
        .expect("every method is in ALL")
}

impl CircuitBreaker {
    /// A breaker bank with one slot per method.
    pub fn new(config: BreakerConfig) -> Self {
        let config = BreakerConfig {
            window: config.window.max(1),
            failure_threshold: config.failure_threshold.max(1),
            probes: config.probes.max(1),
            ..config
        };
        Self {
            config,
            slots: CsjMethod::ALL
                .iter()
                .map(|_| Mutex::new(Slot::new()))
                .collect(),
        }
    }

    fn slot(&self, method: CsjMethod) -> std::sync::MutexGuard<'_, Slot> {
        self.slots[method_index(method)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Current state of one method's breaker (report-only: does not
    /// advance open → half-open; [`admit`](Self::admit) does that).
    pub fn state(&self, method: CsjMethod) -> BreakerState {
        self.slot(method).state
    }

    /// Gate one request. `Probe` admissions **must** be paired with a
    /// later [`record`](Self::record) call with `was_probe = true`, or
    /// the probe quota leaks.
    pub fn admit(&self, method: CsjMethod) -> (Admission, Option<Transition>) {
        let mut slot = self.slot(method);
        match slot.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::Open => {
                let cooled = slot
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.config.cooldown);
                if cooled {
                    slot.state = BreakerState::HalfOpen;
                    slot.probes_inflight = 1;
                    slot.probe_successes = 0;
                    (
                        Admission::Probe,
                        Some(Transition {
                            method,
                            to: BreakerState::HalfOpen,
                        }),
                    )
                } else {
                    (Admission::Reject, None)
                }
            }
            BreakerState::HalfOpen => {
                if slot.probes_inflight < self.config.probes {
                    slot.probes_inflight += 1;
                    (Admission::Probe, None)
                } else {
                    (Admission::Reject, None)
                }
            }
        }
    }

    /// Feed one outcome back. Returns the transition it caused, if any.
    pub fn record(&self, method: CsjMethod, was_probe: bool, failure: bool) -> Option<Transition> {
        let mut slot = self.slot(method);
        if was_probe {
            slot.probes_inflight = slot.probes_inflight.saturating_sub(1);
            if failure {
                slot.trip();
                return Some(Transition {
                    method,
                    to: BreakerState::Open,
                });
            }
            slot.probe_successes += 1;
            if slot.probe_successes >= self.config.probes {
                slot.state = BreakerState::Closed;
                slot.opened_at = None;
                slot.probes_inflight = 0;
                slot.probe_successes = 0;
                return Some(Transition {
                    method,
                    to: BreakerState::Closed,
                });
            }
            return None;
        }
        // Non-probe outcomes only matter while closed; a request that
        // was admitted before a trip must not perturb the open state.
        if slot.state != BreakerState::Closed {
            return None;
        }
        if slot.window.len() == self.config.window && slot.window.pop_front() == Some(true) {
            slot.failures = slot.failures.saturating_sub(1);
        }
        slot.window.push_back(failure);
        if failure {
            slot.failures += 1;
            if slot.failures >= self.config.failure_threshold {
                slot.trip();
                return Some(Transition {
                    method,
                    to: BreakerState::Open,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn config(cooldown: Duration) -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 3,
            cooldown,
            probes: 2,
        }
    }

    const M: CsjMethod = CsjMethod::ExMinMax;

    #[test]
    fn trips_after_threshold_failures_in_window() {
        let b = CircuitBreaker::new(config(Duration::from_secs(60)));
        assert_eq!(b.record(M, false, true), None);
        assert_eq!(b.record(M, false, false), None);
        assert_eq!(b.record(M, false, true), None);
        let t = b.record(M, false, true).expect("third failure trips");
        assert_eq!(t.to, BreakerState::Open);
        assert_eq!(b.state(M), BreakerState::Open);
        assert_eq!(b.admit(M).0, Admission::Reject);
        // Other methods are unaffected.
        assert_eq!(b.state(CsjMethod::ExBaseline), BreakerState::Closed);
        assert_eq!(b.admit(CsjMethod::ApMinMax).0, Admission::Allow);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let b = CircuitBreaker::new(config(Duration::from_secs(60)));
        b.record(M, false, true);
        b.record(M, false, true);
        // Eight successes push both failures out of the window.
        for _ in 0..8 {
            assert_eq!(b.record(M, false, false), None);
        }
        b.record(M, false, true);
        assert_eq!(
            b.record(M, false, true),
            None,
            "only 2 failures in the window now"
        );
        assert_eq!(b.state(M), BreakerState::Closed);
    }

    #[test]
    fn cooldown_then_probes_close() {
        let b = CircuitBreaker::new(config(Duration::ZERO));
        for _ in 0..3 {
            b.record(M, false, true);
        }
        assert_eq!(b.state(M), BreakerState::Open);
        // Zero cooldown: first admit transitions to half-open as a probe.
        let (adm, tr) = b.admit(M);
        assert_eq!(adm, Admission::Probe);
        assert_eq!(tr.unwrap().to, BreakerState::HalfOpen);
        // Second concurrent probe allowed, third rejected (probes = 2).
        assert_eq!(b.admit(M).0, Admission::Probe);
        assert_eq!(b.admit(M).0, Admission::Reject);
        // Two probe successes close the breaker.
        assert_eq!(b.record(M, true, false), None);
        let t = b.record(M, true, false).unwrap();
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.admit(M).0, Admission::Allow);
    }

    #[test]
    fn probe_failure_reopens() {
        let b = CircuitBreaker::new(config(Duration::ZERO));
        for _ in 0..3 {
            b.record(M, false, true);
        }
        assert_eq!(b.admit(M).0, Admission::Probe);
        let t = b.record(M, true, true).unwrap();
        assert_eq!(t.to, BreakerState::Open);
        // Freshly reopened with zero cooldown: next admit probes again.
        assert_eq!(b.admit(M).0, Admission::Probe);
    }

    #[test]
    fn straggler_outcomes_do_not_perturb_open_state() {
        let b = CircuitBreaker::new(config(Duration::from_secs(60)));
        for _ in 0..3 {
            b.record(M, false, true);
        }
        assert_eq!(b.state(M), BreakerState::Open);
        // A request admitted before the trip finishes now: ignored.
        assert_eq!(b.record(M, false, false), None);
        assert_eq!(b.state(M), BreakerState::Open);
    }
}
