//! Request/response vocabulary of the service.
//!
//! Every submitted request resolves to **exactly one** of four fates:
//!
//! * answered — `Ok(Response { degraded: false, .. })`
//! * degraded-answered — `Ok(Response { degraded: true, .. })`
//! * shed — `Err(ServiceError::Overloaded { .. })`
//! * failed-typed — any other `Err` variant
//!
//! The invariant tests in `tests/invariants.rs` pin this down.

use std::time::Duration;

use csj_core::{CsjMethod, Similarity};
use csj_engine::{CommunityHandle, Coverage, EngineError, ExhaustReason, PairScore};

/// One query against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Similarity of one pair. `method: None` uses the engine's
    /// configured refine method (cached); an explicit method runs
    /// uncached.
    Similarity {
        /// The queried community.
        x: CommunityHandle,
        /// The other community.
        y: CommunityHandle,
        /// Override method; `None` = engine's refine method.
        method: Option<CsjMethod>,
    },
    /// The `k` communities most similar to `x` (exact scores).
    TopK {
        /// The queried community.
        x: CommunityHandle,
        /// How many neighbours to return.
        k: usize,
    },
    /// Every admissible pair whose exact similarity reaches `threshold`.
    PairsAbove {
        /// Similarity ratio cut in `[0, 1]`.
        threshold: f64,
    },
}

impl Request {
    /// Stable kind label used in traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Similarity { .. } => "similarity",
            Request::TopK { .. } => "top_k",
            Request::PairsAbove { .. } => "pairs_above",
        }
    }

    /// The method this request's *primary* (non-degraded) path runs:
    /// the explicit method for similarity, the engine's refine method
    /// otherwise. This is the method whose breaker gates the request.
    pub fn primary_method(&self, refine_method: CsjMethod) -> CsjMethod {
        match self {
            Request::Similarity {
                method: Some(m), ..
            } => *m,
            _ => refine_method,
        }
    }
}

/// The answer payload, by request kind.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseValue {
    /// Answer to [`Request::Similarity`].
    Similarity(Similarity),
    /// Answer to [`Request::TopK`], best first.
    Ranking(Vec<PairScore>),
    /// Answer to [`Request::PairsAbove`], best first.
    Pairs(Vec<PairScore>),
}

impl ResponseValue {
    /// The ranked pairs, for the two list-shaped kinds.
    pub fn pairs(&self) -> Option<&[PairScore]> {
        match self {
            ResponseValue::Similarity(_) => None,
            ResponseValue::Ranking(p) | ResponseValue::Pairs(p) => Some(p),
        }
    }
}

/// A completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The answer.
    pub value: ResponseValue,
    /// `true` when an Ex-* request was served by its Ap-* counterpart.
    /// The score is then a **lower bound within a factor of two** of
    /// the exact answer (approximate CSJ never over-counts, and greedy
    /// maximal matchings reach at least half the maximum).
    pub degraded: bool,
    /// What forced the degradation: `"breaker"` or `"deadline"`
    /// (`None` when not degraded).
    pub degrade_trigger: Option<&'static str>,
    /// Why and how the answer was degraded (`None` when not degraded).
    pub degrade_note: Option<String>,
    /// Provenance of the degradation ladder that served the answer:
    /// `"refined"` when latency feedback ranked the rungs, `"static"`
    /// on a cold-start/frozen cost table (`None` when not degraded).
    pub plan_source: Option<&'static str>,
    /// Transparent retry count this request consumed.
    pub retries: u32,
    /// Budget exhaustion the answer absorbed (partial coverage), if any.
    pub exhausted: Option<ExhaustReason>,
    /// Shard completeness report, when the request ran on the sharded
    /// execution path (`None` on flat paths). A partial report
    /// (`coverage.is_partial()`) means the answer is exact on what
    /// survived but one or more shards were lost — such responses are
    /// marked `degraded` with trigger `"coverage"`.
    pub coverage: Option<Coverage>,
}

/// Typed request failures.
#[derive(Debug)]
pub enum ServiceError {
    /// Shed at admission: the service is saturated. Try again after
    /// roughly `retry_after`.
    Overloaded {
        /// Estimated time until capacity frees up (EWMA service time ×
        /// queue depth / workers).
        retry_after: Duration,
    },
    /// The method's circuit breaker is open and degradation is
    /// disabled; retry after the cooldown.
    BreakerOpen {
        /// The gated method.
        method: CsjMethod,
        /// The breaker cooldown remaining estimate.
        retry_after: Duration,
    },
    /// The engine failed the request (unknown handle, join panic, ...).
    Engine(EngineError),
    /// The deadline elapsed before any rung could produce an answer.
    DeadlineExceeded,
    /// The service shut down before the request could run.
    Shutdown,
    /// A panic escaped the engine's isolation and was contained at the
    /// worker boundary instead (should not happen; kept typed so the
    /// caller still gets exactly one resolution).
    Internal {
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { retry_after } => {
                write!(f, "overloaded; retry after {retry_after:?}")
            }
            ServiceError::BreakerOpen {
                method,
                retry_after,
            } => write!(
                f,
                "circuit breaker open for {}; retry after {retry_after:?}",
                method.name()
            ),
            ServiceError::Engine(e) => write!(f, "engine error: {e}"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::Shutdown => write!(f, "service shut down"),
            ServiceError::Internal { message } => write!(f, "internal error: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// The four fates; used for metrics labels and the resolution invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Completed on the primary (exact) path.
    Answered,
    /// Completed on the approximate rung.
    Degraded,
    /// Rejected at admission.
    Shed,
    /// Failed with a typed error.
    Failed,
}

impl Fate {
    /// Classify a finished request.
    pub fn of(result: &Result<Response, ServiceError>) -> Fate {
        match result {
            Ok(r) if r.degraded => Fate::Degraded,
            Ok(_) => Fate::Answered,
            Err(ServiceError::Overloaded { .. }) => Fate::Shed,
            Err(_) => Fate::Failed,
        }
    }

    /// Stable metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Fate::Answered => "answered",
            Fate::Degraded => "degraded",
            Fate::Shed => "shed",
            Fate::Failed => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_method_resolution() {
        let refine = CsjMethod::ExMinMax;
        let explicit = Request::Similarity {
            x: CommunityHandle(0),
            y: CommunityHandle(1),
            method: Some(CsjMethod::ApBaseline),
        };
        assert_eq!(explicit.primary_method(refine), CsjMethod::ApBaseline);
        let default = Request::TopK {
            x: CommunityHandle(0),
            k: 3,
        };
        assert_eq!(default.primary_method(refine), refine);
    }

    #[test]
    fn fate_classification_is_total() {
        let shed: Result<Response, ServiceError> = Err(ServiceError::Overloaded {
            retry_after: Duration::from_millis(1),
        });
        assert_eq!(Fate::of(&shed), Fate::Shed);
        let failed: Result<Response, ServiceError> = Err(ServiceError::Shutdown);
        assert_eq!(Fate::of(&failed), Fate::Failed);
    }
}
