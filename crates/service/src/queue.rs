//! Bounded MPMC admission queue.
//!
//! `Mutex<VecDeque>` + `Condvar`, hand-rolled so the service has no
//! dependency beyond std. Producers never block: [`BoundedQueue::try_push`]
//! is the admission-control point and a full queue is an immediate,
//! typed rejection. Consumers block in [`BoundedQueue::pop`] until an
//! item arrives or the queue is closed *and drained* — shutdown
//! therefore finishes queued work instead of dropping it.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

/// Rejected push: the queue was full (the item comes back) with the
/// observed depth, or the queue was closed.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Queue at capacity; admission control says shed.
    Full(T),
    /// Queue closed; the service is shutting down.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push. Returns the depth *after* the push on
    /// success; a full or closed queue returns the item to the caller.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop. Returns `None` only once the queue is closed *and*
    /// fully drained, so no admitted item is ever lost.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: future pushes fail, poppers drain what remains
    /// and then observe the close.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A worker that panics inside pop()'s critical section would
        // poison the queue; recover — the VecDeque is always sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_and_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut pushed = 0u32;
        let mut shed = 0u32;
        for i in 0..1000u32 {
            match q.try_push(i) {
                Ok(_) => pushed += 1,
                Err(PushError::Full(_)) => shed += 1,
                Err(PushError::Closed(_)) => unreachable!(),
            }
        }
        // Give consumers a moment to drain, then close.
        while !q.is_empty() {
            thread::yield_now();
        }
        q.close();
        let consumed: usize = consumers.into_iter().map(|h| h.join().unwrap().len()).sum();
        assert_eq!(consumed as u32, pushed);
        assert_eq!(pushed + shed, 1000);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(9), Ok(1));
        assert!(matches!(q.try_push(10), Err(PushError::Full(10))));
    }
}
