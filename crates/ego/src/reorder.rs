//! Super-EGO dimension reordering.
//!
//! Kalashnikov observed that EGO's pruning and the short-circuited leaf
//! comparison both benefit enormously from putting the most *selective*
//! dimensions first: a dimension in which values are spread over many grid
//! cells disqualifies pairs early (in the leaf) and separates segments
//! early (in EGO-strategy). Super-EGO therefore reorders dimensions before
//! EGO-sorting.
//!
//! We estimate per-dimension selectivity from cell histograms of a sample
//! of both datasets: the probability that two random points land within
//! one cell of each other, `sum_c h[c] * (h[c-1] + h[c] + h[c+1])`. Lower
//! probability = more selective = earlier position.

use std::collections::HashMap;

use crate::scalar::Scalar;

/// Compute the dimension permutation (most selective first).
///
/// `b_data` / `a_data` are flat row-major coordinate arrays with stride
/// `d`; `width` is the grid cell width (the epsilon radius);
/// `max_sample` caps how many points per dataset are histogrammed
/// (sampling is strided, deterministic).
///
/// Returns a permutation `p` such that new dimension `k` is old dimension
/// `p[k]`. Ties are broken by the original dimension index, so the result
/// is deterministic.
pub fn dimension_order<S: Scalar>(
    d: usize,
    b_data: &[S],
    a_data: &[S],
    width: S,
    max_sample: usize,
) -> Vec<usize> {
    assert!(d > 0, "d must be positive");
    let mut scores: Vec<(f64, usize)> = (0..d).map(|i| (0.0, i)).collect();
    for score in scores.iter_mut() {
        let hb = cell_histogram(b_data, d, score.1, width, max_sample);
        let ha = cell_histogram(a_data, d, score.1, width, max_sample);
        score.0 = collision_probability(&hb, &ha);
    }
    scores.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));
    scores.into_iter().map(|(_, i)| i).collect()
}

/// Apply a dimension permutation to a flat row-major array: new dimension
/// `k` of each row is old dimension `order[k]`.
pub fn permute_dimensions<S: Scalar>(data: &[S], d: usize, order: &[usize]) -> Vec<S> {
    assert_eq!(order.len(), d);
    let mut out = Vec::with_capacity(data.len());
    for row in data.chunks_exact(d) {
        for &dim in order {
            out.push(row[dim]);
        }
    }
    out
}

fn cell_histogram<S: Scalar>(
    data: &[S],
    d: usize,
    dim: usize,
    width: S,
    max_sample: usize,
) -> HashMap<u32, u64> {
    let n = data.len() / d;
    let stride = (n / max_sample.max(1)).max(1);
    let mut h = HashMap::new();
    let mut i = 0;
    while i < n {
        let c = data[i * d + dim].cell(width);
        *h.entry(c).or_insert(0u64) += 1;
        i += stride;
    }
    h
}

/// P(two random points from the two histograms are within one cell).
fn collision_probability(hb: &HashMap<u32, u64>, ha: &HashMap<u32, u64>) -> f64 {
    let nb: u64 = hb.values().sum();
    let na: u64 = ha.values().sum();
    if nb == 0 || na == 0 {
        return 1.0;
    }
    let mut hits = 0.0f64;
    for (&c, &cb) in hb {
        let near = ha.get(&c).copied().unwrap_or(0)
            + c.checked_sub(1)
                .and_then(|p| ha.get(&p))
                .copied()
                .unwrap_or(0)
            + ha.get(&(c.saturating_add(1))).copied().unwrap_or(0);
        hits += cb as f64 * near as f64;
    }
    hits / (nb as f64 * na as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selective_dimension_comes_first() {
        // dim 0: everything in one cell (useless); dim 1: spread out.
        let mut b = Vec::new();
        let mut a = Vec::new();
        for i in 0..50u32 {
            b.extend_from_slice(&[0u32, i * 10]);
            a.extend_from_slice(&[0u32, i * 10 + 500]);
        }
        let order = dimension_order(2, &b, &a, 1, 1000);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn permute_roundtrip() {
        let data = vec![1u32, 2, 3, 4, 5, 6];
        let order = vec![2, 0, 1];
        let p = permute_dimensions(&data, 3, &order);
        assert_eq!(p, vec![3, 1, 2, 6, 4, 5]);
        // Applying the inverse restores the original.
        let mut inverse = vec![0usize; 3];
        for (new_pos, &old_dim) in order.iter().enumerate() {
            inverse[old_dim] = new_pos;
        }
        assert_eq!(permute_dimensions(&p, 3, &inverse), data);
    }

    #[test]
    fn identity_when_dimensions_equivalent() {
        let b = vec![1u32, 1, 2, 2];
        let a = vec![1u32, 1, 2, 2];
        let order = dimension_order(2, &b, &a, 1, 10);
        assert_eq!(order, vec![0, 1]); // tie broken by index
    }

    #[test]
    fn empty_data_is_fine() {
        let order = dimension_order::<u32>(3, &[], &[], 1, 10);
        assert_eq!(order.len(), 3);
    }
}
