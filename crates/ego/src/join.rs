//! The recursive SuperEGO join driver (Algorithm SuperEGO in the paper).
//!
//! ```text
//! if EGO-Strategy(B, A) = 1        -> prune
//! if |B| < t and |A| < t           -> leaf join (nested loop)
//! if |B| < t and |A| >= t          -> split A, recurse twice
//! if |B| >= t and |A| < t          -> split B, recurse twice
//! if |B| >= t and |A| >= t         -> split both, recurse four times
//! ```
//!
//! The driver is agnostic to what happens at a leaf: the paper's
//! Ap-SuperEGO plugs in the greedy one-to-one nested loop of Ap-Baseline,
//! Ex-SuperEGO plugs in an all-pairs enumeration feeding CSF, and the
//! hybrid MinMax–SuperEGO plugs in the encoded nested loop. Because the
//! recursion partitions the cross product `B x A`, every point pair
//! reaches exactly one leaf.

use std::ops::Range;

use crate::points::PointSet;
use crate::predicate::JoinPredicate;
use crate::scalar::Scalar;
use crate::strategy::ego_prune;

/// Tuning parameters of the recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperEgoParams {
    /// Leaf threshold `t`: segments smaller than this on both sides are
    /// joined with a nested loop. Must be at least 2 (a split of a
    /// single-point segment cannot make progress).
    pub t: usize,
}

impl Default for SuperEgoParams {
    fn default() -> Self {
        // Kalashnikov reports small leaf sizes work best; 32 balances
        // recursion overhead against quadratic leaf work on our scales.
        Self { t: 32 }
    }
}

impl SuperEgoParams {
    /// Validate the parameters (t >= 2).
    pub fn validated(self) -> Result<Self, String> {
        if self.t < 2 {
            Err(format!(
                "SuperEGO leaf threshold t must be >= 2, got {}",
                self.t
            ))
        } else {
            Ok(self)
        }
    }
}

/// Counters describing one SuperEGO execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgoStats {
    /// Recursive invocations (including the root).
    pub calls: u64,
    /// Segment pairs pruned by EGO-strategy.
    pub prunes: u64,
    /// Leaf nested-loop joins executed.
    pub leaves: u64,
    /// Point pairs compared inside leaves (filled by the built-in leafs;
    /// custom leaf closures may leave it at 0).
    pub pairs_checked: u64,
}

impl EgoStats {
    /// Accumulate another stats block (used when merging parallel workers).
    pub fn merge(&mut self, other: &EgoStats) {
        self.calls += other.calls;
        self.prunes += other.prunes;
        self.leaves += other.leaves;
        self.pairs_checked += other.pairs_checked;
    }
}

/// Run the SuperEGO recursion over `b` and `a`, invoking `leaf` for every
/// unpruned segment pair below the size threshold.
///
/// # Panics
/// Panics if `params.t < 2` or the point sets have different `d`.
pub fn super_ego_join<S: Scalar, F>(
    b: &PointSet<S>,
    a: &PointSet<S>,
    params: SuperEgoParams,
    stats: &mut EgoStats,
    leaf: &mut F,
) where
    F: FnMut(&PointSet<S>, Range<usize>, &PointSet<S>, Range<usize>, &mut EgoStats),
{
    assert!(params.t >= 2, "SuperEGO leaf threshold t must be >= 2");
    assert_eq!(b.d(), a.d(), "point sets must share dimensionality");
    if b.is_empty() || a.is_empty() {
        return;
    }
    recurse(b, 0..b.len(), a, 0..a.len(), params.t, stats, leaf);
}

fn recurse<S: Scalar, F>(
    b: &PointSet<S>,
    br: Range<usize>,
    a: &PointSet<S>,
    ar: Range<usize>,
    t: usize,
    stats: &mut EgoStats,
    leaf: &mut F,
) where
    F: FnMut(&PointSet<S>, Range<usize>, &PointSet<S>, Range<usize>, &mut EgoStats),
{
    stats.calls += 1;
    if ego_prune(b, &br, a, &ar) {
        stats.prunes += 1;
        return;
    }
    let nb = br.len();
    let na = ar.len();
    match (nb < t, na < t) {
        (true, true) => {
            stats.leaves += 1;
            leaf(b, br, a, ar, stats);
        }
        (true, false) => {
            let (a1, a2) = split(&ar);
            recurse(b, br.clone(), a, a1, t, stats, leaf);
            recurse(b, br, a, a2, t, stats, leaf);
        }
        (false, true) => {
            let (b1, b2) = split(&br);
            recurse(b, b1, a, ar.clone(), t, stats, leaf);
            recurse(b, b2, a, ar, t, stats, leaf);
        }
        (false, false) => {
            let (b1, b2) = split(&br);
            let (a1, a2) = split(&ar);
            recurse(b, b1.clone(), a, a1.clone(), t, stats, leaf);
            recurse(b, b1, a, a2.clone(), t, stats, leaf);
            recurse(b, b2.clone(), a, a1, t, stats, leaf);
            recurse(b, b2, a, a2, t, stats, leaf);
        }
    }
}

/// Split a range at its midpoint (both halves non-empty for len >= 2).
fn split(r: &Range<usize>) -> (Range<usize>, Range<usize>) {
    let mid = r.start + r.len() / 2;
    (r.start..mid, mid..r.end)
}

/// Enumerate all joinable `(b_id, a_id)` pairs under `pred` — the leaf the
/// *exact* SuperEGO methods need. Returned ids are the callers' point ids
/// (see [`PointSet::build`]); order is recursion order (deterministic).
pub fn collect_pairs<S: Scalar>(
    b: &PointSet<S>,
    a: &PointSet<S>,
    pred: JoinPredicate<S>,
    params: SuperEgoParams,
    stats: &mut EgoStats,
) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    super_ego_join(b, a, params, stats, &mut |b, br, a, ar, stats| {
        for i in br {
            let bp = b.point(i);
            for j in ar.clone() {
                stats.pairs_checked += 1;
                if pred.matches(bp, a.point(j)) {
                    pairs.push((b.id(i), a.id(j)));
                }
            }
        }
    });
    pairs
}

/// Parallel variant of [`collect_pairs`] using `threads` scoped workers.
///
/// The recursion is expanded breadth-first until enough independent
/// segment-pair tasks exist, tasks are distributed round-robin, and the
/// per-worker results are concatenated in task order, so the output is a
/// permutation-stable superset ordering of the serial result's pairs
/// (identical *set* of pairs; deterministic order for a fixed thread
/// count).
pub fn collect_pairs_parallel<S: Scalar>(
    b: &PointSet<S>,
    a: &PointSet<S>,
    pred: JoinPredicate<S>,
    params: SuperEgoParams,
    stats: &mut EgoStats,
    threads: usize,
) -> Vec<(u32, u32)> {
    assert!(params.t >= 2, "SuperEGO leaf threshold t must be >= 2");
    if threads <= 1 || b.len() < 2 * params.t {
        return collect_pairs(b, a, pred, params, stats);
    }

    // Expand a frontier of tasks without descending below the threshold.
    let target = threads * 8;
    let mut frontier: Vec<(Range<usize>, Range<usize>)> = vec![(0..b.len(), 0..a.len())];
    loop {
        let expandable = frontier
            .iter()
            .position(|(br, ar)| br.len() >= params.t || ar.len() >= params.t);
        if frontier.len() >= target {
            break;
        }
        let Some(idx) = expandable else { break };
        let (br, ar) = frontier.swap_remove(idx);
        stats.calls += 1;
        if ego_prune(b, &br, a, &ar) {
            stats.prunes += 1;
            continue;
        }
        match (br.len() < params.t, ar.len() < params.t) {
            (true, true) => unreachable!("expandable task below threshold"),
            (true, false) => {
                let (a1, a2) = split(&ar);
                frontier.push((br.clone(), a1));
                frontier.push((br, a2));
            }
            (false, true) => {
                let (b1, b2) = split(&br);
                frontier.push((b1, ar.clone()));
                frontier.push((b2, ar));
            }
            (false, false) => {
                let (b1, b2) = split(&br);
                let (a1, a2) = split(&ar);
                frontier.push((b1.clone(), a1.clone()));
                frontier.push((b1, a2.clone()));
                frontier.push((b2.clone(), a1));
                frontier.push((b2, a2));
            }
        }
    }

    // Deterministic task order for stable output.
    frontier.sort_by_key(|(br, ar)| (br.start, br.end, ar.start, ar.end));

    let results: Vec<(EgoStats, Vec<(u32, u32)>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let frontier = &frontier;
            handles.push(scope.spawn(move || {
                let mut local_stats = EgoStats::default();
                let mut local_pairs = Vec::new();
                let mut task_idx = w;
                while task_idx < frontier.len() {
                    let (br, ar) = frontier[task_idx].clone();
                    recurse(
                        b,
                        br,
                        a,
                        ar,
                        params.t,
                        &mut local_stats,
                        &mut |b, br, a, ar, stats| {
                            for i in br {
                                let bp = b.point(i);
                                for j in ar.clone() {
                                    stats.pairs_checked += 1;
                                    if pred.matches(bp, a.point(j)) {
                                        local_pairs.push((b.id(i), a.id(j)));
                                    }
                                }
                            }
                        },
                    );
                    task_idx += threads;
                }
                (local_stats, local_pairs)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise with the original payload so callers that
                // isolate panics report the real message instead of a
                // generic "worker panicked".
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut pairs = Vec::new();
    for (s, p) in results {
        stats.merge(&s);
        pairs.extend(p);
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_pairs<S: Scalar>(
        b: &PointSet<S>,
        a: &PointSet<S>,
        pred: JoinPredicate<S>,
    ) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for i in 0..b.len() {
            for j in 0..a.len() {
                if pred.matches(b.point(i), a.point(j)) {
                    out.push((b.id(i), a.id(j)));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn make_set(d: usize, width: u32, rows: Vec<Vec<u32>>) -> PointSet<u32> {
        let data: Vec<u32> = rows.into_iter().flatten().collect();
        PointSet::build(d, width, data, None)
    }

    /// Deterministic LCG for reproducible pseudo-random test data.
    fn lcg(seed: u64) -> impl FnMut() -> u32 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        }
    }

    #[test]
    fn matches_brute_force_per_dim() {
        let mut rng = lcg(42);
        let d = 4;
        let eps = 3u32;
        let rows_b: Vec<Vec<u32>> = (0..80)
            .map(|_| (0..d).map(|_| rng() % 40).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..100)
            .map(|_| (0..d).map(|_| rng() % 40).collect())
            .collect();
        let b = make_set(d, eps, rows_b);
        let a = make_set(d, eps, rows_a);
        let pred = JoinPredicate::PerDim { eps };
        let mut stats = EgoStats::default();
        let mut got = collect_pairs(&b, &a, pred, SuperEgoParams { t: 8 }, &mut stats);
        got.sort_unstable();
        assert_eq!(got, brute_pairs(&b, &a, pred));
        assert!(stats.calls > 0);
        assert!(stats.leaves > 0);
    }

    #[test]
    fn pruning_actually_happens_on_separated_data() {
        let mut rng = lcg(7);
        let d = 2;
        let eps = 1u32;
        // Two far-apart clusters.
        let rows_b: Vec<Vec<u32>> = (0..64).map(|_| vec![rng() % 10, rng() % 10]).collect();
        let rows_a: Vec<Vec<u32>> = (0..64)
            .map(|_| vec![1000 + rng() % 10, 1000 + rng() % 10])
            .collect();
        let b = make_set(d, eps, rows_b);
        let a = make_set(d, eps, rows_a);
        let mut stats = EgoStats::default();
        let pairs = collect_pairs(
            &b,
            &a,
            JoinPredicate::PerDim { eps },
            SuperEgoParams { t: 8 },
            &mut stats,
        );
        assert!(pairs.is_empty());
        assert_eq!(stats.prunes, 1, "root call should prune immediately");
        assert_eq!(stats.pairs_checked, 0);
    }

    #[test]
    fn parallel_equals_serial() {
        let mut rng = lcg(99);
        let d = 3;
        let eps = 2u32;
        let rows_b: Vec<Vec<u32>> = (0..300)
            .map(|_| (0..d).map(|_| rng() % 30).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..400)
            .map(|_| (0..d).map(|_| rng() % 30).collect())
            .collect();
        let b = make_set(d, eps, rows_b);
        let a = make_set(d, eps, rows_a);
        let pred = JoinPredicate::PerDim { eps };
        let mut s1 = EgoStats::default();
        let mut serial = collect_pairs(&b, &a, pred, SuperEgoParams { t: 16 }, &mut s1);
        let mut s2 = EgoStats::default();
        let mut parallel =
            collect_pairs_parallel(&b, &a, pred, SuperEgoParams { t: 16 }, &mut s2, 4);
        serial.sort_unstable();
        parallel.sort_unstable();
        assert_eq!(serial, parallel);
        assert_eq!(s1.pairs_checked > 0, s2.pairs_checked > 0);
    }

    #[test]
    fn float_domain_roundtrip() {
        let data_b: Vec<f32> = vec![0.1, 0.2, 0.11, 0.19, 0.9, 0.9];
        let data_a: Vec<f32> = vec![0.12, 0.21, 0.5, 0.5];
        let eps = 0.05f32;
        let b = PointSet::build(2, eps, data_b, None);
        let a = PointSet::build(2, eps, data_a, None);
        let mut stats = EgoStats::default();
        let mut pairs = collect_pairs(
            &b,
            &a,
            JoinPredicate::PerDim { eps },
            SuperEgoParams { t: 2 },
            &mut stats,
        );
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "t must be >= 2")]
    fn rejects_degenerate_threshold() {
        let b = make_set(1, 1, vec![vec![1]]);
        let a = make_set(1, 1, vec![vec![1]]);
        let mut stats = EgoStats::default();
        let _ = collect_pairs(
            &b,
            &a,
            JoinPredicate::PerDim { eps: 1 },
            SuperEgoParams { t: 1 },
            &mut stats,
        );
    }

    #[test]
    fn empty_inputs() {
        let b = make_set(2, 1, vec![]);
        let a = make_set(2, 1, vec![vec![1, 1]]);
        let mut stats = EgoStats::default();
        let pairs = collect_pairs(
            &b,
            &a,
            JoinPredicate::PerDim { eps: 1 },
            SuperEgoParams::default(),
            &mut stats,
        );
        assert!(pairs.is_empty());
        assert_eq!(stats.calls, 0);
    }

    #[test]
    fn l1_predicate_through_recursion() {
        // With the L1 predicate and cell width = eps_sum the grid is
        // coarse; results must still match brute force.
        let mut rng = lcg(5);
        let d = 3;
        let eps_sum = 6.0f64;
        let width = 6u32;
        let rows_b: Vec<Vec<u32>> = (0..60)
            .map(|_| (0..d).map(|_| rng() % 20).collect())
            .collect();
        let rows_a: Vec<Vec<u32>> = (0..60)
            .map(|_| (0..d).map(|_| rng() % 20).collect())
            .collect();
        let b = make_set(d, width, rows_b);
        let a = make_set(d, width, rows_a);
        let pred: JoinPredicate<u32> = JoinPredicate::L1 { eps_sum };
        let mut stats = EgoStats::default();
        let mut got = collect_pairs(&b, &a, pred, SuperEgoParams { t: 4 }, &mut stats);
        got.sort_unstable();
        assert_eq!(got, brute_pairs(&b, &a, pred));
    }
}
