//! Scalar abstraction: the EGO machinery runs on normalised `f32` data
//! (the paper's SuperEGO adaptation) or raw `u32` counters (the hybrid
//! MinMax–SuperEGO method).

/// A coordinate type usable by the EGO grid and join predicates.
///
/// Implementations must satisfy, for the grid/pruning to be sound:
/// if `a.cell(w) >= b.cell(w) + 2` then `|a - b| > w` — i.e. values two or
/// more grid cells apart are farther than one cell width.
pub trait Scalar: Copy + PartialOrd + Send + Sync + std::fmt::Debug + 'static {
    /// Grid cell index for a value, given cell width `width > 0`.
    fn cell(self, width: Self) -> u32;

    /// Whether `|self - other| <= eps`.
    fn within(self, other: Self, eps: Self) -> bool;

    /// `|self - other|` as an `f64` accumulator (exact for `u32`).
    fn abs_diff_f64(self, other: Self) -> f64;
}

impl Scalar for f32 {
    #[inline]
    fn cell(self, width: f32) -> u32 {
        debug_assert!(width > 0.0);
        // Values live in [0, 1]; the division is widened to f64 so a tiny
        // width (e.g. 1/152532) does not lose cell resolution.
        let c = (self as f64 / width as f64).floor();
        if c <= 0.0 {
            0
        } else if c >= u32::MAX as f64 {
            u32::MAX
        } else {
            c as u32
        }
    }

    #[inline]
    fn within(self, other: f32, eps: f32) -> bool {
        (self - other).abs() <= eps
    }

    #[inline]
    fn abs_diff_f64(self, other: f32) -> f64 {
        (self as f64 - other as f64).abs()
    }
}

impl Scalar for u8 {
    #[inline]
    fn cell(self, width: u8) -> u32 {
        debug_assert!(width > 0);
        (self / width) as u32
    }

    #[inline]
    fn within(self, other: u8, eps: u8) -> bool {
        self.abs_diff(other) <= eps
    }

    #[inline]
    fn abs_diff_f64(self, other: u8) -> f64 {
        self.abs_diff(other) as f64
    }
}

impl Scalar for u16 {
    #[inline]
    fn cell(self, width: u16) -> u32 {
        debug_assert!(width > 0);
        (self / width) as u32
    }

    #[inline]
    fn within(self, other: u16, eps: u16) -> bool {
        self.abs_diff(other) <= eps
    }

    #[inline]
    fn abs_diff_f64(self, other: u16) -> f64 {
        self.abs_diff(other) as f64
    }
}

impl Scalar for u32 {
    #[inline]
    fn cell(self, width: u32) -> u32 {
        debug_assert!(width > 0);
        self / width
    }

    #[inline]
    fn within(self, other: u32, eps: u32) -> bool {
        self.abs_diff(other) <= eps
    }

    #[inline]
    fn abs_diff_f64(self, other: u32) -> f64 {
        self.abs_diff(other) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_cells() {
        // 0.25 is exactly representable, so the boundaries are exact.
        let w = 0.25f32;
        assert_eq!(0.0f32.cell(w), 0);
        assert_eq!(0.2f32.cell(w), 0);
        assert_eq!(0.26f32.cell(w), 1);
        assert_eq!(1.0f32.cell(w), 4);
    }

    #[test]
    fn f32_tiny_width_keeps_resolution() {
        let w = 1.0f32 / 152_532.0;
        let v = 100.0f32 / 152_532.0;
        let c = v.cell(w);
        assert!((99..=101).contains(&c), "cell was {c}");
    }

    #[test]
    fn u32_cells() {
        assert_eq!(0u32.cell(3), 0);
        assert_eq!(2u32.cell(3), 0);
        assert_eq!(3u32.cell(3), 1);
        assert_eq!(u32::MAX.cell(1), u32::MAX);
    }

    #[test]
    fn within_semantics() {
        assert!(5u32.within(6, 1));
        assert!(!5u32.within(7, 1));
        assert!(0.5f32.within(0.6, 0.11));
        assert!(!0.5f32.within(0.7, 0.1));
    }

    #[test]
    fn cell_separation_implies_distance_u32() {
        // Soundness contract: cells >= 2 apart means distance > width.
        let w = 7u32;
        for a in 0..100u32 {
            for b in 0..100u32 {
                if a.cell(w) >= b.cell(w) + 2 {
                    assert!(a.abs_diff(b) > w, "a={a} b={b}");
                }
            }
        }
    }
}
