//! Join predicates for the leaf nested-loop join.
//!
//! Super-EGO's leaf join evaluates the epsilon condition with an early
//! exit: the moment one dimension (or the running aggregate) disqualifies
//! a pair, evaluation stops. Combined with dimension reordering (most
//! selective dimensions first) this is the "short-circuited distance
//! computation" of Kalashnikov's Super-EGO.

use crate::scalar::Scalar;

/// The epsilon condition applied to a pair of points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinPredicate<S: Scalar> {
    /// Strict per-dimension condition: `|b_i - a_i| <= eps` for every `i`.
    ///
    /// This is CSJ's native condition. It is what the paper's SuperEGO
    /// adaptation must answer ("we adapted [SuperEGO's] epsilon-join
    /// distance condition to *correctly* apply for CSJ"), evaluated on
    /// whatever scalar domain the point set uses — evaluating it on
    /// normalised `f32` data is what introduces the SuperEGO accuracy
    /// loss on skewed datasets.
    PerDim { eps: S },
    /// Aggregate L1 condition: `sum_i |b_i - a_i| <= eps_sum`.
    ///
    /// The literal reading of "an aggregate distance over d dimensions"
    /// (e.g. `eps_sum = 27 * (1/152532)` for VK). Kept as an ablation: it
    /// accepts a strict superset of the per-dimension matches and is shown
    /// by the `ablation_ego` bench to *overestimate* CSJ similarity, which
    /// is why the per-dimension reading is the faithful adaptation.
    L1 { eps_sum: f64 },
    /// Euclidean condition: `sqrt(sum_i (b_i - a_i)^2) <= eps`.
    ///
    /// The *classic* epsilon-join condition of Böhm et al. and
    /// Kalashnikov's Super-EGO — not used by CSJ itself, but it makes
    /// this crate a complete standalone implementation of the published
    /// epsilon-join framework (see [`crate::epsilon_join`]).
    L2 { eps: f64 },
}

impl<S: Scalar> JoinPredicate<S> {
    /// Evaluate the predicate on two equal-length coordinate slices.
    #[inline]
    pub fn matches(&self, b: &[S], a: &[S]) -> bool {
        debug_assert_eq!(b.len(), a.len());
        match *self {
            JoinPredicate::PerDim { eps } => crate::lanes::all_within(b, a, eps),
            JoinPredicate::L1 { eps_sum } => {
                let mut acc = 0.0f64;
                for (&x, &y) in b.iter().zip(a.iter()) {
                    acc += x.abs_diff_f64(y);
                    if acc > eps_sum {
                        return false;
                    }
                }
                true
            }
            JoinPredicate::L2 { eps } => {
                // Short-circuit on the squared threshold.
                let limit = eps * eps;
                let mut acc = 0.0f64;
                for (&x, &y) in b.iter().zip(a.iter()) {
                    let diff = x.abs_diff_f64(y);
                    acc += diff * diff;
                    if acc > limit {
                        return false;
                    }
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_dim_integer() {
        let p = JoinPredicate::PerDim { eps: 1u32 };
        assert!(p.matches(&[3, 4, 2], &[2, 3, 3]));
        assert!(!p.matches(&[3, 4, 2], &[2, 3, 5]));
    }

    #[test]
    fn per_dim_float_boundary() {
        let p = JoinPredicate::PerDim { eps: 0.5f32 };
        assert!(p.matches(&[0.0, 1.0], &[0.5, 0.5]));
        assert!(!p.matches(&[0.0, 1.0], &[0.6, 0.5]));
    }

    #[test]
    fn l1_short_circuits_but_totals_correctly() {
        let p: JoinPredicate<u32> = JoinPredicate::L1 { eps_sum: 3.0 };
        assert!(p.matches(&[1, 1, 1], &[2, 2, 2]));
        assert!(!p.matches(&[1, 1, 1], &[2, 2, 4]));
        assert!(!p.matches(&[10, 0, 0], &[0, 0, 0]));
    }

    #[test]
    fn l2_euclidean_condition() {
        let p: JoinPredicate<u32> = JoinPredicate::L2 { eps: 5.0 };
        assert!(p.matches(&[0, 0], &[3, 4])); // distance exactly 5
        assert!(!p.matches(&[0, 0], &[3, 5])); // sqrt(34) > 5
        assert!(p.matches(&[7, 7, 7], &[7, 7, 7]));
        // Exactly representable values keep the boundary exact in f32.
        let pf: JoinPredicate<f32> = JoinPredicate::L2 { eps: 0.625 };
        assert!(pf.matches(&[0.0, 0.0], &[0.375, 0.5])); // distance = 0.625
        assert!(!pf.matches(&[0.0, 0.0], &[0.5, 0.5])); // sqrt(0.5) > 0.625
    }

    #[test]
    fn l1_is_superset_of_per_dim() {
        // Any pair accepted per-dim (eps) is accepted by L1 with d * eps.
        let per = JoinPredicate::PerDim { eps: 2u32 };
        let l1: JoinPredicate<u32> = JoinPredicate::L1 { eps_sum: 3.0 * 2.0 };
        let pairs: &[([u32; 3], [u32; 3])] = &[
            ([0, 0, 0], [2, 2, 2]),
            ([5, 5, 5], [3, 6, 7]),
            ([1, 2, 3], [1, 2, 3]),
        ];
        for (b, a) in pairs {
            if per.matches(b, a) {
                assert!(l1.matches(b, a));
            }
        }
        // ...and L1 accepts pairs per-dim rejects (the overestimation).
        assert!(l1.matches(&[0, 0, 0], &[5, 0, 0]));
        assert!(!per.matches(&[0, 0, 0], &[5, 0, 0]));
    }
}
