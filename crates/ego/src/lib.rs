//! # csj-ego — SuperEGO substrate
//!
//! A from-scratch implementation of the Epsilon Grid Order join framework
//! the paper uses as its state-of-the-art competitor:
//!
//! * Böhm et al., *Epsilon Grid Order: An Algorithm for the Similarity Join
//!   on Massive High-Dimensional Data* (SIGMOD 2001) — the EGO order and
//!   the recursive EGO-join with its pruning strategy.
//! * Kalashnikov, *Super-EGO: fast multi-dimensional similarity join*
//!   (VLDB J. 2013) — dimension reordering and the short-circuited leaf
//!   join, which together make EGO competitive ("SuperEGO").
//!
//! The framework is generic over the scalar type: the paper's SuperEGO
//! adaptation works on data normalised to `[0,1]^d` (`f32`, with the
//! documented accuracy loss of the conversion), while the hybrid
//! MinMax–SuperEGO method in `csj-core` reuses the same recursion directly
//! on the raw `u32` counters.
//!
//! Components:
//!
//! * [`PointSet`] — flat SoA storage of points + their grid cells, sorted
//!   in EGO (lexicographic cell) order.
//! * [`normalize_counters`] — the `[0,1]^d` conversion.
//! * [`dimension_order`] — Super-EGO's selectivity-based dimension
//!   reordering.
//! * [`JoinPredicate`] — per-dimension or aggregate-L1 epsilon condition
//!   with short-circuit evaluation.
//! * [`super_ego_join`] — the recursive divide-and-conquer driver
//!   (Algorithm SuperEGO in the paper), pruning with [`ego_prune`] and
//!   handing qualifying segment pairs to a caller-supplied leaf join.
//! * [`collect_pairs`] / [`collect_pairs_parallel`] — convenience leafs
//!   that enumerate all joinable pairs (what the *exact* CSJ methods need).

mod join;
pub mod lanes;
mod order;
mod points;
mod predicate;
mod reorder;
mod scalar;
mod strategy;

pub use join::{collect_pairs, collect_pairs_parallel, super_ego_join, EgoStats, SuperEgoParams};
pub use lanes::{all_within, all_within_scalar};
pub use order::ego_sort_order;
pub use points::PointSet;
pub use predicate::JoinPredicate;
pub use reorder::{dimension_order, permute_dimensions};
pub use scalar::Scalar;
pub use strategy::ego_prune;

/// Normalise integer counters into `[0,1]^d` floats, as the paper does for
/// its SuperEGO methods ("all data are normalized to fit in `[0,1]^d`
/// domain since else the algorithm does not work").
///
/// `max_value` is the largest counter over the whole dataset (the paper
/// reports 152 532 for VK and 500 000 for Synthetic). Values above
/// `max_value` are clamped to 1.0. A `max_value` of zero maps everything
/// to 0.0.
///
/// The conversion to `f32` is intentionally lossy — this is precisely the
/// "normalized data conversion" accuracy loss the paper attributes to the
/// SuperEGO methods on the VK dataset. Each value is divided in `f64` and
/// rounded once to `f32`, so the per-pair outcome of a boundary comparison
/// (`|b_i - a_i|` exactly `eps`) depends on the values involved rather
/// than failing systematically. When `max_value` is a power of two and all
/// counters are below 2^24 the conversion is *exact* and SuperEGO loses
/// nothing — the regime of the paper's Synthetic dataset.
pub fn normalize_counters(data: &[u32], max_value: u32) -> Vec<f32> {
    if max_value == 0 {
        return vec![0.0; data.len()];
    }
    let m = max_value as f64;
    data.iter()
        .map(|&v| ((v as f64 / m) as f32).min(1.0))
        .collect()
}

/// The classic epsilon-join of Böhm et al. / Kalashnikov: all pairs of
/// points within Euclidean distance `eps`, computed with the full
/// Super-EGO machinery (dimension reordering, EGO sort, EGO-strategy
/// pruning, short-circuited leaf comparisons).
///
/// `b_data` / `a_data` are flat row-major coordinate arrays with stride
/// `d`. Returns `(b_index, a_index)` pairs (indices into the input row
/// order).
///
/// ```
/// let b = vec![0.0f32, 0.0, 0.9, 0.9];
/// let a = vec![0.05f32, 0.0, 0.5, 0.5];
/// let pairs = csj_ego::epsilon_join(2, &b, &a, 0.1, Default::default());
/// assert_eq!(pairs, vec![(0, 0)]);
/// ```
pub fn epsilon_join(
    d: usize,
    b_data: &[f32],
    a_data: &[f32],
    eps: f32,
    params: SuperEgoParams,
) -> Vec<(u32, u32)> {
    assert!(eps > 0.0, "epsilon must be positive");
    // Reorder dimensions by selectivity (Super-EGO), then EGO-sort with
    // cell width = eps: a gap of two cells in any dimension implies a
    // per-dimension difference > eps, hence Euclidean distance > eps.
    let order = dimension_order(d, b_data, a_data, eps, 10_000);
    let b_perm = permute_dimensions(b_data, d, &order);
    let a_perm = permute_dimensions(a_data, d, &order);
    let b = PointSet::build(d, eps, b_perm, None);
    let a = PointSet::build(d, eps, a_perm, None);
    let mut stats = EgoStats::default();
    let mut pairs = collect_pairs(
        &b,
        &a,
        JoinPredicate::L2 { eps: eps as f64 },
        params,
        &mut stats,
    );
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_join_matches_brute_force() {
        // Deterministic pseudo-random points in [0, 1]^3.
        let mut state = 0x5EED_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32 % 1000) as f32 / 1000.0
        };
        let d = 3;
        let b: Vec<f32> = (0..d * 120).map(|_| next()).collect();
        let a: Vec<f32> = (0..d * 150).map(|_| next()).collect();
        let eps = 0.15f32;
        let got = epsilon_join(d, &b, &a, eps, SuperEgoParams { t: 8 });
        let mut expected = Vec::new();
        for i in 0..120u32 {
            for j in 0..150u32 {
                let dist: f64 = (0..d)
                    .map(|k| {
                        let diff = b[i as usize * d + k] as f64 - a[j as usize * d + k] as f64;
                        diff * diff
                    })
                    .sum();
                if dist.sqrt() <= eps as f64 {
                    expected.push((i, j));
                }
            }
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "test should exercise non-trivial matches");
    }

    #[test]
    fn normalize_maps_into_unit_interval() {
        let data = vec![0u32, 50, 100];
        let n = normalize_counters(&data, 100);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_clamps_overflow() {
        let n = normalize_counters(&[200], 100);
        assert_eq!(n, vec![1.0]);
    }

    #[test]
    fn normalize_zero_max() {
        let n = normalize_counters(&[1, 2, 3], 0);
        assert_eq!(n, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn normalize_is_lossy_for_large_counters() {
        // (2^25)/(2^26) and (2^25 + 1)/(2^26) differ by 2^-26, below the
        // f32 spacing at 0.5 (2^-24): two distinct counters collapse to
        // the same normalised value. This is the accuracy-loss mechanism
        // the paper describes.
        let m = 1u32 << 26;
        let n = normalize_counters(&[1 << 25, (1 << 25) + 1], m);
        assert_eq!(n[0], n[1]);
    }
}
