//! EGO-Strategy: decide whether two EGO-sorted segments are non-joinable.
//!
//! This is the "core component for efficiency" the paper attributes to
//! SuperEGO (Line 1 of Algorithm SuperEGO: `if EGO-Strategy(B, A, d, eps)
//! = 1 then return ∅`).
//!
//! Soundness argument. Both segments are contiguous runs of EGO-sorted
//! (lexicographic cell order) points. We walk dimensions from the first:
//!
//! * While *each* segment has a constant cell in all earlier dimensions,
//!   the current dimension's cells are themselves sorted within each
//!   segment, so `[first, last]` is the segment's exact cell range in that
//!   dimension.
//! * If those ranges are separated by **two or more cells**, every cross
//!   pair differs by more than one cell width in this dimension — and one
//!   cell width is the epsilon radius — so no pair can join: prune.
//! * If the ranges are not separated but some of the four boundary cells
//!   differ, deeper dimensions are no longer totally ordered within the
//!   segments and nothing further can be concluded: stop, don't prune.

use crate::points::PointSet;
use crate::scalar::Scalar;
use std::ops::Range;

/// Returns `true` when segments `br` of `b` and `ar` of `a` are guaranteed
/// non-joinable under a per-dimension epsilon equal to the grid cell width.
///
/// Empty segments are trivially non-joinable.
pub fn ego_prune<S: Scalar>(
    b: &PointSet<S>,
    br: &Range<usize>,
    a: &PointSet<S>,
    ar: &Range<usize>,
) -> bool {
    if br.is_empty() || ar.is_empty() {
        return true;
    }
    debug_assert_eq!(b.d(), a.d());
    let (b_first, b_last) = (br.start, br.end - 1);
    let (a_first, a_last) = (ar.start, ar.end - 1);
    for dim in 0..b.d() {
        let bf = b.cell(b_first, dim);
        let bl = b.cell(b_last, dim);
        let af = a.cell(a_first, dim);
        let al = a.cell(a_last, dim);
        // Exact ranges in this dimension (valid because all earlier
        // dimensions were constant across both segments): prune on a gap
        // of at least two cells.
        if bf > al.saturating_add(1) || af > bl.saturating_add(1) {
            return true;
        }
        if !(bf == bl && af == al) {
            // Cells vary within a segment here, so deeper dimensions are
            // no longer totally ordered within the segments: stop.
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(d: usize, width: u32, rows: &[&[u32]]) -> PointSet<u32> {
        let data: Vec<u32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        PointSet::build(d, width, data, None)
    }

    #[test]
    fn prunes_far_segments_first_dim() {
        let b = set(2, 1, &[&[0, 0], &[1, 0]]);
        let a = set(2, 1, &[&[5, 0], &[6, 0]]);
        assert!(ego_prune(&b, &(0..2), &a, &(0..2)));
    }

    #[test]
    fn keeps_adjacent_cells() {
        // One cell apart: values may still be within one width.
        let b = set(2, 1, &[&[0, 0]]);
        let a = set(2, 1, &[&[1, 1]]);
        assert!(!ego_prune(&b, &(0..1), &a, &(0..1)));
    }

    #[test]
    fn descends_through_constant_prefix() {
        // First dim identical everywhere; second dim separated by > 1 cell.
        let b = set(2, 1, &[&[3, 0], &[3, 1]]);
        let a = set(2, 1, &[&[3, 7], &[3, 9]]);
        assert!(ego_prune(&b, &(0..2), &a, &(0..2)));
    }

    #[test]
    fn stops_when_cells_diverge_without_gap() {
        // First dim ranges overlap but are not constant: cannot conclude.
        let b = set(2, 1, &[&[0, 0], &[1, 0]]);
        let a = set(2, 1, &[&[1, 9], &[2, 9]]);
        assert!(!ego_prune(&b, &(0..2), &a, &(0..2)));
    }

    #[test]
    fn empty_segment_prunes() {
        let b = set(1, 1, &[&[0]]);
        let a = set(1, 1, &[&[0]]);
        assert!(ego_prune(&b, &(0..0), &a, &(0..1)));
        assert!(ego_prune(&b, &(0..1), &a, &(1..1)));
    }

    #[test]
    fn never_prunes_joinable_pairs_exhaustive() {
        // Exhaustive soundness check on a small 2-d integer grid: if any
        // cross pair satisfies the per-dim condition, ego_prune must be
        // false for the full segments.
        let eps = 2u32;
        let vals: Vec<[u32; 2]> = (0..6)
            .flat_map(|x| (0..6).map(move |y| [x * 2, y * 2]))
            .collect();
        for chunk_b in vals.chunks(4) {
            for chunk_a in vals.chunks(4) {
                let rows_b: Vec<&[u32]> = chunk_b.iter().map(|r| &r[..]).collect();
                let rows_a: Vec<&[u32]> = chunk_a.iter().map(|r| &r[..]).collect();
                let b = set(2, eps, &rows_b);
                let a = set(2, eps, &rows_a);
                let joinable = (0..b.len()).any(|i| {
                    (0..a.len()).any(|j| {
                        b.point(i)
                            .iter()
                            .zip(a.point(j))
                            .all(|(&x, &y)| x.abs_diff(y) <= eps)
                    })
                });
                if joinable {
                    assert!(
                        !ego_prune(&b, &(0..b.len()), &a, &(0..a.len())),
                        "pruned a joinable segment pair"
                    );
                }
            }
        }
    }
}
