//! Epsilon Grid Order (EGO) sorting.
//!
//! The EGO of Böhm et al. lays an epsilon-width grid over the space and
//! orders points lexicographically by their cell coordinates. Sorting both
//! datasets in this order makes joinable points *cluster*: a contiguous
//! segment spans a small cell range in the leading dimensions, which is
//! what the EGO pruning strategy exploits.

/// Compute the permutation that sorts points into EGO order.
///
/// `cells` is flat row-major, `n * d` cell coordinates. Returns sorted
/// point indices; ties keep their original relative order (stable), so the
/// result is deterministic.
pub fn ego_sort_order(d: usize, cells: &[u32]) -> Vec<u32> {
    if d == 0 {
        return Vec::new();
    }
    debug_assert_eq!(cells.len() % d, 0);
    let n = cells.len() / d;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&x, &y| {
        let cx = &cells[x as usize * d..x as usize * d + d];
        let cy = &cells[y as usize * d..y as usize * d + d];
        cx.cmp(cy)
    });
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_lexicographically() {
        // Points (cells): [1,0], [0,5], [0,2]
        let cells = vec![1, 0, 0, 5, 0, 2];
        let perm = ego_sort_order(2, &cells);
        assert_eq!(perm, vec![2, 1, 0]);
    }

    #[test]
    fn stable_on_ties() {
        let cells = vec![3, 3, 3, 3];
        let perm = ego_sort_order(2, &cells);
        assert_eq!(perm, vec![0, 1]);
    }

    #[test]
    fn empty() {
        assert!(ego_sort_order(4, &[]).is_empty());
        assert!(ego_sort_order(0, &[]).is_empty());
    }

    #[test]
    fn single_dimension() {
        let cells = vec![9, 1, 5];
        assert_eq!(ego_sort_order(1, &cells), vec![1, 2, 0]);
    }
}
