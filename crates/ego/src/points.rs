//! Flat SoA point storage sorted in Epsilon Grid Order.

use crate::order::ego_sort_order;
use crate::scalar::Scalar;

/// A set of d-dimensional points with precomputed grid cells, stored flat
/// (stride `d`) and sorted in EGO (lexicographic cell) order.
///
/// `ids[i]` is the caller's identifier for sorted point `i` (for CSJ, the
/// user's index within its community), so join results can be mapped back.
#[derive(Debug, Clone)]
pub struct PointSet<S: Scalar> {
    d: usize,
    width: S,
    data: Vec<S>,
    cells: Vec<u32>,
    ids: Vec<u32>,
}

impl<S: Scalar> PointSet<S> {
    /// Build a point set from flat row-major `data` (length `n * d`),
    /// computing grid cells with cell width `width` and sorting everything
    /// into EGO order. `ids`, when given, must have length `n`; otherwise
    /// points are identified by their original position.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `d`, or `ids` has the
    /// wrong length, or `d == 0` with non-empty data.
    pub fn build(d: usize, width: S, data: Vec<S>, ids: Option<Vec<u32>>) -> Self {
        assert!(d > 0 || data.is_empty(), "d must be positive");
        assert!(
            d == 0 || data.len().is_multiple_of(d),
            "data length {} not a multiple of d={d}",
            data.len()
        );
        let n = data.len().checked_div(d).unwrap_or(0);
        let ids = ids.unwrap_or_else(|| (0..n as u32).collect());
        assert_eq!(ids.len(), n, "ids length must equal point count");

        let mut cells = vec![0u32; data.len()];
        for (c, &v) in cells.iter_mut().zip(data.iter()) {
            *c = v.cell(width);
        }

        let perm = ego_sort_order(d, &cells);
        let mut sorted_data = Vec::with_capacity(data.len());
        let mut sorted_cells = Vec::with_capacity(cells.len());
        let mut sorted_ids = Vec::with_capacity(n);
        for &p in &perm {
            let lo = p as usize * d;
            sorted_data.extend_from_slice(&data[lo..lo + d]);
            sorted_cells.extend_from_slice(&cells[lo..lo + d]);
            sorted_ids.push(ids[p as usize]);
        }

        Self {
            d,
            width,
            data: sorted_data,
            cells: sorted_cells,
            ids: sorted_ids,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The grid cell width used.
    pub fn width(&self) -> S {
        self.width
    }

    /// Coordinates of sorted point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[S] {
        &self.data[i * self.d..(i + 1) * self.d]
    }

    /// Grid cells of sorted point `i`.
    #[inline]
    pub fn cells(&self, i: usize) -> &[u32] {
        &self.cells[i * self.d..(i + 1) * self.d]
    }

    /// Cell of sorted point `i` in dimension `dim`.
    #[inline]
    pub fn cell(&self, i: usize, dim: usize) -> u32 {
        self.cells[i * self.d + dim]
    }

    /// Caller identifier of sorted point `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// All ids in sorted order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Verify the EGO-order invariant (debug aid; `O(n * d)`).
    pub fn is_ego_sorted(&self) -> bool {
        (1..self.len()).all(|i| self.cells(i - 1) <= self.cells(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_and_remembers_ids() {
        // Two 2-d points, reversed in cell order.
        let data = vec![0.9f32, 0.9, 0.1, 0.1];
        let ps = PointSet::build(2, 0.5, data, None);
        assert_eq!(ps.len(), 2);
        assert!(ps.is_ego_sorted());
        assert_eq!(ps.id(0), 1); // the (0.1, 0.1) point sorts first
        assert_eq!(ps.point(0), &[0.1, 0.1]);
        assert_eq!(ps.cells(0), &[0, 0]);
        assert_eq!(ps.cells(1), &[1, 1]);
    }

    #[test]
    fn custom_ids_follow_points() {
        let data = vec![5u32, 1u32];
        let ps = PointSet::build(1, 2, data, Some(vec![70, 71]));
        assert_eq!(ps.id(0), 71);
        assert_eq!(ps.id(1), 70);
    }

    #[test]
    fn empty_set() {
        let ps: PointSet<f32> = PointSet::build(3, 0.5, vec![], None);
        assert!(ps.is_empty());
        assert!(ps.is_ego_sorted());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_ragged_data() {
        let _ = PointSet::build(3, 1u32, vec![1, 2, 3, 4], None);
    }

    #[test]
    fn lexicographic_tie_break_on_later_dims() {
        // Same first cell, differing second cell.
        let data = vec![0u32, 9, 0, 1];
        let ps = PointSet::build(2, 3, data, None);
        assert_eq!(ps.id(0), 1);
        assert_eq!(ps.cell(0, 1), 0);
        assert_eq!(ps.cell(1, 1), 3);
    }
}
