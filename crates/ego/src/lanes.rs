//! Chunked, vectorization-friendly evaluation of the per-dimension
//! epsilon condition — the one seam every scalar match path in the
//! workspace routes through.
//!
//! The short-circuited form (`iter().zip().all(...)`) compiles to a
//! branch per dimension, which defeats auto-vectorization. The kernels
//! here instead evaluate a fixed-width chunk of dimensions branchlessly
//! (`ok &= within` per lane) and only branch once per chunk, which LLVM
//! lowers to SIMD compares on every target with vector units. Chunk
//! geometry:
//!
//! * default build — 8 lanes for every scalar, a shape that
//!   auto-vectorizes to 128-bit (SSE2/NEON) operations;
//! * `--features simd` — full register geometry per element width
//!   (`u8`×32, `u16`×16, `u32`/`f32`×8, i.e. the `u16x16`/`u32x8`-style
//!   lanes of wider vector units), letting LLVM use 256-bit registers
//!   where available.
//!
//! Both variants return exactly the same booleans as the scalar
//! reference ([`all_within_scalar`]), so callers can swap freely between
//! them without changing results.

use crate::scalar::Scalar;

/// Lane count used by [`all_within`] for an element of `BYTES` size.
#[inline]
#[must_use]
pub const fn lane_width(bytes: usize) -> usize {
    if cfg!(feature = "simd") {
        // 256-bit register geometry, floored at 8 lanes.
        let w = 32 / bytes;
        if w < 8 {
            8
        } else {
            w
        }
    } else {
        8
    }
}

/// Branchless evaluation of one `W`-wide chunk.
#[inline]
fn chunk_within<S: Scalar, const W: usize>(b: &[S], a: &[S], eps: S) -> bool {
    let mut ok = true;
    for k in 0..W {
        ok &= b[k].within(a[k], eps);
    }
    ok
}

#[inline]
fn all_within_w<S: Scalar, const W: usize>(b: &[S], a: &[S], eps: S) -> bool {
    let mut bc = b.chunks_exact(W);
    let mut ac = a.chunks_exact(W);
    for (bk, ak) in bc.by_ref().zip(ac.by_ref()) {
        if !chunk_within::<S, W>(bk, ak, eps) {
            return false;
        }
    }
    let rb = bc.remainder();
    let ra = ac.remainder();
    // Step a wide tail down through the 8-lane kernel instead of a
    // scalar loop: a 27-dim profile under a 32-wide chunk otherwise
    // produces zero full chunks and never vectorizes at all.
    if W > 8 && rb.len() >= 8 {
        return all_within_w::<S, 8>(rb, ra, eps);
    }
    rb.iter().zip(ra).all(|(&x, &y)| x.within(y, eps))
}

/// `|b_i - a_i| <= eps` for every dimension, evaluated chunk-at-a-time.
///
/// Equivalent to [`all_within_scalar`] but vectorization-friendly; the
/// chunk width follows [`lane_width`] for the scalar's size.
#[inline]
#[must_use]
pub fn all_within<S: Scalar>(b: &[S], a: &[S], eps: S) -> bool {
    debug_assert_eq!(b.len(), a.len());
    match lane_width(std::mem::size_of::<S>()) {
        32 => all_within_w::<S, 32>(b, a, eps),
        16 => all_within_w::<S, 16>(b, a, eps),
        _ => all_within_w::<S, 8>(b, a, eps),
    }
}

/// The scalar short-circuit reference: one branch per dimension.
///
/// Kept as the explicit "legacy" path so benchmarks (and the
/// quantization kill-switch in `csj-core`) can compare against the
/// exact pre-vectorization behaviour.
#[inline]
#[must_use]
pub fn all_within_scalar<S: Scalar>(b: &[S], a: &[S], eps: S) -> bool {
    debug_assert_eq!(b.len(), a.len());
    b.iter().zip(a.iter()).all(|(&x, &y)| x.within(y, eps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_matches_scalar_u32() {
        // Lengths around every chunk boundary, mismatch in every position.
        for d in [0usize, 1, 7, 8, 9, 15, 16, 17, 27, 32, 33, 40] {
            let b: Vec<u32> = (0..d as u32).collect();
            for bad in 0..d {
                let mut a = b.clone();
                a[bad] = a[bad].wrapping_add(10);
                assert!(!all_within(&b, &a, 3), "d={d} bad={bad}");
                assert_eq!(
                    all_within(&b, &a, 3),
                    all_within_scalar(&b, &a, 3),
                    "d={d} bad={bad}"
                );
            }
            let a = b.clone();
            assert!(all_within(&b, &a, 0), "d={d} equal");
        }
    }

    #[test]
    fn chunked_matches_scalar_narrow_lanes() {
        let d = 27usize;
        let b: Vec<u8> = (0..d as u8).map(|v| v.wrapping_mul(7)).collect();
        let mut a = b.clone();
        a[13] = a[13].wrapping_add(50);
        assert_eq!(all_within(&b, &a, 4u8), all_within_scalar(&b, &a, 4u8));
        let b16: Vec<u16> = b.iter().map(|&v| v as u16 * 300).collect();
        let a16: Vec<u16> = a.iter().map(|&v| v as u16 * 300).collect();
        assert_eq!(
            all_within(&b16, &a16, 1000u16),
            all_within_scalar(&b16, &a16, 1000u16)
        );
    }

    #[test]
    fn boundary_is_inclusive() {
        assert!(all_within(&[5u32; 9], &[7u32; 9], 2));
        assert!(!all_within(&[5u32; 9], &[8u32; 9], 2));
    }

    #[test]
    fn float_lanes_match_scalar() {
        let b: Vec<f32> = (0..20).map(|i| i as f32 * 0.05).collect();
        let mut a = b.clone();
        a[19] += 0.5;
        assert_eq!(
            all_within(&b, &a, 0.1f32),
            all_within_scalar(&b, &a, 0.1f32)
        );
        assert!(!all_within(&b, &a, 0.1f32));
    }
}
