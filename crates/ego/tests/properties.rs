//! Property-based tests of the EGO substrate.

use csj_ego::{
    collect_pairs, collect_pairs_parallel, dimension_order, ego_prune, permute_dimensions,
    JoinPredicate, PointSet, SuperEgoParams,
};
use proptest::prelude::*;

/// Random integer point sets sharing d, plus eps and a leaf threshold.
fn instance() -> impl Strategy<Value = (usize, u32, Vec<Vec<u32>>, Vec<Vec<u32>>, usize)> {
    (1usize..=5, 1u32..=5, 2usize..=48).prop_flat_map(|(d, eps, t)| {
        let rows = |n| proptest::collection::vec(proptest::collection::vec(0u32..40, d), 0..n);
        (Just(d), Just(eps), rows(40), rows(40), Just(t))
    })
}

fn build(d: usize, eps: u32, rows: &[Vec<u32>]) -> PointSet<u32> {
    let data: Vec<u32> = rows.iter().flatten().copied().collect();
    PointSet::build(d, eps.max(1), data, None)
}

fn brute(_d: usize, eps: u32, rb: &[Vec<u32>], ra: &[Vec<u32>]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, b) in rb.iter().enumerate() {
        for (j, a) in ra.iter().enumerate() {
            if b.iter().zip(a).all(|(&x, &y)| x.abs_diff(y) <= eps) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    /// The full recursion finds exactly the brute-force pair set.
    #[test]
    fn collect_pairs_is_exact((d, eps, rb, ra, t) in instance()) {
        let b = build(d, eps, &rb);
        let a = build(d, eps, &ra);
        let mut stats = csj_ego::EgoStats::default();
        let mut got = collect_pairs(
            &b, &a, JoinPredicate::PerDim { eps }, SuperEgoParams { t }, &mut stats);
        got.sort_unstable();
        prop_assert_eq!(got, brute(d, eps, &rb, &ra));
    }

    /// Parallel enumeration returns the same pair set as serial.
    #[test]
    fn parallel_matches_serial((d, eps, rb, ra, t) in instance()) {
        let b = build(d, eps, &rb);
        let a = build(d, eps, &ra);
        let pred = JoinPredicate::PerDim { eps };
        let mut s1 = csj_ego::EgoStats::default();
        let mut serial = collect_pairs(&b, &a, pred, SuperEgoParams { t }, &mut s1);
        let mut s2 = csj_ego::EgoStats::default();
        let mut parallel =
            collect_pairs_parallel(&b, &a, pred, SuperEgoParams { t }, &mut s2, 3);
        serial.sort_unstable();
        parallel.sort_unstable();
        prop_assert_eq!(serial, parallel);
    }

    /// EGO-strategy soundness: whole-set segments are never pruned when a
    /// joinable pair exists.
    #[test]
    fn prune_never_drops_joinable_pairs((d, eps, rb, ra, _t) in instance()) {
        let b = build(d, eps, &rb);
        let a = build(d, eps, &ra);
        let joinable = !brute(d, eps, &rb, &ra).is_empty();
        if joinable {
            prop_assert!(!ego_prune(&b, &(0..b.len()), &a, &(0..a.len())));
        }
    }

    /// Dimension reordering never changes the result set (it only changes
    /// traversal order).
    #[test]
    fn reorder_preserves_pairs((d, eps, rb, ra, t) in instance()) {
        let flat_b: Vec<u32> = rb.iter().flatten().copied().collect();
        let flat_a: Vec<u32> = ra.iter().flatten().copied().collect();
        let order = dimension_order(d, &flat_b, &flat_a, eps.max(1), 1000);
        let pb = permute_dimensions(&flat_b, d, &order);
        let pa = permute_dimensions(&flat_a, d, &order);
        let b = PointSet::build(d, eps.max(1), pb, None);
        let a = PointSet::build(d, eps.max(1), pa, None);
        let mut stats = csj_ego::EgoStats::default();
        let mut got = collect_pairs(
            &b, &a, JoinPredicate::PerDim { eps }, SuperEgoParams { t }, &mut stats);
        got.sort_unstable();
        prop_assert_eq!(got, brute(d, eps, &rb, &ra));
    }

    /// The point set is always EGO-sorted and permutation-complete.
    #[test]
    fn point_set_is_sorted_permutation((_d, eps, rb, _ra, _t) in instance()) {
        let b = build(_d, eps, &rb);
        prop_assert!(b.is_ego_sorted());
        let mut ids: Vec<u32> = b.ids().to_vec();
        ids.sort_unstable();
        let expected: Vec<u32> = (0..rb.len() as u32).collect();
        prop_assert_eq!(ids, expected);
    }
}
