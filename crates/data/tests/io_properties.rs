//! Property-based round-trip tests of the dataset I/O formats.

use csj_core::{Community, CsjOptions, PreparedCommunity};
use csj_data::io::{read_binary, read_csv, read_prepared, write_binary, write_csv, write_prepared};
use proptest::prelude::*;

fn arbitrary_community() -> impl Strategy<Value = Community> {
    // Names avoid newlines (the CSV header is line-oriented).
    ("[a-zA-Z0-9 _|-]{1,24}", 1usize..=6).prop_flat_map(|(name, d)| {
        proptest::collection::vec(
            (
                proptest::num::u64::ANY,
                proptest::collection::vec(proptest::num::u32::ANY, d),
            ),
            0..20,
        )
        .prop_map(move |rows| Community::from_rows(name.clone(), d, rows).expect("well-formed"))
    })
}

proptest! {
    #[test]
    fn binary_roundtrip(c in arbitrary_community()) {
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).expect("write");
        let back = read_binary(&buf[..]).expect("read");
        prop_assert_eq!(back, c);
    }

    #[test]
    fn csv_roundtrip(c in arbitrary_community()) {
        let mut buf = Vec::new();
        write_csv(&c, &mut buf).expect("write");
        let back = read_csv(&buf[..]).expect("read");
        prop_assert_eq!(back, c);
    }

    /// Prepared-index files round-trip for arbitrary communities.
    #[test]
    fn prepared_roundtrip(c in arbitrary_community(), eps in 0u32..5, parts in 1usize..4) {
        let opts = CsjOptions::new(eps).with_parts(parts);
        let p = PreparedCommunity::new(c, &opts);
        let mut buf = Vec::new();
        write_prepared(&p, &mut buf).expect("write");
        let back = read_prepared(&buf[..]).expect("read");
        prop_assert_eq!(back.community(), p.community());
        prop_assert_eq!(back.eps(), p.eps());
        prop_assert_eq!(&back.encoded_b().encd_ids, &p.encoded_b().encd_ids);
        prop_assert_eq!(&back.encoded_a().range_hi, &p.encoded_a().range_hi);
    }

    /// Truncations of a valid binary file fail cleanly, never panic.
    #[test]
    fn binary_truncation_is_an_error(c in arbitrary_community(), cut in 1usize..64) {
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).expect("write");
        if cut <= buf.len() {
            let truncated = &buf[..buf.len() - cut];
            prop_assert!(read_binary(truncated).is_err());
        }
    }

    /// Flipping a header byte never panics, and a no-op flip still parses.
    #[test]
    fn binary_corruption_is_handled(c in arbitrary_community(), pos in 0usize..16, byte: u8) {
        let mut buf = Vec::new();
        write_binary(&c, &mut buf).expect("write");
        if pos < buf.len() {
            let original = buf[pos];
            buf[pos] = byte;
            let parsed = read_binary(&buf[..]); // must not panic
            if byte == original {
                prop_assert!(parsed.is_ok());
            }
        }
    }
}
