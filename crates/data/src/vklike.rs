//! The VK-shaped dataset generator.
//!
//! The paper's VK corpus is proprietary (7.8M users' real likes). This
//! generator produces data with the properties that drive the paper's
//! results (DESIGN.md §3 documents the substitution):
//!
//! * **Sparse, heavily skewed counters.** A typical user has liked posts
//!   in only a handful of categories, with small counts; a small heavy
//!   tail has counts in the thousands. Which categories a user is active
//!   in follows the real per-category popularity of Table 1, so the
//!   generated corpus reproduces the published `total_likes` ranking.
//! * **Controllable similarity.** A community pair is generated *jointly*:
//!   a planted fraction of `B` users get an admissible partner in `A`,
//!   so the couple's similarity lands at the published value for that
//!   couple. Most planted partners are exact profile duplicates
//!   (realistic for light users, and immune to SuperEGO's normalisation
//!   loss); a configurable `boundary_rate` differs by exactly `eps` in a
//!   few dimensions (the pairs SuperEGO can lose); a `conflict_rate`
//!   plants the b1:{a1,a2}, b2:{a2} gadgets on which greedy approximate
//!   matching loses pairs and CSF has real work to do.
//! * **Non-matching fillers** carry a wide-valued signature dimension so
//!   accidental cross-matches are rare and similarity stays near target.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csj_core::Community;

use crate::categories::Category;
use crate::spec::{VK_MAX_LIKES, VK_TOTAL_LIKES};

/// Tuning of the VK-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VkLikeConfig {
    /// Vector dimensionality (27 for the paper's corpus).
    pub d: usize,
    /// The per-dimension epsilon the communities will be joined with
    /// (planted partners are admissible at this epsilon).
    pub eps: u32,
    /// Fraction of `B` users given an admissible partner in `A`.
    pub target_similarity: f64,
    /// Fraction of planted matches whose partner differs by exactly
    /// `eps` in 1–2 dimensions (SuperEGO-lossy boundary pairs).
    pub boundary_rate: f64,
    /// Fraction of planted matches embedded in a greedy-hostile conflict
    /// gadget (consumes two planted slots at a time).
    pub conflict_rate: f64,
    /// Probability that a filler user is a heavy user (large counters).
    pub heavy_rate: f64,
    /// Mean number of active (non-zero) dimensions per light profile.
    pub active_dims_mean: f64,
    /// Mean counter value on an active dimension of a light profile.
    pub base_count_mean: f64,
}

impl Default for VkLikeConfig {
    fn default() -> Self {
        Self {
            d: 27,
            eps: 1,
            target_similarity: 0.20,
            boundary_rate: 0.06,
            conflict_rate: 0.05,
            heavy_rate: 0.02,
            active_dims_mean: 5.0,
            base_count_mean: 2.5,
        }
    }
}

/// Seeded generator of VK-shaped community pairs.
#[derive(Debug, Clone)]
pub struct VkLikeGenerator {
    cfg: VkLikeConfig,
    /// Cumulative sampling weights per dimension (from Table 1).
    cumulative: Vec<f64>,
}

impl VkLikeGenerator {
    /// Create a generator; dimension popularity follows the paper's
    /// Table 1 VK totals for `d = 27`, or a Zipf(1.0) law otherwise.
    pub fn new(cfg: VkLikeConfig) -> Self {
        assert!(cfg.d >= 1);
        assert!((0.0..=1.0).contains(&cfg.target_similarity));
        let weights: Vec<f64> = if cfg.d == 27 {
            let mut w = vec![0.0; 27];
            for &(cat, likes) in &VK_TOTAL_LIKES {
                w[cat.dim()] = likes as f64;
            }
            w
        } else {
            (0..cfg.d).map(|i| 1.0 / (i as f64 + 1.0)).collect()
        };
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cfg, cumulative }
    }

    /// The configuration in use.
    pub fn config(&self) -> &VkLikeConfig {
        &self.cfg
    }

    /// Sample a dimension with Table 1 popularity, biased towards the
    /// communities' own categories.
    fn sample_dim(&self, rng: &mut StdRng, primary: &[usize]) -> usize {
        // With probability 0.5 pick one of the communities' categories
        // (subscribers predominantly like content of the page's topic).
        if !primary.is_empty() && rng.gen_bool(0.5) {
            return primary[rng.gen_range(0..primary.len())];
        }
        let x: f64 = rng.gen();
        self.cumulative
            .iter()
            .position(|&c| x <= c)
            .unwrap_or(self.cfg.d - 1)
    }

    /// Geometric-ish count with the configured mean (at least 1).
    fn sample_count(&self, rng: &mut StdRng, mean: f64) -> u32 {
        let p = 1.0 / mean.max(1.0);
        let mut v = 1u32;
        while v < 60 && !rng.gen_bool(p) {
            v += 1;
        }
        v
    }

    /// Sample a light profile.
    fn sample_profile(&self, rng: &mut StdRng, primary: &[usize]) -> Vec<u32> {
        let mut v = vec![0u32; self.cfg.d];
        let k = 1 + self
            .sample_count(rng, self.cfg.active_dims_mean)
            .min(self.cfg.d as u32 - 1);
        for _ in 0..k {
            let dim = self.sample_dim(rng, primary);
            v[dim] += self.sample_count(rng, self.cfg.base_count_mean);
        }
        v
    }

    /// Turn a light profile into a heavy user by scaling a few dims up.
    fn make_heavy(&self, rng: &mut StdRng, v: &mut [u32]) {
        let boosts = rng.gen_range(1..=3);
        for _ in 0..boosts {
            let dim = rng.gen_range(0..v.len());
            let scale: u32 = rng.gen_range(50..4_000);
            v[dim] = v[dim].saturating_mul(scale).min(VK_MAX_LIKES);
        }
    }

    /// A filler profile that is very unlikely to match anything: a light
    /// profile plus a signature dimension with a wide-ranged value.
    fn sample_filler(&self, rng: &mut StdRng, primary: &[usize]) -> Vec<u32> {
        let mut v = self.sample_profile(rng, primary);
        let dim = self.sample_dim(rng, primary);
        v[dim] = rng.gen_range(100..100_000);
        if rng.gen_bool(self.cfg.heavy_rate) {
            self.make_heavy(rng, &mut v);
        }
        v
    }

    /// Generate a `(B, A)` community pair with `nb` / `na` subscribers
    /// whose similarity under `cfg.eps` is close to
    /// `cfg.target_similarity`. Deterministic in `seed`.
    ///
    /// # Panics
    /// Panics unless `1 <= nb <= na`.
    #[allow(clippy::too_many_arguments)] // a couple is naturally 7-ary
    pub fn generate_pair(
        &self,
        name_b: &str,
        name_a: &str,
        cat_b: Category,
        cat_a: Category,
        nb: usize,
        na: usize,
        seed: u64,
    ) -> (Community, Community) {
        assert!(nb >= 1 && nb <= na, "need 1 <= nb <= na");
        let mut rng = StdRng::seed_from_u64(seed);
        let eps = self.cfg.eps;
        let primary: Vec<usize> = {
            let mut p = vec![cat_b.dim().min(self.cfg.d - 1)];
            let ad = cat_a.dim().min(self.cfg.d - 1);
            if !p.contains(&ad) {
                p.push(ad);
            }
            p
        };

        let planted = (self.cfg.target_similarity * nb as f64).round() as usize;
        let planted = planted.min(nb).min(na);

        let mut b_rows: Vec<Vec<u32>> = Vec::with_capacity(nb);
        let mut a_rows: Vec<Vec<u32>> = Vec::with_capacity(na);

        let mut remaining = planted;
        while remaining > 0 {
            let profile = self.sample_profile(&mut rng, &primary);
            if remaining >= 2 && rng.gen_bool(self.cfg.conflict_rate) {
                // Conflict gadget: b1 = v, a1 = v, a2 = v + eps*e_i,
                // b2 = v + 2*eps*e_i. Maximum matching covers both b's;
                // greedy can strand b2 by giving a2 to b1.
                let dim = rng.gen_range(0..self.cfg.d);
                let mut a2 = profile.clone();
                a2[dim] = a2[dim].saturating_add(eps.max(1));
                let mut b2 = profile.clone();
                b2[dim] = b2[dim].saturating_add(2 * eps.max(1));
                b_rows.push(profile.clone());
                b_rows.push(b2);
                a_rows.push(profile);
                a_rows.push(a2);
                remaining -= 2;
            } else {
                let mut partner = profile.clone();
                if eps > 0 && rng.gen_bool(self.cfg.boundary_rate) {
                    // Boundary pair: still admissible, but decided at
                    // exactly eps in 1-2 dimensions.
                    for _ in 0..rng.gen_range(1..=2u32) {
                        let dim = rng.gen_range(0..self.cfg.d);
                        partner[dim] = partner[dim].saturating_add(eps);
                    }
                }
                b_rows.push(profile);
                a_rows.push(partner);
                remaining -= 1;
            }
        }

        while b_rows.len() < nb {
            b_rows.push(self.sample_filler(&mut rng, &primary));
        }
        b_rows.truncate(nb);
        while a_rows.len() < na {
            a_rows.push(self.sample_filler(&mut rng, &primary));
        }
        a_rows.truncate(na);

        // Shuffle so planted pairs are not positionally aligned.
        shuffle(&mut rng, &mut b_rows);
        shuffle(&mut rng, &mut a_rows);

        let b = Community::from_rows(
            name_b,
            self.cfg.d,
            b_rows.into_iter().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .expect("generated rows are well-formed");
        let a = Community::from_rows(
            name_a,
            self.cfg.d,
            a_rows
                .into_iter()
                .enumerate()
                .map(|(i, v)| (1_000_000_000 + i as u64, v)),
        )
        .expect("generated rows are well-formed");
        (b, a)
    }
}

/// Fisher–Yates shuffle (kept local to avoid depending on rand's
/// `SliceRandom` trait surface).
fn shuffle<T>(rng: &mut StdRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_core::verify::ground_truth;

    fn small_cfg(target: f64) -> VkLikeConfig {
        VkLikeConfig {
            target_similarity: target,
            ..VkLikeConfig::default()
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = VkLikeGenerator::new(small_cfg(0.2));
        let (b1, a1) = g.generate_pair("B", "A", Category::Sport, Category::Hobbies, 200, 260, 7);
        let (b2, a2) = g.generate_pair("B", "A", Category::Sport, Category::Hobbies, 200, 260, 7);
        assert_eq!(b1, b2);
        assert_eq!(a1, a2);
        let (b3, _) = g.generate_pair("B", "A", Category::Sport, Category::Hobbies, 200, 260, 8);
        assert_ne!(b1, b3);
    }

    #[test]
    fn hits_target_similarity_band() {
        for target in [0.15, 0.25, 0.35] {
            let g = VkLikeGenerator::new(small_cfg(target));
            let (b, a) = g.generate_pair(
                "B",
                "A",
                Category::FoodRecipes,
                Category::Restaurants,
                400,
                500,
                42,
            );
            let gt = ground_truth(&b, &a, 1);
            let sim = gt.similarity.ratio();
            assert!(
                (sim - target).abs() < 0.06,
                "target {target} but ground truth {sim}"
            );
        }
    }

    #[test]
    fn respects_sizes_and_dimensionality() {
        let g = VkLikeGenerator::new(small_cfg(0.2));
        let (b, a) = g.generate_pair("B", "A", Category::Media, Category::Media, 150, 300, 1);
        assert_eq!(b.len(), 150);
        assert_eq!(a.len(), 300);
        assert_eq!(b.d(), 27);
        assert_eq!(b.name(), "B");
    }

    #[test]
    fn counters_are_sparse_and_bounded() {
        let g = VkLikeGenerator::new(small_cfg(0.2));
        let (b, a) = g.generate_pair("B", "A", Category::Music, Category::Celebrity, 300, 400, 3);
        for c in [&b, &a] {
            assert!(c.max_counter() <= VK_MAX_LIKES);
            let zeros = c.raw_data().iter().filter(|&&v| v == 0).count();
            let frac = zeros as f64 / c.raw_data().len() as f64;
            assert!(
                frac > 0.5,
                "profiles should be sparse, zero fraction {frac}"
            );
        }
    }

    #[test]
    fn popularity_follows_table1_at_the_top() {
        // With enough users, the top VK category (Entertainment) must
        // out-total the bottom one (Communication_Services).
        let g = VkLikeGenerator::new(small_cfg(0.2));
        let (b, a) = g.generate_pair(
            "B",
            "A",
            Category::Animals,
            Category::Internet,
            2_000,
            2_500,
            11,
        );
        let mut totals = vec![0u64; 27];
        for c in [&b, &a] {
            for (t, v) in totals.iter_mut().zip(c.dimension_totals()) {
                *t += v;
            }
        }
        assert!(
            totals[Category::Entertainment.dim()] > totals[Category::CommunicationServices.dim()],
            "Table 1 skew not reproduced"
        );
    }

    #[test]
    fn non_default_dimensionality() {
        let cfg = VkLikeConfig {
            d: 8,
            ..small_cfg(0.3)
        };
        let g = VkLikeGenerator::new(cfg);
        let (b, a) = g.generate_pair("B", "A", Category::Sport, Category::Sport, 100, 150, 5);
        assert_eq!(b.d(), 8);
        let gt = ground_truth(&b, &a, 1);
        assert!(gt.similarity.ratio() >= 0.2);
    }
}
