//! The paper's published experimental constants, embedded verbatim.
//!
//! Everything the evaluation section publishes is transcribed here so the
//! bench harness can (a) generate data matching the published corpus
//! shape and (b) print **paper vs measured** for every cell of every
//! table:
//!
//! * Table 1 — per-category `total_likes` for VK and Synthetic.
//! * Table 2 — the 20 community couples (names, VK page ids) with their
//!   categories and sizes (sizes appear in Tables 3/5).
//! * Tables 3–10 — similarity % and runtime seconds per method per couple.
//! * Table 11 — the Ex-MinMax scalability grid (20 categories × 4 sizes).

use crate::categories::Category;

/// Dimensionality of every user vector (27 VK categories).
pub const D: usize = 27;
/// The paper's epsilon for the VK dataset.
pub const VK_EPS: u32 = 1;
/// The paper's epsilon for the Synthetic dataset.
pub const SYNTHETIC_EPS: u32 = 15_000;
/// Maximum per-dimension counter over all VK users (paper §6.1).
pub const VK_MAX_LIKES: u32 = 152_532;
/// Maximum per-dimension counter over all Synthetic users (paper §6.1).
pub const SYNTHETIC_MAX_LIKES: u32 = 500_000;
/// Users sampled from VK (both corpora use the same population size).
pub const TOTAL_USERS: u64 = 7_800_000;

/// Table 1, VK column: `(category, total_likes)` in rank order.
pub const VK_TOTAL_LIKES: [(Category, u64); 27] = [
    (Category::Entertainment, 2_111_519_450),
    (Category::Hobbies, 602_445_614),
    (Category::RelationshipFamily, 384_993_747),
    (Category::BeautyHealth, 318_695_199),
    (Category::Media, 296_466_970),
    (Category::SocialPublic, 255_007_945),
    (Category::Sport, 245_830_867),
    (Category::Internet, 206_085_821),
    (Category::Education, 197_289_902),
    (Category::Celebrity, 167_468_242),
    (Category::Animals, 159_569_729),
    (Category::Music, 153_686_427),
    (Category::CultureArt, 141_107_189),
    (Category::FoodRecipes, 140_212_548),
    (Category::TourismLeisure, 140_054_637),
    (Category::AutoMotor, 136_991_765),
    (Category::ProductsStores, 131_752_523),
    (Category::HomeRenovation, 120_091_854),
    (Category::CitiesCountries, 74_006_530),
    (Category::ProfessionalServices, 33_024_545),
    (Category::Medicine, 32_135_820),
    (Category::FinanceInsurance, 30_961_892),
    (Category::Restaurants, 6_473_240),
    (Category::JobSearch, 1_853_720),
    (Category::TransportationServices, 1_385_538),
    (Category::ConsumerServices, 810_889),
    (Category::CommunicationServices, 474_492),
];

/// Table 1, Synthetic column, in rank order.
///
/// The Social_public cell is illegible in the published PDF extraction;
/// its value is interpolated between its rank neighbours (documented in
/// EXPERIMENTS.md).
pub const SYNTHETIC_TOTAL_LIKES: [(Category, u64); 27] = [
    (Category::Hobbies, 4_030_521_210),
    (Category::SocialPublic, 3_962_645_847), // interpolated, see above
    (Category::JobSearch, 3_894_770_484),
    (Category::Medicine, 3_879_329_978),
    (Category::HomeRenovation, 3_840_633_803),
    (Category::Celebrity, 3_784_173_891),
    (Category::Education, 3_783_409_580),
    (Category::Entertainment, 3_763_167_129),
    (Category::Sport, 3_718_424_135),
    (Category::TourismLeisure, 3_702_498_557),
    (Category::TransportationServices, 3_685_969_155),
    (Category::FinanceInsurance, 3_680_184_922),
    (Category::CultureArt, 3_680_041_975),
    (Category::ConsumerServices, 3_668_738_029),
    (Category::ProfessionalServices, 3_623_780_227),
    (Category::ProductsStores, 3_565_053_769),
    (Category::RelationshipFamily, 3_560_196_074),
    (Category::CitiesCountries, 3_552_381_297),
    (Category::FoodRecipes, 3_550_668_794),
    (Category::Internet, 3_521_866_267),
    (Category::Animals, 3_517_540_727),
    (Category::Media, 3_514_872_848),
    (Category::AutoMotor, 3_469_592_249),
    (Category::CommunicationServices, 3_446_086_841),
    (Category::Restaurants, 3_415_910_481),
    (Category::Music, 3_297_277_125),
    (Category::BeautyHealth, 3_292_929_613),
];

/// One community couple of Table 2 (with sizes from Tables 3/5 and the
/// category pairing from Tables 3–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoupleSpec {
    /// The paper's couple id (1–20).
    pub cid: u8,
    /// Name of community `B` (the smaller one).
    pub name_b: &'static str,
    /// VK page id of `B` (`https://vk.com/public<id>`).
    pub id_b: u64,
    /// Name of community `A`.
    pub name_a: &'static str,
    /// VK page id of `A`.
    pub id_a: u64,
    /// Category of `B`.
    pub cat_b: Category,
    /// Category of `A`.
    pub cat_a: Category,
    /// `|B|` as reported in Tables 3/5.
    pub size_b: u32,
    /// `|A|` as reported in Tables 3/5.
    pub size_a: u32,
}

impl CoupleSpec {
    /// Couples 11–20 pair communities of the same category
    /// (similarity >= 30%); couples 1–10 pair different categories
    /// (similarity >= 15%).
    pub fn same_category(&self) -> bool {
        self.cat_b == self.cat_a
    }
}

/// Table 2: the 20 couples compared in every experiment.
pub const COUPLES: [CoupleSpec; 20] = [
    CoupleSpec {
        cid: 1,
        name_b: "Quick Recipes",
        id_b: 165062392,
        name_a: "Salads | Best Recipes",
        id_a: 94216909,
        cat_b: Category::Restaurants,
        cat_a: Category::FoodRecipes,
        size_b: 109_176,
        size_a: 116_016,
    },
    CoupleSpec {
        cid: 2,
        name_b: "Happiness",
        id_b: 23337480,
        name_a: "Sportshacker",
        id_a: 128350290,
        cat_b: Category::Hobbies,
        cat_a: Category::Sport,
        size_b: 156_213,
        size_a: 230_017,
    },
    CoupleSpec {
        cid: 3,
        name_b: "Moment of history",
        id_b: 143826157,
        name_a: "This is a fact | Science and Facts",
        id_a: 45688121,
        cat_b: Category::CultureArt,
        cat_a: Category::Education,
        size_b: 134_961,
        size_a: 138_199,
    },
    CoupleSpec {
        cid: 4,
        name_b: "Health secrets. What is said by doctors?",
        id_b: 55122354,
        name_a: "Fashionable girl",
        id_a: 36085261,
        cat_b: Category::Medicine,
        cat_a: Category::BeautyHealth,
        size_b: 120_783,
        size_a: 185_393,
    },
    CoupleSpec {
        cid: 5,
        name_b: "First channel",
        id_b: 25380626,
        name_a: "Nice line",
        id_a: 26669118,
        cat_b: Category::Media,
        cat_a: Category::Entertainment,
        size_b: 197_415,
        size_a: 330_944,
    },
    CoupleSpec {
        cid: 6,
        name_b: "About women's",
        id_b: 33382046,
        name_a: "Successful girl",
        id_a: 24036559,
        cat_b: Category::SocialPublic,
        cat_a: Category::RelationshipFamily,
        size_b: 118_993,
        size_a: 131_297,
    },
    CoupleSpec {
        cid: 7,
        name_b: "The best of Saint Petersburg",
        id_b: 31516466,
        name_a: "Vandrouki | Travel almost free",
        id_a: 63731512,
        cat_b: Category::CitiesCountries,
        cat_a: Category::TourismLeisure,
        size_b: 140_114,
        size_a: 257_419,
    },
    CoupleSpec {
        cid: 8,
        name_b: "Housing problem",
        id_b: 42541008,
        name_a: "Business quote book",
        id_a: 28556858,
        cat_b: Category::HomeRenovation,
        cat_a: Category::ProductsStores,
        size_b: 167_585,
        size_a: 182_815,
    },
    CoupleSpec {
        cid: 9,
        name_b: "Jah Khalib",
        id_b: 26211015,
        name_a: "My audios",
        id_a: 105999460,
        cat_b: Category::Celebrity,
        cat_a: Category::Music,
        size_b: 125_248,
        size_a: 189_937,
    },
    CoupleSpec {
        cid: 10,
        name_b: "Job in Moscow",
        id_b: 31154183,
        name_a: "VK Pay",
        id_a: 166850908,
        cat_b: Category::JobSearch,
        cat_a: Category::FinanceInsurance,
        size_b: 55_918,
        size_a: 109_622,
    },
    CoupleSpec {
        cid: 11,
        name_b: "Cooking: delicious recipes",
        id_b: 42092461,
        name_a: "Cooking at home: delicious and easy",
        id_a: 40020627,
        cat_b: Category::FoodRecipes,
        cat_a: Category::FoodRecipes,
        size_b: 180_158,
        size_a: 196_135,
    },
    CoupleSpec {
        cid: 12,
        name_b: "Simple recipes",
        id_b: 83935640,
        name_a: "Best Chef's Recipes",
        id_a: 18464856,
        cat_b: Category::FoodRecipes,
        cat_a: Category::FoodRecipes,
        size_b: 180_351,
        size_a: 272_320,
    },
    CoupleSpec {
        cid: 13,
        name_b: "FC Barcelona",
        id_b: 22746750,
        name_a: "Football Europe",
        id_a: 23693281,
        cat_b: Category::Sport,
        cat_a: Category::Sport,
        size_b: 179_412,
        size_a: 234_508,
    },
    CoupleSpec {
        cid: 14,
        name_b: "World Russian Premier League",
        id_b: 51812607,
        name_a: "Football Europe",
        id_a: 23693281,
        cat_b: Category::Sport,
        cat_a: Category::Sport,
        size_b: 184_663,
        size_a: 234_508,
    },
    CoupleSpec {
        cid: 15,
        name_b: "World of beauty",
        id_b: 34981365,
        name_a: "Fashionable girl",
        id_a: 36085261,
        cat_b: Category::BeautyHealth,
        cat_a: Category::BeautyHealth,
        size_b: 163_176,
        size_a: 185_393,
    },
    CoupleSpec {
        cid: 16,
        name_b: "Beauty | Fashion | Show Business",
        id_b: 32922940,
        name_a: "Fashionable girl",
        id_a: 36085261,
        cat_b: Category::BeautyHealth,
        cat_a: Category::BeautyHealth,
        size_b: 178_138,
        size_a: 185_393,
    },
    CoupleSpec {
        cid: 17,
        name_b: "More than just lines",
        id_b: 32651025,
        name_a: "Just love",
        id_a: 28293246,
        cat_b: Category::RelationshipFamily,
        cat_a: Category::RelationshipFamily,
        size_b: 165_509,
        size_a: 190_027,
    },
    CoupleSpec {
        cid: 18,
        name_b: "Modern mom",
        id_b: 55074079,
        name_a: "MAMA",
        id_a: 20249656,
        cat_b: Category::RelationshipFamily,
        cat_a: Category::RelationshipFamily,
        size_b: 147_140,
        size_a: 175_929,
    },
    CoupleSpec {
        cid: 19,
        name_b: "Business quote book",
        id_b: 28556858,
        name_a: "Business Strategy | Success in life",
        id_a: 30559917,
        cat_b: Category::ProductsStores,
        cat_a: Category::ProductsStores,
        size_b: 182_815,
        size_a: 201_038,
    },
    CoupleSpec {
        cid: 20,
        name_b: "Smart Money | Business Magazine",
        id_b: 34483558,
        name_a: "Business Strategy | Success in life",
        id_a: 30559917,
        cat_b: Category::ProductsStores,
        cat_a: Category::ProductsStores,
        size_b: 161_991,
        size_a: 201_038,
    },
];

/// One published table cell: similarity % and runtime in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodCell {
    /// Similarity percentage as printed.
    pub similarity_pct: f64,
    /// Execution time in seconds as printed.
    pub seconds: f64,
}

/// The six method cells of one couple row across a (approximate, exact)
/// table pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoupleRow {
    pub cid: u8,
    pub ap_baseline: MethodCell,
    pub ap_minmax: MethodCell,
    pub ap_superego: MethodCell,
    pub ex_baseline: MethodCell,
    pub ex_minmax: MethodCell,
    pub ex_superego: MethodCell,
}

macro_rules! cell {
    ($s:expr, $t:expr) => {
        MethodCell {
            similarity_pct: $s,
            seconds: $t,
        }
    };
}

macro_rules! row {
    ($cid:expr; $abs:expr,$abt:expr; $ams:expr,$amt:expr; $aes:expr,$aet:expr;
     $ebs:expr,$ebt:expr; $ems:expr,$emt:expr; $ees:expr,$eet:expr) => {
        CoupleRow {
            cid: $cid,
            ap_baseline: cell!($abs, $abt),
            ap_minmax: cell!($ams, $amt),
            ap_superego: cell!($aes, $aet),
            ex_baseline: cell!($ebs, $ebt),
            ex_minmax: cell!($ems, $emt),
            ex_superego: cell!($ees, $eet),
        }
    };
}

/// Tables 3 + 4: VK dataset, couples 1–10 (different categories).
pub const VK_DIFFERENT: [CoupleRow; 10] = [
    row!(1;  20.56,442.0; 20.58,116.0; 19.68,18.0;  20.81,1198.0; 20.81,133.0;  20.15,27.0),
    row!(2;  15.40,1826.0; 15.42,590.0; 15.16,19.0; 15.46,4254.0; 15.46,597.0;  15.22,30.0),
    row!(3;  24.82,761.0; 24.82,177.0; 24.26,19.0;  24.95,1985.0; 24.95,226.0;  24.58,51.0),
    row!(4;  16.30,1011.0; 16.26,232.0; 16.06,15.0; 16.42,2466.0; 16.42,239.0;  16.20,21.0),
    row!(5;  17.32,3640.0; 17.34,1501.0; 16.70,60.0; 17.52,8220.0; 17.52,1552.0; 16.92,75.0),
    row!(6;  24.31,600.0; 24.31,154.0; 24.10,8.0;   24.38,1603.0; 24.38,186.0;  24.20,37.0),
    row!(7;  22.18,1733.0; 22.19,838.0; 21.83,35.0; 22.22,4192.0; 22.22,863.0;  21.91,57.0),
    row!(8;  15.45,1457.0; 15.46,359.0; 15.15,33.0; 15.53,3539.0; 15.53,392.0;  15.29,41.0),
    row!(9;  17.36,1183.0; 17.36,272.0; 16.86,16.0; 17.52,2790.0; 17.52,288.0;  17.06,32.0),
    row!(10; 20.95,219.0; 20.72,51.0;  19.40,12.0;  21.57,679.0;  21.56,147.0;  20.09,114.0),
];

/// Tables 5 + 6: VK dataset, couples 11–20 (same categories).
pub const VK_SAME: [CoupleRow; 10] = [
    row!(11; 31.42,1610.0; 31.44,472.0; 30.94,29.0; 31.52,4168.0; 31.52,600.0;  31.20,143.0),
    row!(12; 32.01,2329.0; 32.05,1049.0; 31.30,45.0; 32.10,5945.0; 32.10,1194.0; 31.63,150.0),
    row!(13; 39.24,2070.0; 39.33,763.0; 37.53,45.0; 39.54,5314.0; 39.54,997.0;  38.62,227.0),
    row!(14; 36.66,2234.0; 36.48,745.0; 34.85,54.0; 37.10,5527.0; 37.10,1037.0; 35.81,419.0),
    row!(15; 36.83,1330.0; 36.85,393.0; 36.47,14.0; 36.93,3765.0; 36.93,508.0;  36.67,159.0),
    row!(16; 30.46,1534.0; 30.45,404.0; 30.11,15.0; 30.57,3952.0; 30.58,515.0;  30.28,133.0),
    row!(17; 35.25,1427.0; 35.26,369.0; 34.97,14.0; 35.35,3835.0; 35.35,520.0;  35.11,154.0),
    row!(18; 32.21,1125.0; 32.23,326.0; 31.76,20.0; 32.26,3063.0; 32.26,413.0;  31.93,103.0),
    row!(19; 31.79,1700.0; 31.82,479.0; 31.36,37.0; 31.88,4389.0; 31.88,600.0;  31.59,159.0),
    row!(20; 33.40,1475.0; 33.42,466.0; 33.07,30.0; 33.50,3932.0; 33.50,545.0;  33.23,135.0),
];

/// Tables 7 + 8: Synthetic dataset, couples 1–10 (different categories).
pub const SYNTHETIC_DIFFERENT: [CoupleRow; 10] = [
    row!(1;  17.57,389.0;  17.56,307.0;  17.53,285.0;  17.74,1151.0; 17.74,252.0;  17.74,206.0),
    row!(2;  15.87,1494.0; 15.86,1610.0; 15.79,766.0;  16.00,3880.0; 16.00,1382.0; 16.00,549.0),
    row!(3;  24.00,603.0;  23.96,516.0;  23.88,390.0;  24.15,1806.0; 24.15,460.0;  24.15,314.0),
    row!(4;  16.46,872.0;  16.46,816.0;  16.40,459.0;  16.57,2396.0; 16.57,713.0;  16.57,337.0),
    row!(5;  15.37,3035.0; 15.36,3240.0; 15.29,1384.0; 15.49,7308.0; 15.49,3093.0; 15.49,974.0),
    row!(6;  24.42,499.0;  24.39,417.0;  24.30,330.0;  24.56,1556.0; 24.56,364.0;  24.56,264.0),
    row!(7;  22.04,1501.0; 22.02,1602.0; 21.97,734.0;  22.13,3950.0; 22.13,1516.0; 22.13,554.0),
    row!(8;  15.38,1203.0; 15.36,1090.0; 15.31,632.0;  15.57,3279.0; 15.57,982.0;  15.57,457.0),
    row!(9;  15.79,931.0;  15.77,883.0;  15.73,500.0;  15.90,2550.0; 15.90,783.0;  15.90,359.0),
    row!(10; 7.76,171.0;   7.76,134.0;   7.73,130.0;   7.85,544.0;   7.85,113.0;   7.85,91.0),
];

/// Tables 9 + 10: Synthetic dataset, couples 11–20 (same categories).
pub const SYNTHETIC_SAME: [CoupleRow; 10] = [
    row!(11; 30.46,1339.0; 30.42,1311.0; 30.30,717.0; 30.63,3914.0; 30.63,1301.0; 30.63,636.0),
    row!(12; 30.44,2017.0; 30.43,2211.0; 30.34,952.0; 30.57,5471.0; 30.57,2207.0; 30.57,827.0),
    row!(13; 33.58,1642.0; 33.56,1763.0; 33.43,829.0; 33.73,4701.0; 33.73,1780.0; 33.73,757.0),
    row!(14; 30.70,1722.0; 30.68,1812.0; 30.56,860.0; 30.85,4827.0; 30.85,1806.0; 30.85,756.0),
    row!(15; 36.48,1094.0; 36.46,1066.0; 36.30,586.0; 36.64,3372.0; 36.64,1107.0; 36.64,577.0),
    row!(16; 30.21,1244.0; 30.19,1180.0; 30.09,650.0; 30.41,3636.0; 30.41,1167.0; 30.41,583.0),
    row!(17; 35.16,1157.0; 35.14,1133.0; 34.97,610.0; 35.31,3562.0; 35.31,1157.0; 35.31,591.0),
    row!(18; 31.58,940.0;  31.55,869.0;  31.42,509.0; 31.72,2823.0; 31.72,861.0;  31.72,453.0),
    row!(19; 31.31,1404.0; 31.28,1385.0; 31.14,737.0; 31.48,4052.0; 31.48,1384.0; 31.48,667.0),
    row!(20; 33.11,1226.0; 33.10,1225.0; 32.97,638.0; 33.27,3594.0; 33.27,1226.0; 33.27,589.0),
];

/// One row of Table 11: a category with four `(average couple size,
/// Ex-MinMax seconds)` scalability points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityRow {
    pub category: Category,
    pub points: [(u32, f64); 4],
}

/// Table 11: Ex-MinMax scalability on VK, 20 categories x 4 sizes.
pub const SCALABILITY: [ScalabilityRow; 20] = [
    ScalabilityRow {
        category: Category::FoodRecipes,
        points: [
            (124_453, 165.0),
            (200_966, 670.0),
            (332_977, 3_676.0),
            (417_492, 7_020.0),
        ],
    },
    ScalabilityRow {
        category: Category::Restaurants,
        points: [
            (27_733, 5.0),
            (50_802, 26.0),
            (71_114, 34.0),
            (111_713, 93.0),
        ],
    },
    ScalabilityRow {
        category: Category::Hobbies,
        points: [
            (212_071, 807.0),
            (326_951, 3_387.0),
            (432_853, 7_900.0),
            (538_492, 12_979.0),
        ],
    },
    ScalabilityRow {
        category: Category::Sport,
        points: [
            (107_770, 140.0),
            (156_762, 278.0),
            (199_233, 590.0),
            (248_901, 1_381.0),
        ],
    },
    ScalabilityRow {
        category: Category::Education,
        points: [
            (128_905, 173.0),
            (200_466, 517.0),
            (317_041, 2_663.0),
            (414_692, 6_891.0),
        ],
    },
    ScalabilityRow {
        category: Category::CultureArt,
        points: [
            (54_381, 25.0),
            (106_885, 125.0),
            (157_236, 360.0),
            (228_763, 997.0),
        ],
    },
    ScalabilityRow {
        category: Category::BeautyHealth,
        points: [
            (149_171, 204.0),
            (211_701, 710.0),
            (256_387, 1_660.0),
            (318_470, 3_218.0),
        ],
    },
    ScalabilityRow {
        category: Category::Medicine,
        points: [
            (21_290, 4.0),
            (41_438, 16.0),
            (62_333, 38.0),
            (84_311, 66.0),
        ],
    },
    ScalabilityRow {
        category: Category::Entertainment,
        points: [
            (445_364, 8_371.0),
            (651_230, 22_328.0),
            (841_407, 35_648.0),
            (1_110_846, 63_873.0),
        ],
    },
    ScalabilityRow {
        category: Category::Media,
        points: [
            (117_231, 130.0),
            (220_804, 1_057.0),
            (335_845, 2_920.0),
            (406_973, 7_444.0),
        ],
    },
    ScalabilityRow {
        category: Category::RelationshipFamily,
        points: [
            (121_910, 167.0),
            (169_862, 324.0),
            (212_582, 840.0),
            (283_532, 2_304.0),
        ],
    },
    ScalabilityRow {
        category: Category::SocialPublic,
        points: [
            (80_552, 65.0),
            (135_060, 194.0),
            (182_865, 426.0),
            (269_604, 1_797.0),
        ],
    },
    ScalabilityRow {
        category: Category::TourismLeisure,
        points: [
            (104_403, 105.0),
            (147_984, 245.0),
            (204_376, 605.0),
            (248_205, 1_510.0),
        ],
    },
    ScalabilityRow {
        category: Category::CitiesCountries,
        points: [
            (53_271, 30.0),
            (94_130, 86.0),
            (133_765, 214.0),
            (163_201, 292.0),
        ],
    },
    ScalabilityRow {
        category: Category::ProductsStores,
        points: [
            (112_425, 127.0),
            (157_593, 335.0),
            (219_171, 735.0),
            (265_760, 2_181.0),
        ],
    },
    ScalabilityRow {
        category: Category::HomeRenovation,
        points: [
            (101_381, 107.0),
            (149_484, 275.0),
            (188_986, 527.0),
            (274_326, 1_889.0),
        ],
    },
    ScalabilityRow {
        category: Category::Celebrity,
        points: [
            (105_339, 112.0),
            (160_277, 340.0),
            (206_374, 907.0),
            (255_239, 1_096.0),
        ],
    },
    ScalabilityRow {
        category: Category::Music,
        points: [
            (110_695, 119.0),
            (158_516, 264.0),
            (201_757, 714.0),
            (251_919, 1_118.0),
        ],
    },
    ScalabilityRow {
        category: Category::FinanceInsurance,
        points: [
            (24_620, 5.0),
            (49_505, 10.0),
            (70_196, 48.0),
            (108_028, 162.0),
        ],
    },
    ScalabilityRow {
        category: Category::JobSearch,
        points: [(16_728, 1.0), (30_787, 6.0), (45_597, 14.0), (62_418, 28.0)],
    },
];

/// Look up a couple by cID.
pub fn couple(cid: u8) -> &'static CoupleSpec {
    COUPLES
        .iter()
        .find(|c| c.cid == cid)
        .unwrap_or_else(|| panic!("unknown couple id {cid}"))
}

/// Look up the published VK-dataset row for a couple.
pub fn vk_row(cid: u8) -> &'static CoupleRow {
    VK_DIFFERENT
        .iter()
        .chain(VK_SAME.iter())
        .find(|r| r.cid == cid)
        .unwrap_or_else(|| panic!("unknown couple id {cid}"))
}

/// Look up the published Synthetic-dataset row for a couple.
pub fn synthetic_row(cid: u8) -> &'static CoupleRow {
    SYNTHETIC_DIFFERENT
        .iter()
        .chain(SYNTHETIC_SAME.iter())
        .find(|r| r.cid == cid)
        .unwrap_or_else(|| panic!("unknown couple id {cid}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_couples_with_valid_sizes() {
        assert_eq!(COUPLES.len(), 20);
        for c in &COUPLES {
            // Every published couple satisfies ceil(|A|/2) <= |B| <= |A|.
            let lower = (c.size_a as usize).div_ceil(2);
            assert!(
                (c.size_b as usize) >= lower && c.size_b <= c.size_a,
                "cid {} violates the size constraint",
                c.cid
            );
            assert_eq!(c.same_category(), c.cid > 10);
        }
    }

    #[test]
    fn table1_is_rank_sorted_and_complete() {
        for table in [&VK_TOTAL_LIKES, &SYNTHETIC_TOTAL_LIKES] {
            assert!(
                table.windows(2).all(|w| w[0].1 >= w[1].1),
                "not rank-sorted"
            );
            let mut cats: Vec<_> = table.iter().map(|&(c, _)| c).collect();
            cats.sort();
            cats.dedup();
            assert_eq!(cats.len(), 27, "a category is missing or duplicated");
        }
    }

    #[test]
    fn result_rows_cover_all_couples() {
        for cid in 1..=20u8 {
            let vk = vk_row(cid);
            let syn = synthetic_row(cid);
            assert_eq!(vk.cid, cid);
            assert_eq!(syn.cid, cid);
            // Exact similarity never below approximate in the paper's
            // published numbers (per method family, baseline/minmax).
            assert!(vk.ex_baseline.similarity_pct >= vk.ap_baseline.similarity_pct - 1e-9);
            assert!(syn.ex_minmax.similarity_pct >= syn.ap_minmax.similarity_pct - 1e-9);
        }
        assert_eq!(couple(7).cid, 7);
    }

    #[test]
    fn scalability_rows_are_increasing() {
        assert_eq!(SCALABILITY.len(), 20);
        for row in &SCALABILITY {
            assert!(row.points.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(row.points.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    #[should_panic(expected = "unknown couple id")]
    fn unknown_couple_panics() {
        let _ = couple(42);
    }
}
