//! Build concrete community pairs from the paper's couple specifications.

use csj_core::Community;

use crate::spec::{self, CoupleSpec, SYNTHETIC_EPS, VK_EPS, VK_MAX_LIKES};
use crate::uniform::{UniformConfig, UniformGenerator};
use crate::vklike::{VkLikeConfig, VkLikeGenerator};

/// Which substituted dataset to draw a couple from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Skewed VK-shaped data (eps = 1).
    VkLike,
    /// Uniform "Synthetic" data (eps = 15000).
    Uniform,
}

impl Dataset {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::VkLike => "vk",
            Dataset::Uniform => "synthetic",
        }
    }

    /// The paper's epsilon for this dataset.
    pub fn eps(self) -> u32 {
        match self {
            Dataset::VkLike => VK_EPS,
            Dataset::Uniform => SYNTHETIC_EPS,
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Options for materialising a couple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildOptions {
    /// Divisor applied to the paper's community sizes (1 = full scale;
    /// the default of 32 makes every table runnable on a laptop while
    /// preserving all |B|/|A| ratios).
    pub scale: u32,
    /// Base RNG seed; the couple id is mixed in so couples differ.
    pub seed: u64,
}

impl Default for BuildOptions {
    fn default() -> Self {
        Self {
            scale: 32,
            seed: 0xC5A0_2024,
        }
    }
}

/// A materialised community pair, ready to join.
#[derive(Debug, Clone)]
pub struct CouplePair {
    /// The couple's specification (paper metadata).
    pub spec: CoupleSpec,
    /// Which dataset the pair was drawn from.
    pub dataset: Dataset,
    /// The smaller community.
    pub b: Community,
    /// The larger community.
    pub a: Community,
    /// The epsilon to join with.
    pub eps: u32,
    /// The normalisation divisor SuperEGO should use (the dataset-wide
    /// maximum, as in the paper).
    pub superego_max_value: u32,
}

/// Materialise couple `spec` from `dataset` at the given scale.
///
/// The generator is calibrated so the pair's exact similarity lands near
/// the paper's published Ex-MinMax value for that couple and dataset.
pub fn build_couple(spec: &CoupleSpec, dataset: Dataset, opts: BuildOptions) -> CouplePair {
    assert!(opts.scale >= 1, "scale must be >= 1");
    let nb = scaled(spec.size_b, opts.scale);
    let na = scaled(spec.size_a, opts.scale).max(nb);
    let seed = opts.seed ^ (spec.cid as u64) << 32 ^ dataset.eps() as u64;

    match dataset {
        Dataset::VkLike => {
            let target = spec::vk_row(spec.cid).ex_minmax.similarity_pct / 100.0;
            let cfg = VkLikeConfig {
                target_similarity: target,
                ..VkLikeConfig::default()
            };
            let generator = VkLikeGenerator::new(cfg);
            let (b, a) = generator.generate_pair(
                spec.name_b,
                spec.name_a,
                spec.cat_b,
                spec.cat_a,
                nb,
                na,
                seed,
            );
            CouplePair {
                spec: *spec,
                dataset,
                b,
                a,
                eps: VK_EPS,
                // The paper normalises by the dataset-wide maximum; ours
                // matches it, so SuperEGO sees the same (lossy,
                // non-power-of-two) divisor.
                superego_max_value: VK_MAX_LIKES,
            }
        }
        Dataset::Uniform => {
            let target = spec::synthetic_row(spec.cid).ex_minmax.similarity_pct / 100.0;
            let generator = UniformGenerator::new(UniformConfig {
                d: spec::D,
                max_value: spec::SYNTHETIC_MAX_LIKES,
                eps: SYNTHETIC_EPS,
                target_similarity: target,
                conflict_rate: 0.04,
            });
            let (b, a) = generator.generate_pair(spec.name_b, spec.name_a, nb, na, seed);
            CouplePair {
                spec: *spec,
                dataset,
                b,
                a,
                eps: SYNTHETIC_EPS,
                // A power-of-two divisor (2^19 = 524288 >= 500000) makes
                // the f32 normalisation exact — reproducing the paper's
                // "no accuracy loss on Synthetic" (Tables 8/10).
                superego_max_value: spec::SYNTHETIC_MAX_LIKES.next_power_of_two(),
            }
        }
    }
}

/// Scale a paper size down, keeping at least a workable minimum.
fn scaled(size: u32, scale: u32) -> usize {
    ((size / scale).max(40)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::COUPLES;
    use csj_core::validate_sizes;

    #[test]
    fn builds_all_couples_on_both_datasets_tiny() {
        let opts = BuildOptions {
            scale: 2048,
            seed: 1,
        };
        for spec in &COUPLES {
            for dataset in [Dataset::VkLike, Dataset::Uniform] {
                let pair = build_couple(spec, dataset, opts);
                assert_eq!(pair.b.d(), 27);
                assert_eq!(pair.a.d(), 27);
                assert!(pair.b.len() <= pair.a.len());
                assert!(
                    validate_sizes(pair.b.len(), pair.a.len()).is_ok(),
                    "cid {} violates size constraint at scale",
                    spec.cid
                );
                assert_eq!(pair.eps, dataset.eps());
            }
        }
    }

    #[test]
    fn synthetic_divisor_is_power_of_two() {
        let pair = build_couple(
            &COUPLES[0],
            Dataset::Uniform,
            BuildOptions {
                scale: 1024,
                seed: 3,
            },
        );
        assert!(pair.superego_max_value.is_power_of_two());
        assert!(pair.superego_max_value as u64 >= pair.b.max_counter() as u64);
    }

    #[test]
    fn deterministic_per_seed_and_couple() {
        let o = BuildOptions {
            scale: 1024,
            seed: 5,
        };
        let p1 = build_couple(&COUPLES[3], Dataset::VkLike, o);
        let p2 = build_couple(&COUPLES[3], Dataset::VkLike, o);
        assert_eq!(p1.b, p2.b);
        let p3 = build_couple(&COUPLES[4], Dataset::VkLike, o);
        assert_ne!(p1.b, p3.b);
    }

    #[test]
    fn scaling_preserves_ratio_roughly() {
        let spec = &COUPLES[1]; // 156213 | 230017
        let pair = build_couple(spec, Dataset::Uniform, BuildOptions { scale: 64, seed: 2 });
        let paper_ratio = spec.size_b as f64 / spec.size_a as f64;
        let our_ratio = pair.b.len() as f64 / pair.a.len() as f64;
        assert!((paper_ratio - our_ratio).abs() < 0.02);
    }
}
