//! Dataset statistics: the Table 1 reproduction and distribution
//! summaries used by the bench harness and EXPERIMENTS.md.

use csj_core::Community;

use crate::categories::Category;

/// Sum per-dimension totals over any number of communities.
pub fn combined_dimension_totals<'c>(
    communities: impl IntoIterator<Item = &'c Community>,
    d: usize,
) -> Vec<u64> {
    let mut totals = vec![0u64; d];
    for c in communities {
        assert_eq!(c.d(), d, "all communities must share dimensionality");
        for (t, v) in totals.iter_mut().zip(c.dimension_totals()) {
            *t += v;
        }
    }
    totals
}

/// Rank categories by total likes, descending — the shape of Table 1.
/// Only meaningful for `d == 27` data.
pub fn rank_categories(totals: &[u64]) -> Vec<(Category, u64)> {
    assert_eq!(totals.len(), 27, "category ranking needs d = 27");
    let mut ranked: Vec<(Category, u64)> = Category::ALL
        .into_iter()
        .map(|c| (c, totals[c.dim()]))
        .collect();
    ranked.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    ranked
}

/// Spearman rank correlation between two rankings of the same 27
/// categories (1.0 = identical order). Used to report how faithfully the
/// generated corpus reproduces the published Table 1 ranking.
pub fn rank_correlation(ours: &[(Category, u64)], paper: &[(Category, u64)]) -> f64 {
    assert_eq!(ours.len(), paper.len());
    let n = ours.len() as f64;
    if ours.len() < 2 {
        return 1.0;
    }
    let position = |list: &[(Category, u64)], cat: Category| {
        list.iter()
            .position(|&(c, _)| c == cat)
            .expect("category present") as f64
    };
    let mut d2 = 0.0;
    for &(cat, _) in ours {
        let diff = position(ours, cat) - position(paper, cat);
        d2 += diff * diff;
    }
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

/// Distribution summary of all counters in a community.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionSummary {
    /// Arithmetic mean over all `n * d` counters.
    pub mean: f64,
    /// Median counter.
    pub p50: u32,
    /// 99th percentile counter.
    pub p99: u32,
    /// Largest counter.
    pub max: u32,
    /// Fraction of zero counters (sparsity).
    pub zero_fraction: f64,
}

/// Summarise the counter distribution of a community.
pub fn summarize(community: &Community) -> DistributionSummary {
    let data = community.raw_data();
    if data.is_empty() {
        return DistributionSummary {
            mean: 0.0,
            p50: 0,
            p99: 0,
            max: 0,
            zero_fraction: 0.0,
        };
    }
    let mut sorted: Vec<u32> = data.to_vec();
    sorted.sort_unstable();
    let sum: u64 = sorted.iter().map(|&v| v as u64).sum();
    let zeros = sorted.iter().take_while(|&&v| v == 0).count();
    let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
    DistributionSummary {
        mean: sum as f64 / sorted.len() as f64,
        p50: pick(0.50),
        p99: pick(0.99),
        max: *sorted.last().expect("non-empty"),
        zero_fraction: zeros as f64 / sorted.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VK_TOTAL_LIKES;

    fn community(rows: &[Vec<u32>]) -> Community {
        Community::from_rows(
            "t",
            rows[0].len(),
            rows.iter().cloned().enumerate().map(|(i, v)| (i as u64, v)),
        )
        .unwrap()
    }

    #[test]
    fn combined_totals_add_up() {
        let c1 = community(&[vec![1, 2], vec![3, 4]]);
        let c2 = community(&[vec![10, 0]]);
        assert_eq!(combined_dimension_totals([&c1, &c2], 2), vec![14, 6]);
    }

    #[test]
    fn ranking_matches_table1_on_table1_itself() {
        let mut totals = vec![0u64; 27];
        for &(c, v) in &VK_TOTAL_LIKES {
            totals[c.dim()] = v;
        }
        let ranked = rank_categories(&totals);
        for (ours, paper) in ranked.iter().zip(VK_TOTAL_LIKES.iter()) {
            assert_eq!(ours.0, paper.0);
        }
        assert!((rank_correlation(&ranked, &VK_TOTAL_LIKES) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_correlation_detects_reversal() {
        let mut totals = vec![0u64; 27];
        for &(c, v) in &VK_TOTAL_LIKES {
            totals[c.dim()] = v;
        }
        let ranked = rank_categories(&totals);
        let reversed: Vec<_> = ranked.iter().rev().copied().collect();
        assert!(rank_correlation(&reversed, &ranked) < -0.9);
    }

    #[test]
    fn summary_of_known_distribution() {
        let c = community(&[vec![0, 0, 10, 2]]);
        let s = summarize(&c);
        assert_eq!(s.max, 10);
        assert_eq!(s.zero_fraction, 0.5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 0);
    }

    #[test]
    fn summary_of_empty_community() {
        let c = Community::new("e", 3);
        let s = summarize(&c);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }
}
