//! Community sub-sampling utilities.
//!
//! Calibration pilots, scaled experiments and engine smoke tests all need
//! "a smaller community that looks like this one". [`sample_community`]
//! draws a uniform random subset of users (without replacement,
//! seeded); [`split_community`] deals a community into disjoint parts
//! (e.g. to fabricate sibling brand pages that share no subscribers).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csj_core::Community;

/// Draw `n` users uniformly at random (without replacement) from
/// `community`. If `n >= community.len()`, a full copy is returned.
/// Deterministic in `seed`.
///
/// ```
/// use csj_core::Community;
/// use csj_data::sampling::sample_community;
///
/// let c = Community::from_rows("all", 1, (0..10u64).map(|i| (i, vec![i as u32]))).unwrap();
/// let s = sample_community(&c, 4, 7, "pilot");
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.name(), "pilot");
/// ```
pub fn sample_community(community: &Community, n: usize, seed: u64, name: &str) -> Community {
    let total = community.len();
    let n = n.min(total);
    let mut indices: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher-Yates: fix the first n slots.
    for i in 0..n {
        let j = rng.gen_range(i..total);
        indices.swap(i, j);
    }
    let mut out = Community::with_capacity(name, community.d(), n);
    let mut picked = indices[..n].to_vec();
    picked.sort_unstable(); // keep deterministic, cache-friendly order
    for i in picked {
        out.push(community.user_id(i), community.vector(i))
            .expect("same dimensionality");
    }
    out
}

/// Deal `community` into `parts` disjoint communities of (near-)equal
/// size, shuffling users first. Deterministic in `seed`. Part `k` is
/// named `"{base_name}-{k}"`.
///
/// # Panics
/// Panics if `parts == 0`.
pub fn split_community(
    community: &Community,
    parts: usize,
    seed: u64,
    base_name: &str,
) -> Vec<Community> {
    assert!(parts > 0, "parts must be positive");
    let total = community.len();
    let mut indices: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let mut out: Vec<Community> = (0..parts)
        .map(|k| Community::new(format!("{base_name}-{k}"), community.d()))
        .collect();
    for (pos, &i) in indices.iter().enumerate() {
        out[pos % parts]
            .push(community.user_id(i), community.vector(i))
            .expect("same dimensionality");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Community {
        Community::from_rows(
            "base",
            2,
            (0..100u64).map(|i| (i, vec![i as u32, 2 * i as u32])),
        )
        .expect("well-formed")
    }

    #[test]
    fn sample_is_subset_without_replacement() {
        let c = base();
        let s = sample_community(&c, 30, 7, "s");
        assert_eq!(s.len(), 30);
        assert_eq!(s.name(), "s");
        let mut ids: Vec<u64> = s.user_ids().to_vec();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "sampled a user twice");
        for (id, v) in s.iter() {
            let orig = c.find_user(id).expect("subset of base");
            assert_eq!(c.vector(orig), v, "vector must be copied verbatim");
        }
    }

    #[test]
    fn sample_is_deterministic_and_seed_sensitive() {
        let c = base();
        assert_eq!(
            sample_community(&c, 10, 1, "x"),
            sample_community(&c, 10, 1, "x")
        );
        assert_ne!(
            sample_community(&c, 10, 1, "x").user_ids(),
            sample_community(&c, 10, 2, "x").user_ids()
        );
    }

    #[test]
    fn oversampling_copies_everything() {
        let c = base();
        let s = sample_community(&c, 500, 3, "all");
        assert_eq!(s.len(), c.len());
    }

    #[test]
    fn split_is_a_disjoint_partition() {
        let c = base();
        let parts = split_community(&c, 3, 11, "part");
        assert_eq!(parts.len(), 3);
        let sizes: Vec<usize> = parts.iter().map(Community::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), c.len());
        assert!(sizes.iter().all(|&s| s == 33 || s == 34));
        let mut all_ids: Vec<u64> = parts
            .iter()
            .flat_map(|p| p.user_ids().iter().copied())
            .collect();
        all_ids.sort_unstable();
        let expected: Vec<u64> = (0..100).collect();
        assert_eq!(all_ids, expected);
        assert_eq!(parts[1].name(), "part-1");
    }

    #[test]
    #[should_panic(expected = "parts must be positive")]
    fn split_rejects_zero_parts() {
        let _ = split_community(&base(), 0, 1, "p");
    }
}
