//! # csj-data — datasets for the CSJ reproduction
//!
//! The paper evaluates on a proprietary corpus (7.8M VK users' real likes
//! over 540 brand pages) and an unpublished synthetic generator. This
//! crate is the substitution substrate (see DESIGN.md §3):
//!
//! * [`spec`] — the paper's published numbers, embedded as constants: the
//!   27 categories with their Table 1 `total_likes`, the 20 community
//!   couples of Table 2 with their sizes, and the per-method
//!   similarity/runtime cells of Tables 3–10 plus the Table 11
//!   scalability grid, so the bench harness can print
//!   *paper-vs-measured* for every cell.
//! * [`vklike`] — a seeded generator producing VK-shaped data: sparse,
//!   heavily skewed per-category counters whose dataset-wide totals
//!   follow the real Table 1 popularity weights, with jointly generated
//!   community pairs hitting a target similarity.
//! * [`uniform`] — the "Synthetic" counterpart: per-dimension uniform
//!   counters with an analytically calibrated value range.
//! * [`calibrate`] — the closed-form and pilot-based calibration used to
//!   pick generator knobs from a target similarity.
//! * [`pairs`] — turns a [`spec::CoupleSpec`] plus a scale factor into a
//!   concrete `(B, A)` community pair on either dataset.
//! * [`corpus`] — one coherent population with popularity-ranked pages,
//!   where community similarity emerges from *real* subscriber overlap
//!   (no planting).
//! * [`sampling`] — seeded sub-sampling and splitting of communities.
//! * [`io`] — CSV and compact binary (de)serialisation of communities.
//! * [`stats`] — distribution statistics (per-category totals ranking —
//!   the Table 1 reproduction — and per-dimension summaries).

pub mod calibrate;
pub mod categories;
pub mod corpus;
pub mod io;
pub mod pairs;
pub mod sampling;
pub mod spec;
pub mod stats;
pub mod uniform;
pub mod vklike;

pub use categories::Category;
pub use pairs::{build_couple, Dataset};
pub use spec::{CoupleSpec, COUPLES};
