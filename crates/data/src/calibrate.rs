//! Generator calibration.
//!
//! The paper reports *measured* similarities per couple; our substituted
//! generators must land in the same bands for the reproduced tables to be
//! comparable. Two tools:
//!
//! * [`uniform_value_range`] — closed-form inversion for the uniform
//!   generator. Under independence, a `B` user matches a fixed `A` user
//!   with probability `p^d` where `p = P(|X - Y| <= eps)` for
//!   `X, Y ~ U[0, V]`, i.e. `p = 2r - r^2` with `r = eps / V` (for
//!   `r <= 1`). With `|A| = na` candidates the per-user hit probability
//!   is `1 - (1 - p^d)^na ≈ 1 - exp(-na * p^d)`; setting that equal to
//!   the target similarity and solving backwards yields `V`.
//! * [`pilot_similarity`] — measure the true similarity of a (sub)pair
//!   with the exact MinMax method, for verifying a calibration or doing
//!   a search over a generator knob.

use csj_core::{algorithms, Community, CsjOptions};

/// Closed-form value range for the uniform generator.
///
/// Returns the smallest sensible `V` such that joining `B` against an
/// `A` of `na` users with threshold `eps` yields approximately
/// `target_similarity` (clamped to `[0.001, 0.95]`).
///
/// # Panics
/// Panics if `na == 0`, `d == 0` or `eps == 0`.
pub fn uniform_value_range(target_similarity: f64, na: usize, d: usize, eps: u32) -> u32 {
    assert!(na > 0 && d > 0 && eps > 0);
    let s = target_similarity.clamp(0.001, 0.95);
    // Per-user hit probability: s = 1 - exp(-na * q)  =>  q = -ln(1-s)/na
    let q = -(1.0 - s).ln() / na as f64;
    // Per-candidate full-vector probability: q = p^d  =>  p = q^(1/d)
    let p = q.powf(1.0 / d as f64).clamp(1e-9, 1.0);
    // Per-dimension: p = 2r - r^2  =>  r = 1 - sqrt(1 - p)
    let r = 1.0 - (1.0 - p).sqrt();
    let v = (eps as f64 / r).round();
    (v.max(eps as f64) as u32).max(1)
}

/// Measure the exact CSJ similarity of a pair with Ex-MinMax (the paper's
/// most practical exact method). Intended for calibration pilots and
/// tests; runs the full join.
pub fn pilot_similarity(b: &Community, a: &Community, eps: u32) -> f64 {
    let opts = CsjOptions::new(eps);
    let raw = algorithms::ex_minmax(b, a, &opts);
    if b.is_empty() {
        return 0.0;
    }
    raw.pairs.len() as f64 / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_range_monotonic_in_target() {
        // Higher target similarity -> matches must be more likely ->
        // smaller value range.
        let v15 = uniform_value_range(0.15, 5_000, 27, 15_000);
        let v30 = uniform_value_range(0.30, 5_000, 27, 15_000);
        assert!(v30 < v15, "v30={v30} v15={v15}");
    }

    #[test]
    fn value_range_monotonic_in_na() {
        // More candidates -> each can be individually rarer -> larger V.
        let small = uniform_value_range(0.2, 1_000, 27, 15_000);
        let large = uniform_value_range(0.2, 100_000, 27, 15_000);
        assert!(large > small);
    }

    #[test]
    fn value_range_is_at_least_eps() {
        let v = uniform_value_range(0.9, 10, 2, 500);
        assert!(v >= 500);
    }

    #[test]
    fn pilot_measures_known_similarity() {
        let mut b = Community::new("B", 2);
        let mut a = Community::new("A", 2);
        b.push(1, &[1, 1]).unwrap();
        b.push(2, &[100, 100]).unwrap();
        a.push(1, &[1, 2]).unwrap();
        a.push(2, &[500, 500]).unwrap();
        // One of two B users matches -> 50%.
        assert_eq!(pilot_similarity(&b, &a, 1), 0.5);
        let empty = Community::new("E", 2);
        assert_eq!(pilot_similarity(&empty, &a, 1), 0.0);
    }
}
