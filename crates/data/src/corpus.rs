//! A coherent corpus: one user population, many brand pages.
//!
//! The paper's setup is a single social network — 7.8 M users, 540 pages
//! (20 per category) — where a *community* is the subscriber set of one
//! page and two communities naturally **share subscribers** ("a pair can
//! have the same user"; CSJ "interprets the matched users as being the
//! same person belonging to a different kind of audience"). The planted
//! pair generators of [`crate::vklike`] / [`crate::uniform`] target one
//! couple at a time; a [`Corpus`] instead generates the whole population
//! once and derives every community from it, so similarities between
//! pages emerge from genuine subscriber overlap and genuinely similar
//! taste profiles rather than from planting.
//!
//! Mechanics mirror the paper's description of the data: each user has a
//! few interest categories (drawn with the real Table 1 popularity
//! weights), a sparse counter profile concentrated on those interests,
//! and subscriptions to popularity-ranked (Zipf) pages within them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use csj_core::Community;

use crate::categories::Category;
use crate::spec::VK_TOTAL_LIKES;

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Population size (the paper samples 7.8 M; scale to taste).
    pub users: usize,
    /// Pages per category (the paper uses the 20 most popular).
    pub pages_per_category: usize,
    /// Mean number of interest categories per user.
    pub interests_mean: f64,
    /// Mean subscriptions per interest category.
    pub subscriptions_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            users: 20_000,
            pages_per_category: 20,
            interests_mean: 2.0,
            subscriptions_mean: 2.0,
            seed: 0xC0_2024,
        }
    }
}

/// One brand page of the corpus.
#[derive(Debug, Clone)]
pub struct Page {
    /// The page's category.
    pub category: Category,
    /// Page name (`"{category}/page-{k}"`).
    pub name: String,
    /// Indices into the population of this page's subscribers.
    pub subscribers: Vec<u32>,
}

/// A generated population plus its pages.
#[derive(Debug, Clone)]
pub struct Corpus {
    population: Community,
    pages: Vec<Page>,
}

impl Corpus {
    /// Generate a corpus. Deterministic in `cfg.seed`.
    ///
    /// # Panics
    /// Panics if `users == 0` or `pages_per_category == 0`.
    pub fn generate(cfg: CorpusConfig) -> Corpus {
        assert!(cfg.users > 0, "population must be non-empty");
        assert!(
            cfg.pages_per_category > 0,
            "need at least one page per category"
        );
        let d = 27usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Category popularity from Table 1.
        let mut weights = vec![0.0f64; d];
        for &(cat, likes) in &VK_TOTAL_LIKES {
            weights[cat.dim()] = likes as f64;
        }
        let total: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = {
            let mut acc = 0.0;
            weights
                .iter()
                .map(|w| {
                    acc += w / total;
                    acc
                })
                .collect()
        };
        let sample_category = |rng: &mut StdRng| -> usize {
            let x: f64 = rng.gen();
            cumulative.iter().position(|&c| x <= c).unwrap_or(d - 1)
        };
        // Geometric-ish count with a given mean, at least 1.
        let sample_count = |rng: &mut StdRng, mean: f64| -> u32 {
            let p = 1.0 / mean.max(1.0);
            let mut v = 1u32;
            while v < 40 && !rng.gen_bool(p) {
                v += 1;
            }
            v
        };

        let mut pages: Vec<Page> = Category::ALL
            .iter()
            .flat_map(|&cat| {
                (0..cfg.pages_per_category).map(move |k| Page {
                    category: cat,
                    name: format!("{cat}/page-{k}"),
                    subscribers: Vec::new(),
                })
            })
            .collect();
        // Zipf weights over the pages of one category: page k gets 1/(k+1).
        let zipf_total: f64 = (0..cfg.pages_per_category)
            .map(|k| 1.0 / (k + 1) as f64)
            .sum();
        let sample_page = |rng: &mut StdRng| -> usize {
            let x: f64 = rng.gen::<f64>() * zipf_total;
            let mut acc = 0.0;
            for k in 0..cfg.pages_per_category {
                acc += 1.0 / (k + 1) as f64;
                if x <= acc {
                    return k;
                }
            }
            cfg.pages_per_category - 1
        };

        let mut population = Community::with_capacity("population", d, cfg.users);
        let mut profile = vec![0u32; d];
        for user in 0..cfg.users as u32 {
            profile.iter_mut().for_each(|v| *v = 0);
            // Interest categories (with popularity weighting).
            let interest_count = sample_count(&mut rng, cfg.interests_mean).min(5);
            let mut interests = Vec::with_capacity(interest_count as usize);
            for _ in 0..interest_count {
                let cat = sample_category(&mut rng);
                if !interests.contains(&cat) {
                    interests.push(cat);
                }
            }
            // Sparse profile: a few likes in each interest category, an
            // occasional stray like elsewhere.
            for &cat in &interests {
                profile[cat] += sample_count(&mut rng, 3.0);
            }
            if rng.gen_bool(0.3) {
                let cat = sample_category(&mut rng);
                profile[cat] += 1;
            }
            population
                .push(user as u64, &profile)
                .expect("profile has the right dimensionality");

            // Subscriptions: Zipf-ranked pages within each interest.
            for &cat in &interests {
                let subs = sample_count(&mut rng, cfg.subscriptions_mean).min(6);
                for _ in 0..subs {
                    let k = sample_page(&mut rng);
                    let page_idx = cat * cfg.pages_per_category + k;
                    let page = &mut pages[page_idx];
                    if page.subscribers.last() != Some(&user) {
                        page.subscribers.push(user);
                    }
                }
            }
        }

        Corpus { population, pages }
    }

    /// The full user population.
    pub fn population(&self) -> &Community {
        &self.population
    }

    /// All pages, grouped by category (pages of category `c` occupy
    /// indices `c.dim() * pages_per_category ..`).
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Pages of one category, most popular first.
    pub fn pages_of(&self, category: Category) -> Vec<(usize, &Page)> {
        let mut out: Vec<(usize, &Page)> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.category == category)
            .collect();
        out.sort_by_key(|x| std::cmp::Reverse(x.1.subscribers.len()));
        out
    }

    /// Materialise the community (subscriber set) of page `index`.
    pub fn community(&self, index: usize) -> Community {
        let page = &self.pages[index];
        let mut c =
            Community::with_capacity(&page.name, self.population.d(), page.subscribers.len());
        for &u in &page.subscribers {
            c.push(
                self.population.user_id(u as usize),
                self.population.vector(u as usize),
            )
            .expect("same dimensionality");
        }
        c
    }

    /// Number of subscribers two pages share.
    pub fn shared_subscribers(&self, x: usize, y: usize) -> usize {
        let mut sx: Vec<u32> = self.pages[x].subscribers.clone();
        sx.sort_unstable();
        self.pages[y]
            .subscribers
            .iter()
            .filter(|u| sx.binary_search(u).is_ok())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_core::verify::ground_truth;

    fn small() -> Corpus {
        Corpus::generate(CorpusConfig {
            users: 4_000,
            pages_per_category: 4,
            ..CorpusConfig::default()
        })
    }

    #[test]
    fn deterministic_and_complete() {
        let c1 = small();
        let c2 = small();
        assert_eq!(c1.population(), c2.population());
        assert_eq!(c1.pages().len(), 27 * 4);
        assert_eq!(c1.population().len(), 4_000);
        assert_eq!(
            c1.pages()[3].subscribers,
            c2.pages()[3].subscribers,
            "page membership must be reproducible"
        );
    }

    #[test]
    fn popular_categories_attract_more_subscribers() {
        let corpus = small();
        let total_of = |cat: Category| -> usize {
            corpus
                .pages_of(cat)
                .iter()
                .map(|(_, p)| p.subscribers.len())
                .sum()
        };
        assert!(
            total_of(Category::Entertainment) > total_of(Category::CommunicationServices),
            "Table 1 popularity should shape subscriptions"
        );
    }

    #[test]
    fn zipf_within_category() {
        let corpus = small();
        let ranked = corpus.pages_of(Category::Entertainment);
        // Most popular page should clearly beat the least popular one.
        let first = ranked.first().expect("pages exist").1.subscribers.len();
        let last = ranked.last().expect("pages exist").1.subscribers.len();
        assert!(first > last, "expected Zipf skew, got {first} vs {last}");
    }

    #[test]
    fn same_category_pages_are_naturally_similar() {
        let corpus = small();
        let ranked = corpus.pages_of(Category::Entertainment);
        let (i, _) = ranked[0];
        let (j, _) = ranked[1];
        let shared = corpus.shared_subscribers(i, j);
        assert!(shared > 0, "popular sibling pages should share subscribers");

        let x = corpus.community(i);
        let y = corpus.community(j);
        let (b, a) = if x.len() <= y.len() {
            (&x, &y)
        } else {
            (&y, &x)
        };
        let gt = ground_truth(b, a, 1);
        // Every shared subscriber matches itself, so similarity is at
        // least shared / |B| — no planting involved.
        assert!(
            gt.similarity.matched >= shared,
            "shared subscribers must be matchable: {} < {shared}",
            gt.similarity.matched
        );
        assert!(
            gt.similarity.ratio() > 0.05,
            "sibling pages should be similar"
        );
    }

    #[test]
    fn communities_materialise_correctly() {
        let corpus = small();
        let c = corpus.community(0);
        assert_eq!(c.len(), corpus.pages()[0].subscribers.len());
        assert_eq!(c.d(), 27);
        // Members carry their population profiles verbatim.
        let u = corpus.pages()[0].subscribers[0] as usize;
        assert_eq!(c.vector(0), corpus.population().vector(u));
    }

    #[test]
    fn shared_subscribers_is_symmetric() {
        let corpus = small();
        assert_eq!(
            corpus.shared_subscribers(0, 1),
            corpus.shared_subscribers(1, 0)
        );
        assert_eq!(
            corpus.shared_subscribers(0, 0),
            corpus.pages()[0].subscribers.len()
        );
    }
}
