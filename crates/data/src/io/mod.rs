//! Community (de)serialisation: a human-readable CSV format and a compact
//! little-endian binary format for large corpora.

mod binary;
mod csv;
mod prepared;

pub use binary::{read_binary, write_binary};
pub use csv::{read_csv, write_csv};
pub use prepared::{prepare_with, read_prepared, write_prepared};

/// Errors raised by the dataset I/O layer.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the format (message describes the problem).
    Format(String),
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) => None,
        }
    }
}
