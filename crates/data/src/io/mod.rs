//! Community (de)serialisation: a human-readable CSV format and a compact
//! little-endian binary format for large corpora.

mod binary;
mod csv;
mod prepared;

pub use binary::{read_binary, read_binary_quarantine, write_binary};
pub use csv::{read_csv, read_csv_quarantine, write_csv};
pub use prepared::{prepare_with, read_prepared, write_prepared};

/// Where a malformed record sits in its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordLocation {
    /// 1-based line number of a text (CSV) source.
    Line(u64),
    /// 0-based record index of a binary source.
    Record(u64),
}

impl std::fmt::Display for RecordLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordLocation::Line(n) => write!(f, "line {n}"),
            RecordLocation::Record(n) => write!(f, "record {n}"),
        }
    }
}

/// One record skipped by a quarantine-mode load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// Where the record sits in its source.
    pub location: RecordLocation,
    /// Why it was rejected.
    pub reason: String,
}

impl std::fmt::Display for QuarantinedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.reason)
    }
}

/// Errors raised by the dataset I/O layer.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violates the format at the container level — bad
    /// magic/headers, truncation — so no per-record recovery is
    /// possible (message describes the problem).
    Format(String),
    /// One record is malformed. Strict loads abort with this error;
    /// quarantine-mode loads collect the same information as
    /// [`QuarantinedRecord`]s and keep going.
    BadRecord {
        /// Where the record sits in its source.
        location: RecordLocation,
        /// Why it was rejected.
        reason: String,
    },
    /// The file's CRC32 footer does not match its contents: the bytes
    /// were damaged after writing (bit rot, torn copy). Distinct from
    /// [`IoError::Format`] so quarantine-aware callers can report
    /// "verified corrupt" rather than "unrecognised", but still a
    /// container-level error — no per-record recovery is attempted,
    /// because the damage could be anywhere.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        expected: u32,
        /// Checksum of the bytes actually read.
        got: u32,
    },
}

impl IoError {
    /// View a [`IoError::BadRecord`] as the quarantine report entry it
    /// would become; `None` for container-level errors.
    pub fn as_quarantined(&self) -> Option<QuarantinedRecord> {
        match self {
            IoError::BadRecord { location, reason } => Some(QuarantinedRecord {
                location: *location,
                reason: reason.clone(),
            }),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(msg) => write!(f, "format error: {msg}"),
            IoError::BadRecord { location, reason } => {
                write!(f, "bad record at {location}: {reason}")
            }
            IoError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: footer says {expected:#010x}, contents hash to {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(_) | IoError::BadRecord { .. } | IoError::ChecksumMismatch { .. } => {
                None
            }
        }
    }
}
