//! Persistent prepared-community files (`.csjp`) — a saved "index".
//!
//! A prepared community carries both MinMax encodings for a fixed
//! `(eps, parts)` configuration. Persisting them means the CLI (and any
//! long-running service) pays the encode-and-sort cost once per
//! community, not once per join — the on-disk analogue of the engine's
//! in-memory encoding cache.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    "CSJP"          4 bytes
//! version  u16             currently 1
//! eps      u32
//! parts    u32             effective part count P
//! embedded community       (the CSJB format of `binary.rs`)
//! encd_ids      n * u64    Encd_B, ascending
//! part_sums     n * P * u64
//! b_user_idx    n * u32
//! encd_mins     n * u64    Encd_A, ascending
//! encd_maxs     n * u64
//! range_lo      n * P * u64
//! range_hi      n * P * u64
//! a_user_idx    n * u32
//! ```
//!
//! All structural invariants are re-validated on load (via
//! `EncodedB::from_raw` / `EncodedA::from_raw` /
//! `PreparedCommunity::from_parts`), so a corrupted or hand-edited file
//! fails cleanly instead of corrupting a join.

use std::io::{BufReader, BufWriter, Read, Write};

use bytes::BufMut;
use csj_core::{CsjOptions, EncodedA, EncodedB, EncodingParams, PreparedCommunity};

use super::{binary, IoError};

const MAGIC: &[u8; 4] = b"CSJP";
const VERSION: u16 = 1;

/// Write a prepared community (community + both encodings).
pub fn write_prepared<W: Write>(prepared: &PreparedCommunity, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    let parts = prepared.encoded_b().parts();
    let mut header = Vec::with_capacity(16);
    header.put_slice(MAGIC);
    header.put_u16_le(VERSION);
    header.put_u32_le(prepared.eps());
    header.put_u32_le(parts as u32);
    w.write_all(&header)?;

    binary::write_binary(prepared.community(), &mut w)?;

    let eb = prepared.encoded_b();
    write_u64s(&mut w, &eb.encd_ids)?;
    write_u64s(&mut w, &eb.part_sums)?;
    write_u32s(&mut w, &eb.user_idx)?;

    let ea = prepared.encoded_a();
    write_u64s(&mut w, &ea.encd_mins)?;
    write_u64s(&mut w, &ea.encd_maxs)?;
    write_u64s(&mut w, &ea.range_lo)?;
    write_u64s(&mut w, &ea.range_hi)?;
    write_u32s(&mut w, &ea.user_idx)?;
    w.flush()?;
    Ok(())
}

/// Read a prepared community, re-validating every invariant.
pub fn read_prepared<R: Read>(reader: R) -> Result<PreparedCommunity, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Format("bad magic (not a CSJP file)".into()));
    }
    let mut two = [0u8; 2];
    r.read_exact(&mut two)?;
    let version = u16::from_le_bytes(two);
    if version != VERSION {
        return Err(IoError::Format(format!("unsupported version {version}")));
    }
    let mut four = [0u8; 4];
    r.read_exact(&mut four)?;
    let eps = u32::from_le_bytes(four);
    r.read_exact(&mut four)?;
    let parts = u32::from_le_bytes(four) as usize;
    if parts == 0 || parts > 4096 {
        return Err(IoError::Format(format!("implausible part count {parts}")));
    }

    let community = binary::read_binary_embedded(&mut r)?;
    let n = community.len();
    let np = n
        .checked_mul(parts)
        .ok_or_else(|| IoError::Format("n * parts overflows".into()))?;

    let encd_ids = read_u64s(&mut r, n)?;
    let part_sums = read_u64s(&mut r, np)?;
    let b_user_idx = read_u32s(&mut r, n)?;
    let encd_mins = read_u64s(&mut r, n)?;
    let encd_maxs = read_u64s(&mut r, n)?;
    let range_lo = read_u64s(&mut r, np)?;
    let range_hi = read_u64s(&mut r, np)?;
    let a_user_idx = read_u32s(&mut r, n)?;

    let mut trailing = [0u8; 1];
    if r.read(&mut trailing)? != 0 {
        return Err(IoError::Format("trailing bytes after prepared data".into()));
    }

    let as_b = EncodedB::from_raw(parts, encd_ids, part_sums, b_user_idx)
        .map_err(|e| IoError::Format(e.to_string()))?;
    let as_a = EncodedA::from_raw(parts, encd_mins, encd_maxs, range_lo, range_hi, a_user_idx)
        .map_err(|e| IoError::Format(e.to_string()))?;
    PreparedCommunity::from_parts(community, eps, EncodingParams { parts }, as_b, as_a)
        .map_err(|e| IoError::Format(e.to_string()))
}

/// Convenience: prepare a community file's contents under `opts`.
pub fn prepare_with(community: csj_core::Community, opts: &CsjOptions) -> PreparedCommunity {
    PreparedCommunity::new(community, opts)
}

fn write_u64s<W: Write>(w: &mut W, values: &[u64]) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for &v in values {
        buf.put_u64_le(v);
    }
    w.write_all(&buf)?;
    Ok(())
}

fn write_u32s<W: Write>(w: &mut W, values: &[u32]) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for &v in values {
        buf.put_u32_le(v);
    }
    w.write_all(&buf)?;
    Ok(())
}

fn read_u64s<R: Read>(r: &mut R, n: usize) -> Result<Vec<u64>, IoError> {
    let bytes = super::binary::read_exact_chunked(
        r,
        n.checked_mul(8)
            .ok_or_else(|| IoError::Format("array size overflows".into()))?,
    )?;
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

fn read_u32s<R: Read>(r: &mut R, n: usize) -> Result<Vec<u32>, IoError> {
    let bytes = super::binary::read_exact_chunked(
        r,
        n.checked_mul(4)
            .ok_or_else(|| IoError::Format("array size overflows".into()))?,
    )?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use csj_core::prepared::ex_minmax_between;
    use csj_core::Community;

    fn sample_prepared() -> PreparedCommunity {
        let mut c = Community::new("Indexed", 4);
        for i in 0..40u64 {
            c.push(i, &[(i % 7) as u32, (i % 5) as u32, 2, (i % 3) as u32])
                .unwrap();
        }
        PreparedCommunity::new(c, &CsjOptions::new(1).with_parts(2))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample_prepared();
        let mut buf = Vec::new();
        write_prepared(&p, &mut buf).unwrap();
        let back = read_prepared(&buf[..]).unwrap();
        assert_eq!(back.community(), p.community());
        assert_eq!(back.eps(), p.eps());
        assert_eq!(back.encoded_b().encd_ids, p.encoded_b().encd_ids);
        assert_eq!(back.encoded_a().encd_maxs, p.encoded_a().encd_maxs);

        // And it actually joins identically.
        let opts = CsjOptions::new(1).with_parts(2);
        let from_disk = ex_minmax_between(&back, &p, &opts);
        let in_memory = ex_minmax_between(&p, &p, &opts);
        assert_eq!(from_disk.pairs.len(), in_memory.pairs.len());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(read_prepared(&b"XXXX"[..]).is_err());
        let p = sample_prepared();
        let mut buf = Vec::new();
        write_prepared(&p, &mut buf).unwrap();
        for cut in [1usize, 7, 64] {
            assert!(read_prepared(&buf[..buf.len() - cut]).is_err());
        }
        buf.push(0);
        assert!(read_prepared(&buf[..]).is_err(), "trailing bytes must fail");
    }

    #[test]
    fn rejects_tampered_sort_order() {
        let p = sample_prepared();
        let mut buf = Vec::new();
        write_prepared(&p, &mut buf).unwrap();
        // The encd_ids array begins right after the embedded community;
        // find it by locating the first sorted u64 run — simpler: corrupt
        // a byte near the end (inside Encd_A's sorted minima region) and
        // expect either a format error or a validation error, never a
        // silent success with broken invariants.
        let idx = buf.len() / 2;
        buf[idx] ^= 0xFF;
        if let Ok(back) = read_prepared(&buf[..]) {
            // If the flipped byte landed in a non-invariant region (e.g.
            // a part sum), the structural validation can still pass; the
            // buffers must at least be well-formed.
            assert_eq!(back.community().len(), p.community().len());
        }
    }
}
